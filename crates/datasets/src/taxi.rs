//! NYC-taxi-like ride generator (the DEBS 2015 Grand Challenge
//! stand-in).
//!
//! The case-study query is "What is the distance distribution of taxi
//! rides in New York?" with 11 one-mile buckets (paper §7.1). Only the
//! distance histogram drives the experiments, and the paper pins one
//! calibration point: the dominant bucket holds 33.57 % of rides
//! (§7.2 #III, where `q = 0.3` is closest to the truthful-yes
//! fraction). Trip distances here are log-normal — the standard shape
//! for taxi trips — with `μ = ln 1.7, σ = 0.78`, which puts ≈33.5 % of
//! rides in the `[1, 2)`-mile bucket.

use crate::dist::{sample_exponential, sample_lognormal};
use privapprox_types::query::BucketRule;
use privapprox_types::{AnswerSpec, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Log-normal μ for trip distances.
pub const DISTANCE_MU: f64 = 0.530_628; // ln 1.7
/// Log-normal σ for trip distances.
pub const DISTANCE_SIGMA: f64 = 0.78;

/// One synthetic taxi ride.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxiRide {
    /// Drop-off event time.
    pub ts: Timestamp,
    /// Trip distance in miles.
    pub distance_miles: f64,
    /// Coarse pickup zone id (0–62, Manhattan-weighted).
    pub zone: u8,
}

/// The paper's 11-bucket answer format: `[0,1), [1,2), …, [9,10),
/// [10, ∞)` miles.
pub fn taxi_answer_spec() -> AnswerSpec {
    let mut buckets: Vec<BucketRule> = (0..10)
        .map(|i| BucketRule::Range {
            lo: i as f64,
            hi: (i + 1) as f64,
        })
        .collect();
    buckets.push(BucketRule::Range {
        lo: 10.0,
        hi: f64::INFINITY,
    });
    AnswerSpec::new(buckets)
}

/// A deterministic stream of taxi rides.
#[derive(Debug)]
pub struct TaxiGenerator {
    rng: StdRng,
    clock_ms: f64,
    /// Mean rides per second across the fleet.
    rate_per_sec: f64,
}

impl TaxiGenerator {
    /// Creates a generator seeded with `seed`, producing rides at
    /// `rate_per_sec` mean arrivals per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive.
    pub fn new(seed: u64, rate_per_sec: f64) -> TaxiGenerator {
        assert!(rate_per_sec > 0.0, "ride rate must be positive");
        TaxiGenerator {
            rng: StdRng::seed_from_u64(seed),
            clock_ms: 0.0,
            rate_per_sec,
        }
    }

    /// Generates the next ride (exponential inter-arrival times).
    pub fn next_ride(&mut self) -> TaxiRide {
        self.clock_ms += sample_exponential(self.rate_per_sec, &mut self.rng) * 1_000.0;
        let distance = sample_lognormal(DISTANCE_MU, DISTANCE_SIGMA, &mut self.rng);
        // Manhattan-weighted zones: 70 % in zones 0–19.
        let zone = if self.rng.gen::<f64>() < 0.7 {
            self.rng.gen_range(0..20)
        } else {
            self.rng.gen_range(20..63)
        };
        TaxiRide {
            ts: Timestamp(self.clock_ms as u64),
            distance_miles: distance,
            zone,
        }
    }

    /// Generates a batch of `n` rides.
    pub fn take(&mut self, n: usize) -> Vec<TaxiRide> {
        (0..n).map(|_| self.next_ride()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_spec_matches_the_paper() {
        let spec = taxi_answer_spec();
        assert_eq!(spec.len(), 11);
        assert_eq!(spec.bucketize_num(0.5), Some(0));
        assert_eq!(spec.bucketize_num(1.5), Some(1));
        assert_eq!(spec.bucketize_num(9.99), Some(9));
        assert_eq!(spec.bucketize_num(10.0), Some(10));
        assert_eq!(spec.bucketize_num(42.0), Some(10));
    }

    #[test]
    fn dominant_bucket_is_calibrated_to_the_paper() {
        // §7.2 #III: 33.57 % of answers in the dominant bucket.
        let mut generator = TaxiGenerator::new(42, 100.0);
        let spec = taxi_answer_spec();
        let n = 60_000;
        let mut counts = vec![0u32; spec.len()];
        for _ in 0..n {
            let ride = generator.next_ride();
            counts[spec.bucketize_num(ride.distance_miles).unwrap()] += 1;
        }
        let frac1 = counts[1] as f64 / n as f64;
        assert!(
            (frac1 - 0.3357).abs() < 0.02,
            "bucket [1,2) fraction {frac1}, want ≈ 0.3357"
        );
        // The [1,2) bucket dominates.
        let max = counts.iter().max().unwrap();
        assert_eq!(counts[1], *max, "bucket [1,2) must dominate: {counts:?}");
    }

    #[test]
    fn timestamps_increase_at_the_configured_rate() {
        let mut g = TaxiGenerator::new(1, 1000.0); // 1000 rides/sec
        let rides = g.take(10_000);
        for pair in rides.windows(2) {
            assert!(pair[1].ts >= pair[0].ts, "timestamps must be monotone");
        }
        let span_s = rides.last().unwrap().ts.0 as f64 / 1000.0;
        let rate = rides.len() as f64 / span_s;
        assert!((rate - 1000.0).abs() < 50.0, "observed rate {rate}");
    }

    #[test]
    fn zones_are_manhattan_weighted() {
        let mut g = TaxiGenerator::new(2, 100.0);
        let rides = g.take(20_000);
        let downtown = rides.iter().filter(|r| r.zone < 20).count() as f64;
        let frac = downtown / rides.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "downtown fraction {frac}");
    }

    #[test]
    fn generator_is_deterministic() {
        let a = TaxiGenerator::new(7, 10.0).take(50);
        let b = TaxiGenerator::new(7, 10.0).take(50);
        assert_eq!(a, b);
    }

    #[test]
    fn distances_are_positive() {
        let mut g = TaxiGenerator::new(3, 10.0);
        assert!(g.take(1000).iter().all(|r| r.distance_miles > 0.0));
    }
}

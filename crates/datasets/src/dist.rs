//! Minimal distribution sampling toolkit.
//!
//! `rand` is on the allowed dependency list but `rand_distr` is not,
//! so the generators carry their own classical samplers: Box-Muller
//! for the normal, Marsaglia-Tsang for the gamma, inverse-CDF for the
//! exponential, and exponentiation for the log-normal.

use rand::Rng;

/// Standard normal sample (Box-Muller, one branch).
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Normal sample with the given mean and standard deviation.
pub fn sample_normal_with<R: Rng + ?Sized>(mean: f64, sd: f64, rng: &mut R) -> f64 {
    mean + sd * sample_normal(rng)
}

/// Log-normal sample: `exp(μ + σ·Z)`.
pub fn sample_lognormal<R: Rng + ?Sized>(mu: f64, sigma: f64, rng: &mut R) -> f64 {
    (mu + sigma * sample_normal(rng)).exp()
}

/// Exponential sample with the given rate `λ` (mean `1/λ`).
///
/// # Panics
///
/// Panics if `rate` is not positive.
pub fn sample_exponential<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            return -u.ln() / rate;
        }
    }
}

/// Gamma sample with shape `k > 0` and scale `θ > 0`
/// (Marsaglia-Tsang squeeze method, with the boost trick for `k < 1`).
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, scale: f64, rng: &mut R) -> f64 {
    assert!(
        shape > 0.0 && scale > 0.0,
        "gamma needs positive shape/scale"
    );
    if shape < 1.0 {
        // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(shape + 1.0, scale, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v * scale;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..100_000).map(|_| sample_normal(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn scaled_normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| sample_normal_with(10.0, 3.0, &mut rng))
            .collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| sample_exponential(0.5, &mut rng))
            .collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_moments() {
        // Gamma(k, θ): mean kθ, variance kθ².
        let mut rng = StdRng::seed_from_u64(4);
        for &(k, theta) in &[(2.0, 1.5), (5.0, 0.4), (0.5, 2.0)] {
            let xs: Vec<f64> = (0..60_000)
                .map(|_| sample_gamma(k, theta, &mut rng))
                .collect();
            let (mean, var) = moments(&xs);
            assert!(
                (mean - k * theta).abs() < 0.08 * (k * theta).max(1.0),
                "k={k} θ={theta}: mean {mean}"
            );
            assert!(
                (var - k * theta * theta).abs() < 0.15 * (k * theta * theta).max(1.0),
                "k={k} θ={theta}: var {var}"
            );
            assert!(xs.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn lognormal_median() {
        // Median of LogNormal(μ, σ) is e^μ.
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<f64> = (0..50_001)
            .map(|_| sample_lognormal(0.5306, 0.78, &mut rng))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.7).abs() < 0.05, "median {median}");
    }

    #[test]
    fn determinism_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| sample_gamma(2.0, 1.0, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| sample_gamma(2.0, 1.0, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

//! Microbenchmark answer populations (paper §6).
//!
//! "In the experiment, we randomly generated 10,000 original answers,
//! 60% of which are 'Yes' answers." This module produces exactly such
//! populations, deterministically under a seed, with the yes-answers
//! randomly permuted through the population (so client-side sampling
//! sees an exchangeable stream).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A generated population of boolean answers.
#[derive(Debug, Clone)]
pub struct MicroAnswers {
    answers: Vec<bool>,
    yes_count: u64,
}

impl MicroAnswers {
    /// Generates `n` answers with an (exact, rounded) `yes_fraction`,
    /// shuffled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `yes_fraction ∈ [0, 1]`.
    pub fn generate(n: u64, yes_fraction: f64, seed: u64) -> MicroAnswers {
        assert!(
            (0.0..=1.0).contains(&yes_fraction),
            "yes_fraction must be in [0,1]"
        );
        let yes_count = (n as f64 * yes_fraction).round() as u64;
        let mut answers: Vec<bool> = (0..n).map(|i| i < yes_count).collect();
        answers.shuffle(&mut StdRng::seed_from_u64(seed));
        MicroAnswers { answers, yes_count }
    }

    /// The paper's standard setting: 10,000 answers, 60 % yes.
    pub fn paper_default(seed: u64) -> MicroAnswers {
        MicroAnswers::generate(10_000, 0.6, seed)
    }

    /// The answers.
    pub fn answers(&self) -> &[bool] {
        &self.answers
    }

    /// Population size `N`.
    pub fn len(&self) -> u64 {
        self.answers.len() as u64
    }

    /// True for an empty population.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Exact number of truthful-Yes answers `A_y`.
    pub fn yes_count(&self) -> u64 {
        self.yes_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let m = MicroAnswers::paper_default(7);
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.yes_count(), 6_000);
        assert_eq!(m.answers().iter().filter(|&&b| b).count(), 6_000);
    }

    #[test]
    fn yes_fraction_is_exact_after_rounding() {
        let m = MicroAnswers::generate(1_000, 0.335, 1);
        assert_eq!(m.yes_count(), 335);
        let m = MicroAnswers::generate(3, 0.5, 1);
        assert_eq!(m.yes_count(), 2); // 1.5 rounds to 2
    }

    #[test]
    fn shuffle_is_seeded_and_nontrivial() {
        let a = MicroAnswers::generate(100, 0.5, 1);
        let b = MicroAnswers::generate(100, 0.5, 1);
        let c = MicroAnswers::generate(100, 0.5, 2);
        assert_eq!(a.answers(), b.answers(), "same seed, same order");
        assert_ne!(a.answers(), c.answers(), "different seed, different order");
        // Not sorted (shuffle actually happened).
        let sorted: Vec<bool> = {
            let mut v = a.answers().to_vec();
            v.sort_unstable();
            v
        };
        assert_ne!(a.answers(), &sorted[..]);
    }

    #[test]
    fn extremes() {
        assert_eq!(MicroAnswers::generate(50, 0.0, 1).yes_count(), 0);
        assert_eq!(MicroAnswers::generate(50, 1.0, 1).yes_count(), 50);
        assert!(MicroAnswers::generate(0, 0.5, 1).is_empty());
    }
}

//! Household electricity-consumption generator.
//!
//! The second case study analyzes "the electricity usage distribution
//! of households over the past 30 minutes" with six half-kWh buckets:
//! `[0, 0.5], (0.5, 1], …, (2.5, 3]` kWh (paper §7.1). Readings here
//! are Gamma-distributed around a day-shaped load curve (morning and
//! evening peaks), the standard shape for residential smart-meter
//! data; the Gamma keeps readings positive and right-skewed.

use crate::dist::sample_gamma;
use privapprox_types::query::BucketRule;
use privapprox_types::{AnswerSpec, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One smart-meter reading: kWh consumed over a 30-minute interval.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterReading {
    /// Interval end time.
    pub ts: Timestamp,
    /// Household identifier.
    pub household: u64,
    /// Energy used in the interval, kWh.
    pub kwh: f64,
}

/// The paper's 6-bucket answer format: `[0, 0.5], (0.5, 1], …,
/// (2.5, 3]` kWh.
///
/// Encoded as half-open `[lo, hi)` ranges shifted by an epsilon so the
/// paper's closed-upper intervals map onto [`BucketRule::Range`]; a
/// final catch-all absorbs rare readings above 3 kWh so every reading
/// is answerable.
pub fn electricity_answer_spec() -> AnswerSpec {
    let mut buckets: Vec<BucketRule> = (0..6)
        .map(|i| BucketRule::Range {
            lo: i as f64 * 0.5,
            hi: (i + 1) as f64 * 0.5,
        })
        .collect();
    buckets.push(BucketRule::Range {
        lo: 3.0,
        hi: f64::INFINITY,
    });
    AnswerSpec::new(buckets)
}

/// Mean half-hour consumption (kWh) by hour of day: overnight trough,
/// morning bump, evening peak.
fn load_curve(hour: f64) -> f64 {
    // Base 0.25 kWh + morning bump around 07:30 + evening peak ~19:00.
    let morning = 0.35 * (-((hour - 7.5) * (hour - 7.5)) / 4.5).exp();
    let evening = 0.75 * (-((hour - 19.0) * (hour - 19.0)) / 6.0).exp();
    0.25 + morning + evening
}

/// Deterministic generator of per-household readings every 30 minutes.
#[derive(Debug)]
pub struct ElectricityGenerator {
    rng: StdRng,
    households: u64,
    interval_ms: u64,
    tick: u64,
}

impl ElectricityGenerator {
    /// Creates a generator for `households` meters reporting every 30
    /// minutes.
    ///
    /// # Panics
    ///
    /// Panics if `households` is zero.
    pub fn new(seed: u64, households: u64) -> ElectricityGenerator {
        assert!(households > 0, "need at least one household");
        ElectricityGenerator {
            rng: StdRng::seed_from_u64(seed),
            households,
            interval_ms: 30 * 60 * 1000,
            tick: 0,
        }
    }

    /// Produces the next full interval: one reading per household.
    pub fn next_interval(&mut self) -> Vec<MeterReading> {
        let ts = Timestamp(self.tick * self.interval_ms);
        let hour = (self.tick as f64 * 0.5) % 24.0;
        let mean = load_curve(hour);
        // Gamma with shape 4 ⇒ CV = 0.5; scale = mean / shape.
        let shape = 4.0;
        let scale = mean / shape;
        let readings = (0..self.households)
            .map(|household| MeterReading {
                ts,
                household,
                kwh: sample_gamma(shape, scale, &mut self.rng),
            })
            .collect();
        self.tick += 1;
        readings
    }

    /// Number of households.
    pub fn households(&self) -> u64 {
        self.households
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_spec_covers_the_paper_buckets() {
        let spec = electricity_answer_spec();
        assert_eq!(spec.len(), 7); // 6 paper buckets + overflow
        assert_eq!(spec.bucketize_num(0.0), Some(0));
        assert_eq!(spec.bucketize_num(0.49), Some(0));
        assert_eq!(spec.bucketize_num(0.75), Some(1));
        assert_eq!(spec.bucketize_num(2.9), Some(5));
        assert_eq!(spec.bucketize_num(5.0), Some(6));
    }

    #[test]
    fn one_reading_per_household_per_interval() {
        let mut g = ElectricityGenerator::new(1, 250);
        let batch = g.next_interval();
        assert_eq!(batch.len(), 250);
        let mut ids: Vec<u64> = batch.iter().map(|r| r.household).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 250, "each household reports once");
        assert!(batch.iter().all(|r| r.ts == Timestamp(0)));
        let batch2 = g.next_interval();
        assert!(batch2.iter().all(|r| r.ts == Timestamp(30 * 60 * 1000)));
    }

    #[test]
    fn readings_are_positive_and_mostly_under_3kwh() {
        let mut g = ElectricityGenerator::new(2, 100);
        let mut all = Vec::new();
        for _ in 0..48 {
            all.extend(g.next_interval());
        }
        assert!(all.iter().all(|r| r.kwh > 0.0));
        let over3 = all.iter().filter(|r| r.kwh > 3.0).count() as f64;
        let over3_frac = over3 / all.len() as f64;
        assert!(
            over3_frac < 0.01,
            "too many readings above the paper's top bucket"
        );
    }

    #[test]
    fn evening_peak_exceeds_overnight_trough() {
        let mut g = ElectricityGenerator::new(3, 2000);
        let mut hourly_mean = vec![0.0f64; 48];
        for i in 0..48 {
            let batch = g.next_interval();
            hourly_mean[i] = batch.iter().map(|r| r.kwh).sum::<f64>() / batch.len() as f64;
        }
        // Tick 38 = hour 19 (evening peak); tick 6 = hour 3 (trough).
        assert!(
            hourly_mean[38] > 2.0 * hourly_mean[6],
            "peak {} vs trough {}",
            hourly_mean[38],
            hourly_mean[6]
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let a = ElectricityGenerator::new(9, 10).next_interval();
        let b = ElectricityGenerator::new(9, 10).next_interval();
        assert_eq!(a, b);
    }
}

//! Synthetic workload generators.
//!
//! The paper evaluates on two private datasets this reproduction
//! cannot ship: the DEBS 2015 NYC Taxi trace and a household
//! electricity-consumption trace. The experiments only consume each
//! dataset through its *bucketed histogram stream* (11 distance
//! buckets; 6 kWh buckets), so faithful synthetic generators preserve
//! the experimental behaviour. Calibration targets come from the paper
//! itself: §7.2 #III notes "the fraction of truthful 'Yes' answers in
//! the [taxi] dataset is 33.57 %" for the dominant bucket, which pins
//! the log-normal parameters of [`taxi`].
//!
//! * [`micro`] — the §6 microbenchmark populations (N answers, given
//!   yes-fraction);
//! * [`taxi`] — NYC-taxi-like rides (log-normal trip distances,
//!   exponential inter-arrivals);
//! * [`electricity`] — household load readings (Gamma-distributed
//!   around a day-shaped curve);
//! * [`dist`] — the small distribution toolkit (Box-Muller normal,
//!   Marsaglia-Tsang gamma, exponential) behind the generators.
//!
//! Everything is deterministic under a caller-supplied seed.

pub mod dist;
pub mod electricity;
pub mod micro;
pub mod taxi;

pub use electricity::{electricity_answer_spec, ElectricityGenerator, MeterReading};
pub use micro::MicroAnswers;
pub use taxi::{taxi_answer_spec, TaxiGenerator, TaxiRide};

//! Multi-tenant scheduling: K concurrent queries sharing one worker
//! pool must produce **byte-identical** per-query results to the same
//! K queries run sequentially in isolation — the property that makes
//! the multi-tenant runtime a drop-in. It holds because each
//! (client, query) pair owns an RNG stream seeded from the *same*
//! material whether or not other queries share the epoch, shares are
//! routed by a query-tagged wire key so the join and the window
//! accumulation never mix tenants, and the shared epoch clock steps
//! identically for any schedule width.
//!
//! The isolation baselines submit **all** K queries (so query ids and
//! signatures match the concurrent run) but admit only one — the
//! others never answer an epoch.
//!
//! Alongside the equivalence matrix this suite pins the rest of the
//! multi-tenant contract:
//! * per-query privacy-budget ledgers never over-spend, under
//!   arbitrary charge interleavings (property test) and in the real
//!   scheduler (a retired query emits exactly one terminal
//!   [`Retirement`] and zero further results);
//! * feedback retuning is monotone under excess error, stays within
//!   `(0, 1]` × `(0, max_p]`, and replays identically per seed;
//! * a recycled batch-query estimator must not leak a prior query's
//!   counts into a historical answer (the PR-2 pooled-window
//!   lifecycle regression).
//!
//! The quick matrix runs in the tier-1 suite; the exhaustive
//! K ∈ {2,4} × shards {1,2,4} × widths {11, 10⁴} × depths {1,3}
//! sweep is `#[ignore]`d and run by the CI stress job.

use privapprox_core::aggregator::QueryResult;
use privapprox_core::{DeployHealth, FeedbackController, ShardedSystem, Warehouse};
use privapprox_rr::privacy::epsilon_zk;
use privapprox_rr::BucketEstimator;
use privapprox_types::{
    AnswerSpec, BudgetLedger, ExecutionParams, MessageId, PrivacyBudget, Query, Timestamp, Window,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POPULATION: u64 = 120;
const WINDOW_MS: u64 = 1_000;

/// Exact (bit-level for floats) equality of two results.
fn assert_results_identical(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.query, b.query, "{context}: query id");
    assert_eq!(a.window, b.window, "{context}: window");
    assert_eq!(a.sample_size, b.sample_size, "{context}: sample size");
    assert_eq!(a.population, b.population, "{context}: population");
    assert_eq!(a.buckets.len(), b.buckets.len(), "{context}: bucket count");
    let bits = f64::to_bits;
    for (i, (x, y)) in a.buckets.iter().zip(&b.buckets).enumerate() {
        let c = format!("{context}: bucket {i}");
        assert_eq!(x.raw_yes, y.raw_yes, "{c} raw_yes");
        assert_eq!(
            bits(x.estimate_sample),
            bits(y.estimate_sample),
            "{c} estimate_sample"
        );
        assert_eq!(bits(x.estimate), bits(y.estimate), "{c} estimate");
        assert_eq!(bits(x.ci.estimate), bits(y.ci.estimate), "{c} ci.estimate");
        assert_eq!(bits(x.ci.bound), bits(y.ci.bound), "{c} ci.bound");
        assert_eq!(
            bits(x.sampling_error),
            bits(y.sampling_error),
            "{c} sampling_error"
        );
        assert_eq!(bits(x.rr_error), bits(y.rr_error), "{c} rr_error");
    }
    assert_eq!(bits(a.privacy.eps_zk), bits(b.privacy.eps_zk), "{context}: eps_zk");
}

/// Per-query execution parameters for tenant `j`: distinct sampling
/// rates so the tenants genuinely differ (identical streams would
/// mask cross-tenant mixing).
fn tenant_params(j: usize) -> ExecutionParams {
    ExecutionParams::checked(0.9 - 0.07 * j as f64, 0.8, 0.6)
}

struct Matrix {
    seed: u64,
    k: usize,
    shards: usize,
    depth: usize,
    buckets: usize,
    epochs: usize,
    /// Kill this worker between epochs `fault.0` and `fault.0 + 1`.
    fault: Option<(usize, usize)>,
}

/// Builds a deployment and submits `k` queries (registering all of
/// them so ids/signatures are schedule-independent).
fn build(m: &Matrix) -> (ShardedSystem, Vec<Query>) {
    let mut sys = ShardedSystem::builder()
        .clients(POPULATION)
        .proxies(2)
        .shards(m.shards)
        .workers(m.shards)
        .pipeline_depth(m.depth)
        .concurrent_queries(m.k)
        .seed(m.seed)
        .build();
    sys.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64)
        .unwrap();
    let spec = AnswerSpec::ranges_with_overflow(0.0, 110.0, m.buckets - 1);
    let queries: Vec<Query> = (0..m.k)
        .map(|j| {
            sys.analyst()
                .query("SELECT speed FROM vehicle")
                .buckets(spec.clone())
                .window(WINDOW_MS, WINDOW_MS)
                .params(tenant_params(j))
                .submit()
                .unwrap()
        })
        .collect();
    (sys, queries)
}

/// Runs the schedule `admit` (indices into the submitted queries) for
/// `epochs` epochs and returns the drained result sequence plus
/// health. Worker faults named by the matrix are injected between
/// epochs; the surfaced supervision error is expected, not fatal.
fn run_schedule(m: &Matrix, admit: &[usize]) -> (Vec<QueryResult>, DeployHealth) {
    let (mut sys, queries) = build(m);
    for &j in admit {
        sys.admit(queries[j].id).unwrap();
    }
    let mut faulted = false;
    for epoch in 0..m.epochs {
        if let Some((after, w)) = m.fault {
            if epoch == after {
                // Between epochs: the Die command precedes the next
                // epoch's Answer commands on the worker's channel, so
                // the dying worker contributes zero shares to it.
                sys.inject_worker_panic(w);
                faulted = true;
            }
        }
        match sys.run_epoch_all() {
            Ok(()) => {}
            Err(e) => assert!(faulted, "unexpected epoch error: {e}"),
        }
    }
    let results = sys.drain_results();
    let health = sys.deploy_health();
    (results, health)
}

/// The core property: the concurrent run's per-query result sequence
/// equals each query's isolation run, byte for byte.
fn assert_concurrent_equals_isolated(m: &Matrix) {
    let context = format!(
        "seed {} k {} shards {} depth {} buckets {} fault {:?}",
        m.seed, m.k, m.shards, m.depth, m.buckets, m.fault
    );
    let all: Vec<usize> = (0..m.k).collect();
    let (concurrent, health) = run_schedule(m, &all);
    assert_eq!(
        concurrent.len(),
        m.k * m.epochs,
        "{context}: every admitted query answers every epoch"
    );
    if m.fault.is_none() {
        assert_eq!(health.respawns, 0, "{context}: fault-free");
        assert_eq!(health.partial_closes, 0, "{context}");
    } else {
        assert!(health.respawns >= 1, "{context}: fault repaired");
    }
    for j in 0..m.k {
        let (isolated, _) = run_schedule(m, &[j]);
        let mine: Vec<&QueryResult> = concurrent
            .iter()
            .filter(|r| r.query == all_query_id(m, j))
            .collect();
        assert_eq!(
            mine.len(),
            isolated.len(),
            "{context} query {j}: result count"
        );
        for (i, (got, want)) in mine.iter().zip(&isolated).enumerate() {
            assert_results_identical(got, want, &format!("{context} query {j} epoch {i}"));
        }
    }
}

/// The id query `j` receives from the analyst session (serials are
/// assigned in submission order, schedule-independent).
fn all_query_id(m: &Matrix, j: usize) -> privapprox_types::QueryId {
    let (_, queries) = build(&Matrix { epochs: 0, ..*m });
    queries[j].id
}

// ---------------------------------------------------------------
// Tentpole: the deterministic multi-query equivalence matrix.
// ---------------------------------------------------------------

/// Quick matrix (tier-1): two tenants across shard counts, both
/// bucket widths, barrier and pipelined depths.
#[test]
fn two_tenants_equal_isolated_runs() {
    for &shards in &[1usize, 2, 4] {
        for &buckets in &[11usize, 10_000] {
            for &depth in &[1usize, 3] {
                assert_concurrent_equals_isolated(&Matrix {
                    seed: 7,
                    k: 2,
                    shards,
                    depth,
                    buckets,
                    epochs: 2,
                    fault: None,
                });
            }
        }
    }
}

/// Quick K = 4 case (tier-1): four tenants, pipelined.
#[test]
fn four_tenants_equal_isolated_runs() {
    assert_concurrent_equals_isolated(&Matrix {
        seed: 11,
        k: 4,
        shards: 2,
        depth: 3,
        buckets: 11,
        epochs: 2,
        fault: None,
    });
}

/// Fault case (tier-1): a worker panics mid-stream between epochs.
/// The respawned worker replays its history muted (advancing every
/// tenant's RNG streams independently), so the equivalence holds even
/// across the faulted epoch — and no tenant's shares contaminate
/// another's windows.
#[test]
fn worker_panic_mid_stream_preserves_tenant_isolation() {
    assert_concurrent_equals_isolated(&Matrix {
        seed: 13,
        k: 2,
        shards: 2,
        depth: 3,
        buckets: 11,
        epochs: 4,
        fault: Some((1, 1)),
    });
}

/// Exhaustive sweep: the full K × shards × widths × depths matrix,
/// including a fault case per K. `#[ignore]`d — the CI stress job
/// runs it (`--include-ignored`, release).
#[test]
#[ignore = "exhaustive; run by the CI stress job"]
fn exhaustive_multi_query_matrix() {
    for &k in &[2usize, 4] {
        for &shards in &[1usize, 2, 4] {
            for &buckets in &[11usize, 10_000] {
                for &depth in &[1usize, 3] {
                    assert_concurrent_equals_isolated(&Matrix {
                        seed: 17 + k as u64,
                        k,
                        shards,
                        depth,
                        buckets,
                        epochs: 2,
                        fault: None,
                    });
                }
            }
        }
        assert_concurrent_equals_isolated(&Matrix {
            seed: 29 + k as u64,
            k,
            shards: 2,
            depth: 3,
            buckets: 11,
            epochs: 4,
            fault: Some((1, k % 2)),
        });
    }
}

// ---------------------------------------------------------------
// Satellite: per-query budgets never over-spend; retirement is a
// typed, exactly-once terminal.
// ---------------------------------------------------------------

proptest! {
    /// Arbitrary interleavings of epoch charges across queries: no
    /// ledger ever spends more than its allowance, a rejected charge
    /// leaves the ledger untouched, and the first rejection is
    /// terminal for that ledger (every later identical charge is
    /// rejected too — the scheduler retires on first refusal).
    #[test]
    fn budget_ledger_never_overspends(
        allowances in proptest::collection::vec(0.0f64..20.0, 1..6),
        charges in proptest::collection::vec((0usize..6, 0.01f64..5.0), 0..64),
    ) {
        let mut ledgers: Vec<BudgetLedger> = allowances
            .iter()
            .map(|&a| BudgetLedger::new(PrivacyBudget::new(a.max(0.001)).unwrap()))
            .collect();
        let mut exhausted = vec![false; ledgers.len()];
        for (q, eps) in charges {
            let q = q % ledgers.len();
            let before = ledgers[q].spent();
            match ledgers[q].try_charge(eps) {
                Ok(()) => {
                    prop_assert!(!exhausted[q], "charge admitted after exhaustion");
                    prop_assert!(
                        ledgers[q].spent() <= ledgers[q].allocated() + 1e-12,
                        "over-spent: {} > {}",
                        ledgers[q].spent(),
                        ledgers[q].allocated()
                    );
                }
                Err(ex) => {
                    prop_assert_eq!(ledgers[q].spent().to_bits(), before.to_bits());
                    prop_assert!(ex.spent + ex.requested > ex.allocated);
                    if eps >= 5.0 - f64::EPSILON {
                        exhausted[q] = true;
                    }
                }
            }
        }
        for l in &ledgers {
            prop_assert!(l.spent() <= l.allocated() + 1e-12);
        }
    }
}

/// A budget covering exactly two epochs retires the query at its
/// third: exactly one `Retirement` (spent ≤ allocated, epochs = 2),
/// zero results for the retired query afterwards, and the surviving
/// tenant keeps answering every epoch.
#[test]
fn exhausted_budget_retires_query_exactly_once() {
    let m = Matrix {
        seed: 19,
        k: 2,
        shards: 2,
        depth: 1,
        buckets: 11,
        epochs: 0,
        fault: None,
    };
    let (mut sys, queries) = build(&m);
    let eps = epsilon_zk(tenant_params(0).s, tenant_params(0).p, tenant_params(0).q);
    sys.set_budget(queries[0].id, PrivacyBudget::new(2.5 * eps).unwrap())
        .unwrap();
    for q in &queries {
        sys.admit(q.id).unwrap();
    }
    for _ in 0..5 {
        sys.run_epoch_all().unwrap();
    }
    let results = sys.drain_results();
    let for_q0 = results.iter().filter(|r| r.query == queries[0].id).count();
    let for_q1 = results.iter().filter(|r| r.query == queries[1].id).count();
    assert_eq!(for_q0, 2, "budget covers exactly two epochs");
    assert_eq!(for_q1, 5, "survivor answers every epoch");
    let retired = sys.drain_retired();
    assert_eq!(retired.len(), 1, "exactly one terminal result");
    assert_eq!(retired[0].query, queries[0].id);
    assert_eq!(retired[0].epochs, 2);
    assert!(retired[0].spent <= retired[0].allocated);
    assert!(sys.drain_retired().is_empty(), "terminal is drained once");
    assert!(!sys.admitted().contains(&queries[0].id));
    assert!(
        sys.admit(queries[0].id).is_err(),
        "a retired query cannot re-enter the schedule"
    );
    let ledger = sys.budget_ledger(queries[0].id).unwrap();
    assert!(ledger.spent() <= ledger.allocated());
    // Zero further shares: two more epochs yield survivor-only
    // results and no new retirement.
    for _ in 0..2 {
        sys.run_epoch_all().unwrap();
    }
    let more = sys.drain_results();
    assert!(more.iter().all(|r| r.query == queries[1].id));
    assert_eq!(more.len(), 2);
    assert!(sys.drain_retired().is_empty());
    assert_eq!(sys.deploy_health().partial_closes, 0);
}

// ---------------------------------------------------------------
// Satellite: feedback retuning is monotone, bounded, deterministic.
// ---------------------------------------------------------------

proptest! {
    /// When the observed error exceeds the target, the next sampling
    /// rate never decreases; every retuned rate stays within
    /// `(0, 1]` and `p` within `(0, max_p]`.
    #[test]
    fn feedback_is_monotone_and_bounded(
        s in 0.05f64..1.0,
        p in 0.3f64..0.95,
        q in 0.2f64..0.8,
        target in 0.01f64..0.5,
        observed in 0.0f64..4.0,
    ) {
        let ctrl = FeedbackController::new(target, 0.5, 0.95);
        let current = ExecutionParams::checked(s, p, q);
        let (next, _) = ctrl.retune(current, observed);
        prop_assert!(next.s > 0.0 && next.s <= 1.0, "s out of range: {}", next.s);
        prop_assert!(next.p > 0.0 && next.p <= 0.95 + 1e-12, "p out of range: {}", next.p);
        prop_assert!(next.q > 0.0 && next.q < 1.0);
        if observed > target {
            prop_assert!(
                next.s >= current.s - 1e-12,
                "rate decreased under excess error: {} -> {}",
                current.s,
                next.s
            );
        }
    }

    /// Retuning is a pure function: the same trajectory of observed
    /// errors replays to identical parameters, bit for bit.
    #[test]
    fn feedback_replays_identically(
        s in 0.05f64..1.0,
        target in 0.01f64..0.5,
        errors in proptest::collection::vec(0.0f64..3.0, 1..12),
    ) {
        let ctrl = FeedbackController::new(target, 0.5, 0.95);
        let start = ExecutionParams::checked(s, 0.8, 0.6);
        let run = |mut cur: ExecutionParams| -> Vec<(u64, u64, u64)> {
            errors
                .iter()
                .map(|&e| {
                    let (next, _) = ctrl.retune(cur, e);
                    cur = next;
                    (next.s.to_bits(), next.p.to_bits(), next.q.to_bits())
                })
                .collect()
        };
        prop_assert_eq!(run(start), run(start));
    }
}

/// Deploy-level feedback: a tight error target grows the sampling
/// rate from the previous window's observed error; the retune lands
/// on an epoch boundary (flush first), and a loose target changes
/// nothing.
#[test]
fn feedback_drives_sample_rate_from_observed_error() {
    let m = Matrix {
        seed: 23,
        k: 2,
        shards: 2,
        depth: 2,
        buckets: 11,
        epochs: 0,
        fault: None,
    };
    let (mut sys, queries) = build(&m);
    for q in &queries {
        sys.admit(q.id).unwrap();
    }
    // Tight target on tenant 0; tenant 1 runs uncontrolled.
    sys.enable_feedback(queries[0].id, FeedbackController::new(1e-6, 0.5, 0.9))
        .unwrap();
    sys.run_epoch_all().unwrap();
    let e0 = sys.last_observed_error(queries[0].id).unwrap();
    assert!(e0.is_finite() && e0 > 0.0);
    sys.apply_feedback().unwrap();
    sys.run_epoch_all().unwrap();
    let results = sys.drain_results();
    let eps0: Vec<f64> = results
        .iter()
        .filter(|r| r.query == queries[0].id)
        .map(|r| r.privacy.eps_zk)
        .collect();
    // Tenant 0's second-epoch spend grew with its sampling rate
    // (ε_zk is monotone in s); tenant 1's did not move.
    assert!(
        eps0[1] > eps0[0],
        "rate did not grow under a tight target: {eps0:?}"
    );
    let eps1: Vec<f64> = results
        .iter()
        .filter(|r| r.query == queries[1].id)
        .map(|r| r.privacy.eps_zk)
        .collect();
    assert_eq!(eps1[0].to_bits(), eps1[1].to_bits(), "no controller: unchanged");
}

// ---------------------------------------------------------------
// Satellite: historical answers from retained windows; a recycled
// estimator must not leak a prior query's counts.
// ---------------------------------------------------------------

/// `batch_query_with` through a deliberately dirty recycled estimator
/// equals the fresh-estimator `batch_query`, bit for bit — the
/// pooled-lifecycle regression at the `Warehouse` layer.
#[test]
fn recycled_estimator_does_not_leak_into_batch_answer() {
    let params = ExecutionParams::checked(1.0, 0.9, 0.6);
    let qid = privapprox_types::QueryId::new(privapprox_types::AnalystId(1), 1);
    let mut w = Warehouse::new(qid, 4, params, 1_000);
    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..200u64 {
        let mut answer = privapprox_types::BitVec::zeros(4);
        answer.set((i % 4) as usize, true);
        w.append(Timestamp(i * 10), MessageId(i as u128), answer);
    }
    let range = Window {
        start: Timestamp(0),
        end: Timestamp(2_000),
    };
    let want = w.batch_query(range, 64, 0.95, &mut StdRng::seed_from_u64(7));
    // Poison a recycled estimator with a "prior query's" counts.
    let mut dirty = BucketEstimator::new(4, 0.9, 0.6);
    for _ in 0..50 {
        let mut other = privapprox_types::BitVec::zeros(4);
        other.set(0, true);
        dirty.push(&other);
    }
    let _ = &mut rng;
    let got = w.batch_query_with(&mut dirty, range, 64, 0.95, &mut StdRng::seed_from_u64(7));
    assert_results_identical(&want, &got, "recycled estimator");
}

/// End-to-end: a deployment answers a historical batch query from the
/// shards' retained windows, identically whether or not a *different*
/// query's batch answer was computed first through the same recycled
/// scratch estimator.
#[test]
fn historical_answers_survive_scratch_recycling_across_queries() {
    let m = Matrix {
        seed: 31,
        k: 2,
        shards: 2,
        depth: 1,
        buckets: 11,
        epochs: 0,
        fault: None,
    };
    let run = |interleave: bool| -> QueryResult {
        let (mut sys, queries) = build(&m);
        for q in &queries {
            sys.admit(q.id).unwrap();
            sys.retain_history(q.id).unwrap();
        }
        for _ in 0..3 {
            sys.run_epoch_all().unwrap();
        }
        let range = Window {
            start: Timestamp(0),
            end: Timestamp(10 * WINDOW_MS),
        };
        if interleave {
            // Dirty the recycled scratch with tenant 0's counts first.
            let _ = sys.batch_query(queries[0].id, range, 40).unwrap();
        }
        sys.batch_query(queries[1].id, range, 40).unwrap()
    };
    let clean = run(false);
    let interleaved = run(true);
    assert!(clean.sample_size > 0, "retained windows answered");
    assert_results_identical(&clean, &interleaved, "scratch recycling");
}

/// Retention is an in-process capability: a query that never opted in
/// has no store to query.
#[test]
fn batch_query_requires_retention() {
    let m = Matrix {
        seed: 37,
        k: 1,
        shards: 1,
        depth: 1,
        buckets: 11,
        epochs: 0,
        fault: None,
    };
    let (mut sys, queries) = build(&m);
    let range = Window {
        start: Timestamp(0),
        end: Timestamp(WINDOW_MS),
    };
    assert!(sys.batch_query(queries[0].id, range, 10).is_err());
}

// ---------------------------------------------------------------
// Schedule hygiene.
// ---------------------------------------------------------------

/// Queries on one schedule must share a window size (one shared epoch
/// clock tags every admitted query's answers).
#[test]
fn admit_rejects_mismatched_window_sizes() {
    let m = Matrix {
        seed: 41,
        k: 1,
        shards: 1,
        depth: 1,
        buckets: 11,
        epochs: 0,
        fault: None,
    };
    let (mut sys, queries) = build(&m);
    let spec = AnswerSpec::ranges_with_overflow(0.0, 110.0, 10);
    let other = sys
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec)
        .window(2_000, 2_000)
        .params(tenant_params(1))
        .submit()
        .unwrap();
    sys.admit(queries[0].id).unwrap();
    sys.admit(queries[0].id).unwrap(); // idempotent
    assert_eq!(sys.admitted().len(), 1);
    assert!(sys.admit(other.id).is_err(), "window sizes must agree");
    sys.withdraw(queries[0].id);
    sys.admit(other.id).unwrap();
}

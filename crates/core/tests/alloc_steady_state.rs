//! Verifies the headline property of the allocation-free hot path:
//! once scratch buffers are warm, the steady-state client→aggregator
//! pipeline (randomize → encode → split → join → decode → fold)
//! performs **zero** heap allocations per message.
//!
//! This file deliberately contains a single test: the counting
//! allocator is process-global, and a sibling test allocating on
//! another thread would show up in the counters.

use privapprox_crypto::xor::{decode_answer_into, encode_answer_into};
use privapprox_crypto::{SplitScratch, XorSplitter};
use privapprox_rr::estimate::BucketEstimator;
use privapprox_rr::randomize::Randomizer;
use privapprox_stream::join::{JoinOutcome, MidJoiner};
use privapprox_types::ids::AnalystId;
use privapprox_types::{BitVec, MessageId, QueryId, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocator wrapper counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_pipeline_allocates_nothing() {
    for &(proxies, buckets) in &[(2usize, 11usize), (3, 10_000)] {
        let mut rng = StdRng::seed_from_u64(42 + buckets as u64);
        let qid = QueryId::new(AnalystId(1), 1);
        let randomizer = Randomizer::new(0.9, 0.6);
        let splitter = XorSplitter::new(proxies);
        let truth = BitVec::one_hot(buckets, buckets / 2);

        let mut randomized = BitVec::zeros(buckets);
        let mut message = Vec::new();
        let mut split = SplitScratch::new();
        // Short join timeout so quarantine entries age out during the
        // run instead of accumulating map growth.
        let mut joiner = MidJoiner::new(proxies, 10);
        let mut estimator = BucketEstimator::new(buckets, 0.9, 0.6);
        let mut decoded = BitVec::zeros(buckets);

        let mut epoch = |rng: &mut StdRng,
                         joiner: &mut MidJoiner,
                         estimator: &mut BucketEstimator,
                         now: u64| {
            randomizer.randomize_vec_into(&truth, &mut randomized, rng);
            encode_answer_into(qid, &randomized, &mut message);
            let mid = MessageId(rng.gen());
            let shares = splitter.split_into(&message, mid, rng, &mut split);
            for (source, share) in shares.iter().enumerate() {
                if let JoinOutcome::Complete(joined) =
                    joiner.offer(share.mid, source, &share.payload, Timestamp(now))
                {
                    decode_answer_into(&joined, &mut decoded).expect("decodes");
                    estimator.push(&decoded);
                    joiner.recycle(joined);
                }
            }
            joiner.sweep(Timestamp(now));
        };

        // Warm every scratch buffer, hash-map table, and buffer pool.
        for i in 0..2_000u64 {
            epoch(&mut rng, &mut joiner, &mut estimator, i * 100);
        }

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 2_000..4_000u64 {
            epoch(&mut rng, &mut joiner, &mut estimator, i * 100);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(
            after - before,
            0,
            "steady-state pipeline allocated {} times over 2000 messages \
             (proxies = {proxies}, buckets = {buckets})",
            after - before
        );
        assert_eq!(estimator.total(), 4_000);
    }
}

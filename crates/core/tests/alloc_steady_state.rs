//! Verifies the headline property of the allocation-free hot path:
//! once scratch buffers, prepared plans and pools are warm, the
//! steady-state pipeline performs **zero** heap allocations
//!
//! * per message — the full client answer path (plan-cache hit →
//!   prepared SQL scan → bucketize → randomize → encode → split) and
//!   the aggregator's join → decode → fold path,
//! * per randomize call — the `RandomizeScratch`/`WideRng` bulk-RNG
//!   buffers materialize on first use only, and
//! * per window close — `advance_watermark_into` with the estimator
//!   pool and recycled result shells.
//!
//! This file deliberately contains a single test: the counting
//! allocator is process-global, and a sibling test allocating on
//! another thread would show up in the counters.

use privapprox_core::aggregator::{finalize_window_into, QueryResult, RawWindow};
use privapprox_core::client::{Client, ClientScratch};
use privapprox_core::proxy::{inbound_topic, Proxy};
use privapprox_core::Aggregator;
use privapprox_crypto::xor::{combine, decode_answer_into, encode_answer_into, wire_key, Share, SlotPool};
use privapprox_crypto::{SplitScratch, XorSplitter};
use privapprox_rr::estimate::BucketEstimator;
use privapprox_rr::randomize::{RandomizeScratch, Randomizer};
use privapprox_sql::{ColumnType, Schema, Value};
use privapprox_stream::broker::{BatchEntry, Broker, TopicWriter};
use privapprox_stream::join::{JoinOutcome, MidJoiner};
use privapprox_types::ids::AnalystId;
use privapprox_types::{
    AnswerSpec, BitVec, ClientId, ExecutionParams, MessageId, ProxyId, Query, QueryBuilder,
    QueryId, Timestamp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocator wrapper counting every allocation and reallocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const KEY: u64 = 0xA110C;

/// The raw share pipeline (no SQL): randomize → encode → split →
/// join → decode → fold, as proven since PR 1.
fn raw_pipeline_allocates_nothing() {
    for &(proxies, buckets) in &[(2usize, 11usize), (3, 10_000)] {
        let mut rng = StdRng::seed_from_u64(42 + buckets as u64);
        let qid = QueryId::new(AnalystId(1), 1);
        let randomizer = Randomizer::new(0.9, 0.6);
        let splitter = XorSplitter::new(proxies);
        let truth = BitVec::one_hot(buckets, buckets / 2);

        let mut randomized = BitVec::zeros(buckets);
        let mut message = Vec::new();
        let mut split = SplitScratch::new();
        // Short join timeout so quarantine entries age out during the
        // run instead of accumulating map growth.
        let mut joiner = MidJoiner::new(proxies, 10);
        let mut estimator = BucketEstimator::new(buckets, 0.9, 0.6);
        let mut decoded = BitVec::zeros(buckets);

        let mut epoch = |rng: &mut StdRng,
                         joiner: &mut MidJoiner,
                         estimator: &mut BucketEstimator,
                         now: u64| {
            randomizer.randomize_vec_into(&truth, &mut randomized, rng);
            encode_answer_into(qid, &randomized, &mut message);
            let mid = MessageId(rng.gen());
            let shares = splitter.split_into(&message, mid, rng, &mut split);
            for (source, share) in shares.iter().enumerate() {
                if let JoinOutcome::Complete(joined) =
                    joiner.offer(0, share.mid, source, &share.payload, Timestamp(now))
                {
                    decode_answer_into(&joined, &mut decoded).expect("decodes");
                    estimator.push(&decoded);
                    joiner.recycle(joined);
                }
            }
            joiner.sweep(Timestamp(now));
        };

        // Warm every scratch buffer, hash-map table, and buffer pool.
        for i in 0..2_000u64 {
            epoch(&mut rng, &mut joiner, &mut estimator, i * 100);
        }

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 2_000..4_000u64 {
            epoch(&mut rng, &mut joiner, &mut estimator, i * 100);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(
            after - before,
            0,
            "steady-state raw pipeline allocated {} times over 2000 messages \
             (proxies = {proxies}, buckets = {buckets})",
            after - before
        );
        assert_eq!(estimator.total(), 4_000);
    }
}

/// The bulk-RNG randomize stage in isolation: a fresh
/// `RandomizeScratch` allocates exactly on its first use (the `WideRng`
/// fork is inline state — only the word buffer hits the heap) and
/// never again, across widths from one limb to 10⁴ buckets.
fn randomize_scratch_allocates_only_on_first_use() {
    for &buckets in &[11usize, 10_000] {
        let mut seeder = StdRng::seed_from_u64(7 + buckets as u64);
        let randomizer = Randomizer::new(0.9, 0.6);
        let truth = BitVec::one_hot(buckets, buckets / 2);
        let mut out = BitVec::zeros(buckets);
        let mut scratch = RandomizeScratch::new();

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        randomizer.randomize_vec_buffered(&truth, &mut out, &mut scratch, &mut seeder);
        let after_first = ALLOCATIONS.load(Ordering::Relaxed);
        assert!(
            after_first > before,
            "first use must materialize the word buffer (buckets = {buckets})"
        );

        for _ in 0..2_000 {
            randomizer.randomize_vec_buffered(&truth, &mut out, &mut scratch, &mut seeder);
        }
        let after_warm = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after_warm - after_first,
            0,
            "warm RandomizeScratch allocated {} times over 2000 messages (buckets = {buckets})",
            after_warm - after_first
        );
    }
}

/// The full client answer path with the SQL stage included: plan
/// cache hit, prepared scan over a 256-row store, bucketize,
/// randomize, encode, split.
fn client_pipeline_allocates_nothing() {
    for &buckets in &[11usize, 10_000] {
        let query = QueryBuilder::new(
            QueryId::new(AnalystId(2), buckets as u32),
            "SELECT speed FROM vehicle WHERE location = 'SF'",
        )
        .answer(AnswerSpec::ranges_with_overflow(0.0, 110.0, buckets - 1))
        .frequency(1_000)
        .window(60_000, 60_000)
        .sign_and_build(KEY);
        let params = ExecutionParams::checked(1.0, 0.9, 0.6);

        let mut client = Client::new(ClientId(7), 99, KEY);
        client.db_mut().create_table(
            "vehicle",
            Schema::new(vec![
                ("ts", ColumnType::Int),
                ("speed", ColumnType::Float),
                ("location", ColumnType::Text),
            ]),
        );
        for i in 0..256i64 {
            client
                .db_mut()
                .insert(
                    "vehicle",
                    vec![
                        Value::Int(i),
                        Value::Float((i % 100) as f64),
                        if i % 3 == 0 { "SF" } else { "Oakland" }.into(),
                    ],
                )
                .unwrap();
        }

        let mut scratch = ClientScratch::new();
        // Warm the plan cache, bucket indexer and scratch buffers.
        for _ in 0..200 {
            client
                .answer_query_into(&query, &params, 2, &mut scratch)
                .unwrap()
                .expect("s = 1 always participates");
        }

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..2_000 {
            client
                .answer_query_into(&query, &params, 2, &mut scratch)
                .unwrap()
                .expect("s = 1 always participates");
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(
            after - before,
            0,
            "steady-state client pipeline (prepared plan warm) allocated {} times \
             over 2000 epochs (buckets = {buckets})",
            after - before
        );
    }
}

/// Window close through the pooled path: after one warm-up cycle,
/// `advance_watermark_into` + `recycle_results` allocate nothing per
/// cycle — the estimator returns to the pool and the result shells
/// (with their bucket vectors) are reused.
fn window_close_allocates_nothing() {
    let broker = Broker::new(2);
    let query: Query = QueryBuilder::new(QueryId::new(AnalystId(3), 1), "SELECT v FROM data")
        .answer(AnswerSpec::ranges_with_overflow(0.0, 10.0, 10))
        .window(1_000, 1_000)
        .sign_and_build(KEY);
    let params = ExecutionParams::checked(1.0, 0.9, 0.6);
    let producer = broker.producer();
    let mut proxies: Vec<Proxy> = (0..2).map(|i| Proxy::new(ProxyId(i), &broker)).collect();
    let mut agg = Aggregator::new(&broker, 2, 0.95);
    agg.register_query(&query, params, 50);

    let mut client = Client::new(ClientId(9), 5, KEY);
    client
        .db_mut()
        .create_table("data", Schema::new(vec![("v", ColumnType::Float)]));
    client
        .db_mut()
        .insert("data", vec![Value::Float(2.5)])
        .unwrap();
    let mut scratch = ClientScratch::new();

    let mut results: Vec<QueryResult> = Vec::new();
    let mut close_allocs = 0u64;
    let mut closed = 0u64;
    let warm_cycles = 3u64;
    let cycles = warm_cycles + 5;
    for cycle in 0..cycles {
        // Feed the window (broker transport allocates; that is the
        // transport's business and stays outside the measured span).
        for _ in 0..20 {
            let shares = client
                .answer_query_into(&query, &params, 2, &mut scratch)
                .unwrap()
                .expect("always participates");
            for (pi, share) in shares.iter().enumerate() {
                producer.send(
                    &inbound_topic(ProxyId(pi as u16)),
                    Some(wire_key(query.id, share.mid).to_vec()),
                    &share.payload[..],
                    Timestamp(cycle * 1_000 + 500),
                );
            }
        }
        for p in &mut proxies {
            p.pump();
        }
        agg.pump();

        // The measured span: close the cycle's window and recycle.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        agg.advance_watermark_into(Timestamp((cycle + 1) * 1_000), &mut results);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].sample_size, 20);
        agg.recycle_results(&mut results);
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        if cycle >= warm_cycles {
            close_allocs += after - before;
            closed += 1;
        }
    }
    assert_eq!(
        close_allocs, 0,
        "steady-state window close (estimator pool warm) allocated {close_allocs} \
         times over {closed} cycles"
    );
}

/// The sharded deployment's **overlapped** per-shard cycle, run
/// single-threaded so the process-global allocation counter measures
/// only the shard path itself (the real `ShardedSystem` runs the same
/// code on shard threads; its per-epoch channel traffic is O(threads)
/// control overhead, deliberately outside this per-message/per-window
/// budget). Two shard aggregators split two partitions of the same
/// consumer group, and **two epochs are always in flight**: epoch
/// `k+1`'s messages are already in the broker when epoch `k` closes,
/// exactly like the pipelined runtime. The measured span covers the
/// whole overlapped shard steady state —
///
/// * the broker drain (`pump_with` over the allocation-free
///   `poll_into` path) with the per-epoch in-flight accounting the
///   shard threads keep (decode counts per epoch tag in a reused
///   scan list),
/// * the epoch-ordered raw close, cross-shard merge, finalize into a
///   recycled shell, and the estimators' trip home —
///
/// and performs **zero** heap allocations once warm. (Client sends
/// and proxy forwards stay outside the span: producing a record
/// copies bytes into the shared log — that is the transport's
/// business, as in the proofs above.) The query window is 60 s so
/// each close's joiner sweep retires the previous epoch's quarantined
/// MIDs, keeping the duplicate-defence map bounded.
fn sharded_overlapped_window_cycle_allocates_nothing() {
    const WINDOW_MS: u64 = 60_000;
    let broker = Broker::new(2); // two partitions per topic
    let query: Query = QueryBuilder::new(QueryId::new(AnalystId(4), 1), "SELECT v FROM data")
        .answer(AnswerSpec::ranges_with_overflow(0.0, 10.0, 10))
        .window(WINDOW_MS, WINDOW_MS)
        .sign_and_build(KEY);
    let params = ExecutionParams::checked(1.0, 0.9, 0.6);
    let producer = broker.producer();
    let mut proxies: Vec<Proxy> = (0..2).map(|i| Proxy::new(ProxyId(i), &broker)).collect();
    // Two shards in one consumer group: rank 0 owns partition 0,
    // rank 1 owns partition 1, across both proxy-out topics.
    let mut shards: Vec<Aggregator> = (0..2).map(|_| Aggregator::new(&broker, 2, 0.95)).collect();
    for shard in &mut shards {
        shard.register_query(&query, params, 50);
    }

    let mut clients: Vec<Client> = (0..20u64)
        .map(|i| {
            let mut c = Client::new(ClientId(i), 50 + i, KEY);
            c.db_mut()
                .create_table("data", Schema::new(vec![("v", ColumnType::Float)]));
            c.db_mut().insert("data", vec![Value::Float(2.5)]).unwrap();
            c
        })
        .collect();
    let mut scratch = ClientScratch::new();
    let epoch_ts = |epoch: u64| Timestamp(epoch * WINDOW_MS + WINDOW_MS / 2);

    // Transport for one epoch: every client answers, shares land on
    // both partitions (unmeasured — production copies into the log).
    let feed_epoch = |epoch: u64, clients: &mut Vec<Client>, scratch: &mut ClientScratch| {
        for (i, client) in clients.iter_mut().enumerate() {
            let shares = client
                .answer_query_into(&query, &params, 2, scratch)
                .unwrap()
                .expect("always participates");
            let partition = i % 2;
            for (pi, share) in shares.iter().enumerate() {
                producer.send_to(
                    &inbound_topic(ProxyId(pi as u16)),
                    partition,
                    Some(wire_key(query.id, share.mid).to_vec()),
                    &share.payload[..],
                    epoch_ts(epoch),
                );
            }
        }
    };

    // Reused across cycles: raw windows per shard, per-shard decode
    // counts per epoch tag (the in-flight accounting), merged
    // scratch, shells, estimator returns.
    let mut raw: Vec<Vec<RawWindow>> = vec![Vec::new(), Vec::new()];
    let mut counts: Vec<Vec<(Timestamp, u64)>> = vec![Vec::new(), Vec::new()];
    let mut merged: Vec<(
        privapprox_types::QueryId,
        privapprox_types::Window,
        BucketEstimator,
        usize,
    )> = Vec::new();
    let mut shells: Vec<QueryResult> = Vec::new();
    let mut cycle_allocs = 0u64;
    let warm_cycles = 3u64;
    let cycles = warm_cycles + 5;
    // Epoch 0 is in the broker before the loop: every iteration then
    // feeds epoch `cycle + 1` and closes epoch `cycle`, so the closed
    // epoch always has a successor in flight behind it.
    feed_epoch(0, &mut clients, &mut scratch);
    for cycle in 0..cycles {
        feed_epoch(cycle + 1, &mut clients, &mut scratch);
        for p in &mut proxies {
            p.pump();
        }

        // The measured span: drain + per-epoch accounting + close +
        // merge + finalize, with epoch `cycle + 1` interleaved in the
        // same drains.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for (s, shard) in shards.iter_mut().enumerate() {
            let tags = &mut counts[s];
            shard.pump_with(|_, ts, _, _| match tags.iter_mut().find(|(t, _)| *t == ts) {
                Some((_, n)) => *n += 1,
                None => tags.push((ts, 1)),
            });
            // The closing epoch's accounting must have settled (10
            // answers per shard per epoch: 20 clients split 2 ways).
            let tag = epoch_ts(cycle);
            let have = tags
                .iter()
                .find(|(t, _)| *t == tag)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            assert_eq!(have, 10, "cycle {cycle} shard {s}: epoch accounting");
            shard.advance_watermark_raw_into(Timestamp((cycle + 1) * WINDOW_MS), &mut raw[s]);
            tags.retain(|(t, _)| *t > tag);
        }
        for s in 0..2 {
            for rw in raw[s].drain(..) {
                match merged
                    .iter_mut()
                    .find(|(q, w, _, _)| *q == rw.query && *w == rw.window)
                {
                    Some((_, _, est, _)) => {
                        est.merge(&rw.estimator);
                        shards[s].release_estimator(rw.estimator);
                    }
                    None => merged.push((rw.query, rw.window, rw.estimator, s)),
                }
            }
        }
        for (qid, window, mut est, src) in merged.drain(..) {
            let mut shell = shells.pop().unwrap_or_else(QueryResult::shell);
            finalize_window_into(&mut shell, qid, window, &mut est, params, 50, 0.95);
            assert_eq!(shell.sample_size, 20, "cycle {cycle}");
            assert_eq!(shell.buckets[2].raw_yes > 0, true);
            shells.push(shell);
            shards[src].release_estimator(est);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        if cycle >= warm_cycles {
            cycle_allocs += after - before;
        }
    }
    assert_eq!(
        cycle_allocs, 0,
        "steady-state overlapped drain/close/merge/finalize allocated {cycle_allocs} times"
    );
}

/// The batched worker send path, single-threaded: split into pooled
/// `Arc` slots, stamp one pooled query-tagged key per message,
/// accumulate
/// `BatchEntry` runs per writer, flush with `try_append_batch`, and
/// drain on the consumer side so the bounded log trims and the slots
/// come home. Once the slot pools, batch vectors, broker ring and
/// poll buffer are warm, the whole send→publish→drain cycle performs
/// **zero** heap allocations — the property the real worker threads
/// rely on (`deploy.rs` runs this exact sequence per epoch).
fn batched_worker_send_allocates_nothing() {
    const PROXIES: usize = 2;
    const FLUSH_RUN: usize = 8;
    let broker = Broker::new(1);
    for pi in 0..PROXIES {
        broker.create_topic_with_capacity(&inbound_topic(ProxyId(pi as u16)), 1, 64);
    }
    let topics: Vec<String> = (0..PROXIES).map(|pi| inbound_topic(ProxyId(pi as u16))).collect();
    let writers: Vec<TopicWriter> = topics.iter().map(|t| broker.writer(t)).collect();
    let topic_refs: Vec<&str> = topics.iter().map(String::as_str).collect();
    let consumer = broker.consumer("drain", &topic_refs);

    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let splitter = XorSplitter::new(PROXIES);
    let message = vec![0xABu8; 64];
    let mut split = SplitScratch::new();
    let mut key_pool = SlotPool::new();
    let mut batches: Vec<Vec<BatchEntry>> = (0..PROXIES).map(|_| Vec::new()).collect();
    let mut buf = Vec::new();
    let mut drained = 0u64;

    let send = |rng: &mut StdRng,
                    split: &mut SplitScratch,
                    key_pool: &mut SlotPool,
                    batches: &mut Vec<Vec<BatchEntry>>,
                    buf: &mut Vec<(u32, u32, privapprox_stream::Record)>,
                    drained: &mut u64,
                    i: u64| {
        let mid = MessageId(rng.gen());
        let shares = splitter.split_into(&message, mid, rng, split);
        let mut key = key_pool.acquire(24);
        let slot = Arc::get_mut(&mut key).expect("acquired slots are uniquely owned");
        slot[..8].copy_from_slice(&1u64.to_be_bytes());
        slot[8..].copy_from_slice(&mid.to_bytes());
        for (pi, share) in shares.iter().enumerate() {
            batches[pi].push((Some(Arc::clone(&key)), Arc::clone(&share.payload), Timestamp(i)));
        }
        key_pool.release(key);
        if batches[0].len() >= FLUSH_RUN {
            for (pi, writer) in writers.iter().enumerate() {
                writer
                    .try_append_batch(0, &mut batches[pi])
                    .expect("drained log never backpressures");
            }
            // Drain what was just published: committing the offsets
            // trims the bounded log, dropping its payload refs so the
            // split scratch and key pool recycle their slots.
            loop {
                buf.clear();
                if consumer.poll_into(64, buf) == 0 {
                    break;
                }
                *drained += buf.len() as u64;
            }
            buf.clear();
        }
    };

    // Warm: grow the slot pools to the in-flight window, the batch
    // vectors to the flush run, the broker ring to capacity and the
    // poll buffer to the drain width.
    for i in 0..512u64 {
        send(&mut rng, &mut split, &mut key_pool, &mut batches, &mut buf, &mut drained, i);
    }
    let slots_warm = split.payload_slots();
    let keys_warm = key_pool.len();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 512..2_560u64 {
        send(&mut rng, &mut split, &mut key_pool, &mut batches, &mut buf, &mut drained, i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state batched send path allocated {} times over 2048 messages",
        after - before
    );
    assert_eq!(split.payload_slots(), slots_warm, "payload pool plateaued");
    assert_eq!(key_pool.len(), keys_warm, "key pool plateaued");
    assert_eq!(drained, 2_560 / FLUSH_RUN as u64 * FLUSH_RUN as u64 * PROXIES as u64);
}

/// Invalidate-then-reuse safety: after a batch is published, the
/// broker retains the producer's payload buffers by refcount. An
/// `invalidate` + new split on the same scratch must hand out
/// **different** buffers — the retained records' bytes never change
/// and still recombine to the original message. (`Arc::strong_count`
/// is the evidence: a retained slot is not unique, so the pool may
/// not recycle it.)
fn invalidated_scratch_reuse_never_mutates_retained_payloads() {
    let broker = Broker::new(1);
    let topic = "retained";
    // Unbounded: the log keeps every record, as a slow consumer would.
    broker.create_topic(topic, 1);
    let writer = broker.writer(topic);
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let splitter = XorSplitter::new(3);
    let mut split = SplitScratch::new();

    // Message A: publish its shares, snapshot what the broker holds.
    let message_a = vec![0x11u8; 48];
    let mid_a = MessageId(rng.gen());
    let retained: Vec<Share> = splitter
        .split_into(&message_a, mid_a, &mut rng, &mut split)
        .to_vec();
    let mut batch: Vec<BatchEntry> = retained
        .iter()
        .map(|s| (None, Arc::clone(&s.payload), Timestamp(0)))
        .collect();
    writer.try_append_batch(0, &mut batch).unwrap();
    let snapshots: Vec<Vec<u8>> = retained.iter().map(|s| s.payload.to_vec()).collect();
    for share in &retained {
        assert!(
            Arc::strong_count(&share.payload) >= 3,
            "scratch + our clone + the log all hold the buffer"
        );
    }

    // Invalidate and reuse the scratch for fresh messages while the
    // log still holds message A's buffers.
    split.invalidate();
    assert!(split.shares().is_empty(), "stale reads see nothing");
    for round in 0..16u64 {
        let message_b = vec![round as u8 ^ 0xEE; 48];
        let shares_b = splitter.split_into(&message_b, MessageId(rng.gen()), &mut rng, &mut split);
        for (share_b, share_a) in shares_b.iter().zip(&retained) {
            assert!(
                !Arc::ptr_eq(&share_b.payload, &share_a.payload),
                "a broker-retained slot must never be handed out again"
            );
        }
        assert_eq!(combine(shares_b).unwrap(), message_b);
    }

    // The retained records are bit-for-bit what was published.
    for (share, snap) in retained.iter().zip(&snapshots) {
        assert_eq!(&share.payload[..], &snap[..], "retained payload mutated");
    }
    let consumer = broker.consumer("late", &[topic]);
    let polled = consumer.poll(8);
    assert_eq!(polled.len(), 3);
    let from_log: Vec<Share> = polled
        .iter()
        .map(|(_, rec)| Share {
            mid: mid_a,
            payload: Arc::clone(&rec.value),
        })
        .collect();
    assert_eq!(
        combine(&from_log).unwrap(),
        message_a,
        "the log's copies still recombine to the original message"
    );
}

#[test]
fn steady_state_pipeline_allocates_nothing() {
    raw_pipeline_allocates_nothing();
    randomize_scratch_allocates_only_on_first_use();
    client_pipeline_allocates_nothing();
    window_close_allocates_nothing();
    sharded_overlapped_window_cycle_allocates_nothing();
    batched_worker_send_allocates_nothing();
    invalidated_scratch_reuse_never_mutates_retained_payloads();
}

//! Sharded-vs-single-threaded equivalence: `ShardedSystem` must
//! produce **byte-identical** `QueryResult`s to `System` — same
//! estimates to the last bit, same intervals, same sample sizes —
//! across seeds, bucket widths (11 and 10⁴), proxy counts, shard
//! counts **and pipeline depths** (overlapped epochs). This is the
//! property that makes the threaded runtime a drop-in: parallelism
//! and pipelining change wall-clock shape, never answers.
//!
//! Why it holds (pinned here, argued in `deploy`'s module docs):
//! per-client answers are pure functions of each client's own RNG
//! stream, window accumulation is commutative counting, watermarks
//! advance in epoch order only after the epoch's in-flight
//! accounting settles, and estimation is a pure function of merged
//! counts.
//!
//! Pipelined cases (`depth > 1`) drive the sharded system through
//! `submit_epoch`/`flush_epochs` — epochs genuinely overlap — and
//! compare the **full drained result sequence** against the
//! single-threaded run's per-epoch emissions. The straggler cases
//! artificially delay one shard's closes while the workers run
//! epochs ahead (bounded by backpressured partitions), the worst
//! overlap skew the runtime allows.
//!
//! The quick matrix runs in the tier-1 suite; the exhaustive sweep
//! and the watermark-interleaving/straggler stresses are `#[ignore]`d
//! and run by the CI stress job (`cargo test --release sharded
//! threaded -- --include-ignored`, 10×).

use privapprox_core::aggregator::QueryResult;
use privapprox_core::{ShardedSystem, System};
use privapprox_types::{AnswerSpec, ExecutionParams};
use std::time::Duration;

/// Exact (bit-level for floats) equality of two results.
fn assert_results_identical(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.query, b.query, "{context}: query id");
    assert_eq!(a.window, b.window, "{context}: window");
    assert_eq!(a.sample_size, b.sample_size, "{context}: sample size");
    assert_eq!(a.population, b.population, "{context}: population");
    assert_eq!(a.buckets.len(), b.buckets.len(), "{context}: bucket count");
    let bits = f64::to_bits;
    for (i, (x, y)) in a.buckets.iter().zip(&b.buckets).enumerate() {
        let c = format!("{context}: bucket {i}");
        assert_eq!(x.raw_yes, y.raw_yes, "{c} raw_yes");
        assert_eq!(
            bits(x.estimate_sample),
            bits(y.estimate_sample),
            "{c} estimate_sample"
        );
        assert_eq!(bits(x.estimate), bits(y.estimate), "{c} estimate");
        assert_eq!(bits(x.ci.estimate), bits(y.ci.estimate), "{c} ci.estimate");
        assert_eq!(bits(x.ci.bound), bits(y.ci.bound), "{c} ci.bound");
        assert_eq!(
            bits(x.ci.confidence),
            bits(y.ci.confidence),
            "{c} ci.confidence"
        );
        assert_eq!(
            bits(x.sampling_error),
            bits(y.sampling_error),
            "{c} sampling_error"
        );
        assert_eq!(bits(x.rr_error), bits(y.rr_error), "{c} rr_error");
    }
    assert_eq!(
        bits(a.privacy.eps_rr),
        bits(b.privacy.eps_rr),
        "{context}: eps_rr"
    );
    assert_eq!(
        bits(a.privacy.eps_dp),
        bits(b.privacy.eps_dp),
        "{context}: eps_dp"
    );
    assert_eq!(
        bits(a.privacy.eps_zk),
        bits(b.privacy.eps_zk),
        "{context}: eps_zk"
    );
}

struct Case {
    seed: u64,
    buckets: usize,
    proxies: u16,
    shards: usize,
    workers: usize,
    params: ExecutionParams,
    epochs: usize,
    /// `(window, slide)` in ms.
    window: (u64, u64),
    /// Pipeline depth; `> 1` drives the sharded side through
    /// `submit_epoch`/`flush_epochs` with genuinely overlapped epochs.
    depth: usize,
    /// Per-partition broker backlog bound (`0` = the deployment's
    /// auto-sized default of depth + 1 epochs' worth per partition).
    capacity: usize,
    /// Artificial delay injected before every close on shard 0.
    straggle_ms: u64,
}

impl Case {
    /// A depth-1, default-capacity, non-straggling case (the
    /// pre-pipelining matrix shape).
    fn barrier(
        seed: u64,
        buckets: usize,
        proxies: u16,
        shards: usize,
        workers: usize,
        params: ExecutionParams,
        epochs: usize,
        window: (u64, u64),
    ) -> Case {
        Case {
            seed,
            buckets,
            proxies,
            shards,
            workers,
            params,
            epochs,
            window,
            depth: 1,
            capacity: 0,
            straggle_ms: 0,
        }
    }
}

/// Runs one configuration through both harnesses and compares every
/// emitted result, epoch for epoch (or sequence for sequence in the
/// pipelined mode).
fn run_case(case: &Case) {
    let population = 120u64;
    let spec = AnswerSpec::ranges_with_overflow(0.0, 110.0, case.buckets - 1);
    let context = format!(
        "seed {} buckets {} proxies {} shards {} workers {} depth {} capacity {} straggle {}ms",
        case.seed,
        case.buckets,
        case.proxies,
        case.shards,
        case.workers,
        case.depth,
        case.capacity,
        case.straggle_ms
    );

    let mut single = System::builder()
        .clients(population)
        .proxies(case.proxies)
        .seed(case.seed)
        .build();
    let mut builder = ShardedSystem::builder()
        .clients(population)
        .proxies(case.proxies)
        .shards(case.shards)
        .workers(case.workers)
        .pipeline_depth(case.depth)
        .partition_capacity(case.capacity)
        .seed(case.seed);
    if case.straggle_ms > 0 {
        builder = builder.straggler(0, Duration::from_millis(case.straggle_ms));
    }
    let mut sharded = builder.build();

    single.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64);
    sharded.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64).unwrap();

    let q_single = single
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec.clone())
        .window(case.window.0, case.window.1)
        .params(case.params)
        .submit()
        .unwrap();
    let q_sharded = sharded
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec)
        .window(case.window.0, case.window.1)
        .params(case.params)
        .submit()
        .unwrap();
    assert_eq!(q_single.id, q_sharded.id, "{context}: query ids line up");
    assert_eq!(q_single.signature, q_sharded.signature);

    if case.depth <= 1 {
        for epoch in 0..case.epochs {
            let a = single.run_epoch(&q_single).unwrap();
            let b = sharded.run_epoch(&q_sharded).unwrap();
            assert_results_identical(&a, &b, &format!("{context} epoch {epoch}"));
            // Sliding windows emit extra results; they must match too.
            let extra_a = single.drain_results();
            let extra_b = sharded.drain_results();
            assert_eq!(
                extra_a.len(),
                extra_b.len(),
                "{context} epoch {epoch}: drained count"
            );
            for (x, y) in extra_a.iter().zip(&extra_b) {
                assert_results_identical(x, y, &format!("{context} epoch {epoch} drained"));
            }
        }
    } else {
        // Pipelined mode: the single-threaded run's canonical
        // sequence is each epoch's full emission batch in
        // (window start, query id) order — exactly the order the
        // pipelined completions append to the drain buffer.
        let mut expected: Vec<QueryResult> = Vec::new();
        for _ in 0..case.epochs {
            let r = single.run_epoch(&q_single).unwrap();
            let mut batch = single.drain_results();
            batch.push(r);
            batch.sort_by_key(|r| (r.window.start, r.query.to_u64()));
            expected.extend(batch);
        }
        for _ in 0..case.epochs {
            sharded.submit_epoch(&q_sharded).unwrap();
        }
        sharded.flush_epochs().unwrap();
        let got = sharded.drain_results();
        assert_eq!(
            expected.len(),
            got.len(),
            "{context}: pipelined result sequence length"
        );
        for (i, (x, y)) in expected.iter().zip(&got).enumerate() {
            assert_results_identical(x, y, &format!("{context} sequence index {i}"));
        }
    }
    assert_eq!(sharded.aggregator_health(), (0, 0, 0, 0), "{context}");
}

/// The quick equivalence matrix: both bucket widths, private and
/// exact modes, 1/2/4 shards. Runs in the tier-1 suite.
#[test]
fn sharded_equals_single_threaded_quick_matrix() {
    for seed in [1u64, 2] {
        for &buckets in &[11usize, 10_000] {
            for &shards in &[1usize, 2, 4] {
                run_case(&Case::barrier(
                    seed,
                    buckets,
                    2,
                    shards,
                    shards,
                    ExecutionParams::checked(0.9, 0.8, 0.6),
                    2,
                    (1_000, 1_000),
                ));
            }
        }
    }
}

/// The multi-epoch overlap matrix: pipeline depths 2 and 3 over both
/// bucket widths and 2/4 shards, driven through
/// `submit_epoch`/`flush_epochs` so epochs genuinely overlap, with
/// enough epochs that the pipeline reaches steady state. Runs in the
/// tier-1 suite.
#[test]
fn sharded_overlapped_epochs_equal_single_threaded_matrix() {
    for &depth in &[2usize, 3] {
        for &buckets in &[11usize, 10_000] {
            for &shards in &[2usize, 4] {
                run_case(&Case {
                    seed: 5,
                    buckets,
                    proxies: 2,
                    shards,
                    workers: shards,
                    params: ExecutionParams::checked(0.9, 0.8, 0.6),
                    epochs: depth + 3,
                    window: (1_000, 1_000),
                    depth,
                    capacity: 0,
                    straggle_ms: 0,
                });
            }
        }
    }
}

/// Overlapped epochs over *sliding* windows: with `(w, δ) = (2s,
/// 0.5s)` every answer lives in 4 windows, so windows span several
/// in-flight epochs and close while later epochs stream through the
/// same shards — the merged emission sequence must still be
/// byte-identical. Bounded partitions keep the overlap honest (epoch
/// `k+1` really backpressures instead of parking in an unbounded
/// log).
#[test]
fn sharded_overlapped_sliding_windows_equal_single_threaded() {
    run_case(&Case {
        seed: 21,
        buckets: 11,
        proxies: 2,
        shards: 4,
        workers: 2,
        params: ExecutionParams::checked(0.9, 0.85, 0.5),
        epochs: 6,
        window: (2_000, 500),
        depth: 3,
        capacity: 48,
        straggle_ms: 0,
    });
}

/// One shard artificially delayed while the workers run epochs ahead
/// (straggler stress, quick variant): the pipeline fills to depth,
/// the bounded partitions hold back the flood, and the results stay
/// byte-identical. Runs in the tier-1 suite.
#[test]
fn sharded_straggler_shard_overlap_quick() {
    run_case(&Case {
        seed: 17,
        buckets: 11,
        proxies: 2,
        shards: 2,
        workers: 2,
        params: ExecutionParams::checked(1.0, 1.0, 0.5),
        epochs: 5,
        window: (1_000, 1_000),
        depth: 3,
        capacity: 64,
        straggle_ms: 15,
    });
}

/// Exact mode (s = 1, p = 1) must agree too — no randomness anywhere.
#[test]
fn sharded_equals_single_threaded_exact_mode() {
    run_case(&Case::barrier(
        7,
        11,
        2,
        2,
        2,
        ExecutionParams::checked(1.0, 1.0, 0.5),
        2,
        (1_000, 1_000),
    ));
}

/// The exhaustive sweep: seeds × widths × proxies × shards × worker
/// counts that don't divide the population evenly × pipeline depths.
/// Stress-job only.
#[test]
#[ignore = "exhaustive sweep; run by the CI stress job"]
fn sharded_equals_single_threaded_full_sweep() {
    for seed in [1u64, 2, 3, 42] {
        for &buckets in &[11usize, 10_000] {
            for &proxies in &[2u16, 3] {
                for &shards in &[1usize, 2, 4] {
                    for &workers in &[1usize, shards, shards + 1] {
                        for &depth in &[1usize, 3] {
                            run_case(&Case {
                                seed,
                                buckets,
                                proxies,
                                shards,
                                workers,
                                params: ExecutionParams::checked(0.8, 0.7, 0.55),
                                epochs: if depth > 1 { depth + 2 } else { 2 },
                                window: (1_000, 1_000),
                                depth,
                                capacity: 0,
                                straggle_ms: 0,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Sliding windows force every shard to hold several windows open and
/// close them at interleaved watermarks; the merged emission order
/// and contents must still match the single-threaded run exactly.
#[test]
fn sharded_sliding_windows_interleave_watermarks() {
    run_case(&Case::barrier(
        11,
        11,
        2,
        4,
        2,
        ExecutionParams::checked(0.9, 0.85, 0.5),
        5,
        (2_000, 500), // each event lives in 4 windows
    ));
}

/// Straggler stress, full variant: wide answers, deeper pipeline,
/// sliding windows, randomized params — one shard's closes delayed
/// 50 ms while everything else races ahead behind bounded
/// partitions. Stress-job only.
#[test]
#[ignore = "straggler/overlap stress; run by the CI stress job"]
fn sharded_straggler_overlap_stress() {
    for seed in [3u64, 13] {
        run_case(&Case {
            seed,
            buckets: 11,
            proxies: 2,
            shards: 4,
            workers: 4,
            params: ExecutionParams::checked(0.85, 0.75, 0.6),
            epochs: 8,
            window: (3_000, 750),
            depth: 3,
            capacity: 32,
            straggle_ms: 50,
        });
    }
    // One wide-answer tumbling case: the straggler holds 10⁴-bucket
    // windows open while two more epochs stream in.
    run_case(&Case {
        seed: 29,
        buckets: 10_000,
        proxies: 2,
        shards: 2,
        workers: 2,
        params: ExecutionParams::checked(0.9, 0.8, 0.6),
        epochs: 4,
        window: (1_000, 1_000),
        depth: 3,
        capacity: 128,
        straggle_ms: 40,
    });
}

/// Stress variant of the watermark interleave: more shards than
/// partitions would leave shards idle — partitions(8) over shards(4)
/// gives every shard two partitions — plus 10⁴-bucket answers and
/// more epochs. Stress-job only.
#[test]
#[ignore = "watermark interleave stress; run by the CI stress job"]
fn sharded_watermark_interleave_stress() {
    let population = 120u64;
    for seed in [3u64, 13] {
        let spec = AnswerSpec::ranges_with_overflow(0.0, 110.0, 9_999);
        let mut single = System::builder()
            .clients(population)
            .proxies(2)
            .seed(seed)
            .build();
        let mut sharded = ShardedSystem::builder()
            .clients(population)
            .proxies(2)
            .shards(4)
            .workers(4)
            .partitions(8)
            .seed(seed)
            .build();
        single.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64);
        sharded.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64).unwrap();
        let params = ExecutionParams::checked(0.85, 0.75, 0.6);
        let qa = single
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(spec.clone())
            .window(3_000, 750)
            .params(params)
            .submit()
            .unwrap();
        let qb = sharded
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(spec)
            .window(3_000, 750)
            .params(params)
            .submit()
            .unwrap();
        for epoch in 0..8 {
            let a = single.run_epoch(&qa).unwrap();
            let b = sharded.run_epoch(&qb).unwrap();
            assert_results_identical(&a, &b, &format!("stress seed {seed} epoch {epoch}"));
            let extra_a = single.drain_results();
            let extra_b = sharded.drain_results();
            assert_eq!(
                extra_a.len(),
                extra_b.len(),
                "stress seed {seed} epoch {epoch}: drained window count"
            );
            for (x, y) in extra_a.iter().zip(&extra_b) {
                assert_results_identical(x, y, &format!("stress seed {seed} epoch {epoch} drain"));
            }
        }
        assert_eq!(sharded.aggregator_health(), (0, 0, 0, 0));
    }
}

//! Cross-process equivalence: a `ShardedSystem` whose proxies and
//! aggregator shards run as spawned `privapprox-node` child processes
//! behind supervised loopback sockets must produce **byte-identical**
//! `QueryResult`s to the single-threaded `System` — same estimates to
//! the last bit, same intervals, same sample sizes. Combined with
//! `sharded_equivalence.rs` (threads vs single-threaded) this pins the
//! whole transport chain: in-process threads and real sockets are
//! interchangeable deployments of the same computation.
//!
//! Why it holds: the process transport replicates the exact consumer
//! group names and main-thread join order of the in-process stage
//! plan (pinning the partition → shard mapping), the wire format
//! round-trips counts as `u64` and floats as IEEE bits, and a
//! fault-free epoch closes only after the global decode ledger
//! reaches its expectation — by which point every record has been
//! decoded, so per-link FIFO delivery is all the ordering the merge
//! needs.
//!
//! Every case also asserts a *fault-free* supervision record: zero
//! reconnects, rejections, retries and panics. Robustness under
//! injected network faults lives in `net_chaos.rs`.

use privapprox_core::aggregator::QueryResult;
use privapprox_core::{ShardedSystem, ShardedSystemBuilder, System};
use privapprox_types::{AnswerSpec, ExecutionParams};

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_privapprox-node")
}

/// Exact (bit-level for floats) equality of two results.
fn assert_results_identical(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.query, b.query, "{context}: query id");
    assert_eq!(a.window, b.window, "{context}: window");
    assert_eq!(a.sample_size, b.sample_size, "{context}: sample size");
    assert_eq!(a.population, b.population, "{context}: population");
    assert_eq!(a.buckets.len(), b.buckets.len(), "{context}: bucket count");
    let bits = f64::to_bits;
    for (i, (x, y)) in a.buckets.iter().zip(&b.buckets).enumerate() {
        let c = format!("{context}: bucket {i}");
        assert_eq!(x.raw_yes, y.raw_yes, "{c} raw_yes");
        assert_eq!(
            bits(x.estimate_sample),
            bits(y.estimate_sample),
            "{c} estimate_sample"
        );
        assert_eq!(bits(x.estimate), bits(y.estimate), "{c} estimate");
        assert_eq!(bits(x.ci.estimate), bits(y.ci.estimate), "{c} ci.estimate");
        assert_eq!(bits(x.ci.bound), bits(y.ci.bound), "{c} ci.bound");
        assert_eq!(
            bits(x.sampling_error),
            bits(y.sampling_error),
            "{c} sampling_error"
        );
        assert_eq!(bits(x.rr_error), bits(y.rr_error), "{c} rr_error");
    }
    assert_eq!(
        bits(a.privacy.eps_rr),
        bits(b.privacy.eps_rr),
        "{context}: eps_rr"
    );
    assert_eq!(
        bits(a.privacy.eps_dp),
        bits(b.privacy.eps_dp),
        "{context}: eps_dp"
    );
}

struct Case {
    seed: u64,
    buckets: usize,
    proxies: u16,
    shards: usize,
    workers: usize,
    params: ExecutionParams,
    epochs: usize,
    /// `(window, slide)` in ms.
    window: (u64, u64),
    /// Pipeline depth; `> 1` drives the sharded side through
    /// `submit_epoch`/`flush_epochs` with genuinely overlapped epochs.
    depth: usize,
}

fn process_builder(case: &Case, population: u64) -> ShardedSystemBuilder {
    ShardedSystem::builder()
        .clients(population)
        .proxies(case.proxies)
        .shards(case.shards)
        .workers(case.workers)
        .pipeline_depth(case.depth)
        .seed(case.seed)
        .process_transport(node_binary())
}

/// Runs one configuration single-threaded and over sockets and
/// compares every emitted result.
fn run_case(case: &Case) {
    let population = 120u64;
    let spec = AnswerSpec::ranges_with_overflow(0.0, 110.0, case.buckets - 1);
    let context = format!(
        "seed {} buckets {} proxies {} shards {} workers {} depth {}",
        case.seed, case.buckets, case.proxies, case.shards, case.workers, case.depth
    );

    let mut single = System::builder()
        .clients(population)
        .proxies(case.proxies)
        .seed(case.seed)
        .build();
    let mut remote = process_builder(case, population).build();

    single.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64);
    remote
        .load_numeric_column("vehicle", "speed", |i| (i % 110) as f64)
        .unwrap();

    let q_single = single
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec.clone())
        .window(case.window.0, case.window.1)
        .params(case.params)
        .submit()
        .unwrap();
    let q_remote = remote
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec)
        .window(case.window.0, case.window.1)
        .params(case.params)
        .submit()
        .unwrap();
    assert_eq!(q_single.id, q_remote.id, "{context}: query ids line up");

    if case.depth <= 1 {
        for epoch in 0..case.epochs {
            let a = single.run_epoch(&q_single).unwrap();
            let b = remote.run_epoch(&q_remote).unwrap();
            assert_results_identical(&a, &b, &format!("{context} epoch {epoch}"));
            let extra_a = single.drain_results();
            let extra_b = remote.drain_results();
            assert_eq!(
                extra_a.len(),
                extra_b.len(),
                "{context} epoch {epoch}: drained count"
            );
            for (x, y) in extra_a.iter().zip(&extra_b) {
                assert_results_identical(x, y, &format!("{context} epoch {epoch} drained"));
            }
        }
    } else {
        let mut expected: Vec<QueryResult> = Vec::new();
        for _ in 0..case.epochs {
            let r = single.run_epoch(&q_single).unwrap();
            let mut batch = single.drain_results();
            batch.push(r);
            batch.sort_by_key(|r| (r.window.start, r.query.to_u64()));
            expected.extend(batch);
        }
        for _ in 0..case.epochs {
            remote.submit_epoch(&q_remote).unwrap();
        }
        remote.flush_epochs().unwrap();
        let got = remote.drain_results();
        assert_eq!(
            expected.len(),
            got.len(),
            "{context}: pipelined result sequence length"
        );
        for (i, (x, y)) in expected.iter().zip(&got).enumerate() {
            assert_results_identical(x, y, &format!("{context} sequence index {i}"));
        }
    }

    // Fault-free run: clean loopback links leave no supervision marks.
    let health = remote.deploy_health();
    assert_eq!(health.reconnects, 0, "{context}: reconnects");
    assert_eq!(health.rejections, 0, "{context}: rejections");
    assert_eq!(health.retries, 0, "{context}: retries");
    assert_eq!(health.proxy_panics, 0, "{context}: proxy panics");
    assert_eq!(health.shard_panics, 0, "{context}: shard panics");
    assert_eq!(health.partial_closes, 0, "{context}: partial closes");
    assert_eq!(health.lost_answers, 0, "{context}: lost answers");
    assert_eq!(
        (health.undecodable, health.unroutable, health.duplicates),
        (0, 0, 0),
        "{context}: aggregator quad"
    );
}

/// The quick cross-process matrix: both answer widths, 1/2/4 shards,
/// all over real sockets. Runs in the tier-1 suite.
#[test]
fn process_transport_equals_single_threaded_quick_matrix() {
    for seed in [1u64, 2] {
        for &buckets in &[11usize, 10_000] {
            for &shards in &[1usize, 2, 4] {
                run_case(&Case {
                    seed,
                    buckets,
                    proxies: 2,
                    shards,
                    workers: shards,
                    params: ExecutionParams::checked(0.9, 0.8, 0.6),
                    epochs: 2,
                    window: (1_000, 1_000),
                    depth: 1,
                });
            }
        }
    }
}

/// Overlapped epochs over sockets: depth-3 pipelining with sliding
/// windows, epochs genuinely in flight across process boundaries.
#[test]
fn process_transport_overlapped_sliding_windows() {
    run_case(&Case {
        seed: 21,
        buckets: 11,
        proxies: 2,
        shards: 4,
        workers: 2,
        params: ExecutionParams::checked(0.9, 0.85, 0.5),
        epochs: 6,
        window: (2_000, 500),
        depth: 3,
    });
}

/// Three proxies (shares split three ways, three relay children) must
/// agree too.
#[test]
fn process_transport_three_proxies() {
    run_case(&Case {
        seed: 9,
        buckets: 11,
        proxies: 3,
        shards: 2,
        workers: 2,
        params: ExecutionParams::checked(0.85, 0.75, 0.6),
        epochs: 3,
        window: (1_000, 1_000),
        depth: 1,
    });
}

/// Exact mode (s = 1, p = 1): no randomness anywhere, including on
/// the wire.
#[test]
fn process_transport_exact_mode() {
    run_case(&Case {
        seed: 7,
        buckets: 11,
        proxies: 2,
        shards: 2,
        workers: 2,
        params: ExecutionParams::checked(1.0, 1.0, 0.5),
        epochs: 2,
        window: (1_000, 1_000),
        depth: 1,
    });
}

/// The exhaustive cross-process sweep. Stress-job only.
#[test]
#[ignore = "exhaustive process-transport sweep; run by the CI multi-process job"]
fn process_transport_full_sweep() {
    for seed in [1u64, 3, 42] {
        for &buckets in &[11usize, 10_000] {
            for &proxies in &[2u16, 3] {
                for &shards in &[1usize, 2, 4] {
                    for &depth in &[1usize, 3] {
                        run_case(&Case {
                            seed,
                            buckets,
                            proxies,
                            shards,
                            workers: shards,
                            params: ExecutionParams::checked(0.8, 0.7, 0.55),
                            epochs: if depth > 1 { depth + 2 } else { 2 },
                            window: (1_000, 1_000),
                            depth,
                        });
                    }
                }
            }
        }
    }
}

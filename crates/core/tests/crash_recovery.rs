//! Kill-9 crash recovery: a durable `ShardedSystem` killed without
//! warning — `abort()` between an epoch's journal fsync and its first
//! worker send, a SIGKILLed child node, or a whole-system teardown
//! with the unsynced journal tail discarded — must recover from its
//! store directory to a state whose drained results are
//! **byte-identical** to an uninterrupted run, and whose budget
//! ledgers never exceed the uninterrupted spend.
//!
//! Why byte-identity is achievable at all: the journal captures the
//! control plane (registrations, charges, submitted epochs, closes),
//! and the data plane is a deterministic function of the seed plus
//! that command history — recovery replays the history *muted* to
//! advance every client's RNG stream, then re-runs the open epochs
//! live, reproducing the exact shares the crash may have swallowed.
//!
//! The privacy half of the contract: charges are journaled and
//! fsynced strictly before any send, so a recovered ledger has spent
//! at least as much as any answer that escaped the crash — replaying
//! can only under-spend ε, never over-spend. The matrix asserts the
//! recovered spend never exceeds the pre-crash spend and that the
//! finished run's spend equals the uninterrupted run's to the bit.
//!
//! Results are delivered at-least-once across a crash (a result
//! drained just before the crash can be re-emitted from the journal
//! after it); duplicates are keyed by `(query, window start)` and
//! must themselves be byte-identical.
//!
//! The quick matrix (1/2/4 shards × widths {11, 10⁴}) runs in tier-1;
//! the seeded exhaustive sweep is `#[ignore]`d and run by the CI
//! stress job.

use privapprox_core::aggregator::QueryResult;
use privapprox_core::{ShardedSystem, ShardedSystemBuilder};
use privapprox_rr::privacy::epsilon_zk;
use privapprox_types::{
    AnswerSpec, ExecutionParams, PrivacyBudget, Query, QueryId, Timestamp, Window,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

const POPULATION: u64 = 120;
const WINDOW_MS: u64 = 1_000;

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_privapprox-node")
}

/// A fresh store directory under the system temp dir; any leftover
/// from a previous run of the same test is cleared first.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("privapprox-crashrec-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Exact (bit-level for floats) equality of two results.
fn assert_results_identical(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.query, b.query, "{context}: query id");
    assert_eq!(a.window, b.window, "{context}: window");
    assert_eq!(a.sample_size, b.sample_size, "{context}: sample size");
    assert_eq!(a.population, b.population, "{context}: population");
    assert_eq!(a.buckets.len(), b.buckets.len(), "{context}: bucket count");
    let bits = f64::to_bits;
    for (i, (x, y)) in a.buckets.iter().zip(&b.buckets).enumerate() {
        let c = format!("{context}: bucket {i}");
        assert_eq!(x.raw_yes, y.raw_yes, "{c} raw_yes");
        assert_eq!(
            bits(x.estimate_sample),
            bits(y.estimate_sample),
            "{c} estimate_sample"
        );
        assert_eq!(bits(x.estimate), bits(y.estimate), "{c} estimate");
        assert_eq!(bits(x.ci.estimate), bits(y.ci.estimate), "{c} ci.estimate");
        assert_eq!(bits(x.ci.bound), bits(y.ci.bound), "{c} ci.bound");
        assert_eq!(
            bits(x.sampling_error),
            bits(y.sampling_error),
            "{c} sampling_error"
        );
        assert_eq!(bits(x.rr_error), bits(y.rr_error), "{c} rr_error");
    }
    assert_eq!(
        bits(a.privacy.eps_zk),
        bits(b.privacy.eps_zk),
        "{context}: eps_zk"
    );
}

/// One crash-matrix configuration.
struct Rig {
    seed: u64,
    shards: usize,
    buckets: usize,
    epochs: usize,
}

fn rig_params() -> ExecutionParams {
    ExecutionParams::checked(0.9, 0.8, 0.6)
}

fn builder(r: &Rig) -> ShardedSystemBuilder {
    ShardedSystem::builder()
        .clients(POPULATION)
        .proxies(2)
        .shards(r.shards)
        .workers(r.shards)
        .seed(r.seed)
}

fn load(sys: &mut ShardedSystem) {
    sys.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64)
        .unwrap();
}

/// Registers the rig's single budgeted, scheduled query (the serial
/// is deterministic, so every incarnation agrees on the `QueryId`).
fn register(sys: &mut ShardedSystem, buckets: usize) -> Query {
    let spec = AnswerSpec::ranges_with_overflow(0.0, 110.0, buckets - 1);
    let q = sys
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec)
        .window(WINDOW_MS, WINDOW_MS)
        .params(rig_params())
        .submit()
        .unwrap();
    sys.set_budget(q.id, PrivacyBudget::new(10_000.0).unwrap())
        .unwrap();
    sys.admit(q.id).unwrap();
    q
}

/// The uninterrupted run every crashed run is measured against:
/// drained results in close order plus the final ledger spend.
fn reference_run(r: &Rig) -> (Vec<QueryResult>, f64) {
    let mut sys = builder(r).build();
    load(&mut sys);
    let q = register(&mut sys, r.buckets);
    let mut results = Vec::new();
    for _ in 0..r.epochs {
        sys.run_epoch_all().unwrap();
        results.extend(sys.drain_results());
    }
    let spent = sys.budget_ledger(q.id).unwrap().spent();
    (results, spent)
}

/// Merges result streams from before and after crashes, dropping
/// at-least-once duplicates — which must be byte-identical to the
/// copy that was kept — and sorting into canonical order.
fn merge_dedup(runs: Vec<Vec<QueryResult>>) -> Vec<QueryResult> {
    let mut seen: HashMap<(QueryId, u64), usize> = HashMap::new();
    let mut out: Vec<QueryResult> = Vec::new();
    for run in runs {
        for r in run {
            let key = (r.query, r.window.start.0);
            match seen.get(&key) {
                Some(&i) => assert_results_identical(&out[i], &r, "at-least-once duplicate"),
                None => {
                    seen.insert(key, out.len());
                    out.push(r);
                }
            }
        }
    }
    out.sort_by_key(|r| (r.window.start.0, r.query.to_u64()));
    out
}

fn assert_sequences_identical(got: &[QueryResult], want: &[QueryResult], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: result count");
    for (g, w) in got.iter().zip(want) {
        assert_results_identical(g, w, context);
    }
}

/// The whole-system crash matrix body: run `crash_after` full epochs
/// durably, submit one more, tear the system down kill-9 style (the
/// unsynced journal tail is discarded), recover from the store
/// directory, finish the run, and require byte-identity with the
/// uninterrupted reference plus ledger spend that never exceeded the
/// true spend.
fn crash_recover_case(r: &Rig, crash_after: usize, tag: &str) {
    assert!(crash_after + 1 <= r.epochs);
    let (mut reference, ref_spent) = reference_run(r);
    reference.sort_by_key(|x| (x.window.start.0, x.query.to_u64()));
    let dir = store_dir(tag);

    // Phase 1: crash with one epoch submitted (journal fsynced) but
    // never completed.
    let mut pre = Vec::new();
    let pre_spent;
    {
        let mut sys = builder(r).durable(&dir).snapshot_every(2).build();
        assert!(!sys.needs_recovery(), "fresh directory has nothing to recover");
        load(&mut sys);
        let q = register(&mut sys, r.buckets);
        for _ in 0..crash_after {
            sys.run_epoch_all().unwrap();
            pre.extend(sys.drain_results());
        }
        sys.submit_epoch_all().unwrap();
        pre_spent = sys.budget_ledger(q.id).unwrap().spent();
        sys.crash();
    }

    // Phase 2: recover, verify the ledger, finish the run.
    let mut sys = builder(r).durable(&dir).snapshot_every(2).build();
    assert!(sys.needs_recovery(), "the journal holds a crashed incarnation");
    load(&mut sys);
    let recovered = sys.resume().unwrap();
    assert_eq!(recovered.len(), 1, "one registered query recovers");
    let qid = recovered[0].id;
    let spent_recovered = sys.budget_ledger(qid).unwrap().spent();
    assert!(
        spent_recovered <= pre_spent,
        "recovered ledger may under-report but never over-spend: {spent_recovered} > {pre_spent}"
    );
    sys.flush_epochs().unwrap();
    let mut post = sys.drain_results();
    for _ in (crash_after + 1)..r.epochs {
        sys.run_epoch_all().unwrap();
        post.extend(sys.drain_results());
    }
    assert_eq!(
        sys.budget_ledger(qid).unwrap().spent().to_bits(),
        ref_spent.to_bits(),
        "finished recovered run spends exactly what the uninterrupted run spent"
    );
    let health = sys.deploy_health();
    assert_eq!(health.recoveries, 1, "exactly one recovery counted");
    assert!(health.snapshot_count >= 1, "resume checkpointed the adopted state");
    assert!(health.journal_bytes > 0, "the journal is live");

    let combined = merge_dedup(vec![pre, post]);
    assert_sequences_identical(&combined, &reference, tag);
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- the quick whole-system matrix (tier-1) ----------------------

#[test]
fn crash_recovery_one_shard_narrow() {
    let r = Rig { seed: 3, shards: 1, buckets: 11, epochs: 4 };
    crash_recover_case(&r, 1, "1shard-11");
}

#[test]
fn crash_recovery_two_shards_narrow() {
    let r = Rig { seed: 5, shards: 2, buckets: 11, epochs: 4 };
    crash_recover_case(&r, 2, "2shard-11");
}

#[test]
fn crash_recovery_four_shards_wide() {
    let r = Rig { seed: 9, shards: 4, buckets: 10_000, epochs: 3 };
    crash_recover_case(&r, 1, "4shard-10k");
}

#[test]
fn crash_before_any_close_recovers() {
    // Crash point 0: the journal holds a registration, charges and
    // one submitted epoch — no close, no snapshot.
    let r = Rig { seed: 13, shards: 2, buckets: 11, epochs: 3 };
    crash_recover_case(&r, 0, "first-epoch");
}

/// The exhaustive seeded sweep the CI stress job runs: every crash
/// point of every matrix cell.
#[test]
#[ignore]
fn crash_recovery_full_sweep() {
    for &shards in &[1usize, 2, 4] {
        for &buckets in &[11usize, 10_000] {
            let epochs = if buckets > 1_000 { 3 } else { 5 };
            for crash_after in 0..epochs - 1 {
                for seed in 0..3u64 {
                    let r = Rig { seed: 21 + seed, shards, buckets, epochs };
                    let tag = format!("sweep-{shards}-{buckets}-{crash_after}-{seed}");
                    crash_recover_case(&r, crash_after, &tag);
                }
            }
        }
    }
}

// ----- ledger monotonicity across every crash point ----------------

/// At every possible crash point, the persisted spend equals the
/// charged spend (charges are fsynced before sends, and `crash()`
/// models the widest loss — everything unsynced gone): recovery can
/// never manufacture spend above the true ledger, and the epoch
/// count restores exactly.
#[test]
fn ledger_never_overspends_at_any_crash_point() {
    let r = Rig { seed: 17, shards: 2, buckets: 11, epochs: 5 };
    let eps = epsilon_zk(0.9, 0.8, 0.6);
    for crash_after in 0..r.epochs {
        let dir = store_dir(&format!("ledger-{crash_after}"));
        let true_spent;
        {
            let mut sys = builder(&r).durable(&dir).snapshot_every(3).build();
            load(&mut sys);
            let q = register(&mut sys, r.buckets);
            for _ in 0..crash_after {
                sys.run_epoch_all().unwrap();
                sys.drain_results();
            }
            sys.submit_epoch_all().unwrap();
            true_spent = sys.budget_ledger(q.id).unwrap().spent();
            sys.crash();
        }
        let mut sys = builder(&r).durable(&dir).snapshot_every(3).build();
        load(&mut sys);
        let recovered = sys.resume().unwrap();
        let ledger = sys.budget_ledger(recovered[0].id).unwrap();
        assert!(
            ledger.spent() <= true_spent,
            "crash point {crash_after}: recovered spend {} exceeds true spend {true_spent}",
            ledger.spent()
        );
        assert_eq!(
            ledger.spent().to_bits(),
            true_spent.to_bits(),
            "crash point {crash_after}: every synced charge restores exactly"
        );
        assert_eq!(ledger.epochs(), crash_after as u64 + 1);
        assert!((ledger.spent() - eps * (crash_after as f64 + 1.0)).abs() < 1e-9);
        drop(sys);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ----- abort() between fsync and send (re-exec harness) ------------

/// Re-executes this test binary so `crash_after_journal` can
/// `abort()` the victim for real. With `PRIVAPPROX_CRASH_RESUME` set
/// the child recovers first and aborts during the open-epoch
/// *re-submission* — a crash in the middle of recovery itself.
fn spawn_crash_child(dir: &Path, crash_at: u64, resume_first: bool) {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args(["--exact", "child_abort_workload", "--nocapture", "--test-threads=1"])
        .env("PRIVAPPROX_CRASH_DIR", dir)
        .env("PRIVAPPROX_CRASH_AT", crash_at.to_string());
    if resume_first {
        cmd.env("PRIVAPPROX_CRASH_RESUME", "1");
    }
    let out = cmd.output().unwrap();
    assert!(
        !out.status.success(),
        "the child was supposed to abort mid-epoch; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

const ABORT_RIG: Rig = Rig { seed: 7, shards: 2, buckets: 11, epochs: 6 };

/// Not an independent test: the crash *victim*, re-executed by the
/// abort harness below with the env set (a plain `cargo test` run
/// sees no env and returns immediately). `crash_after_journal` fires
/// `abort()` after the chosen epoch's journal fsync and before any
/// worker send — the widest window the recovery contract must close.
#[test]
fn child_abort_workload() {
    let Ok(dir) = std::env::var("PRIVAPPROX_CRASH_DIR") else {
        return;
    };
    let crash_at: u64 = std::env::var("PRIVAPPROX_CRASH_AT").unwrap().parse().unwrap();
    let r = ABORT_RIG;
    let mut sys = builder(&r)
        .durable(&dir)
        .snapshot_every(2)
        .crash_after_journal(crash_at)
        .build();
    load(&mut sys);
    if std::env::var("PRIVAPPROX_CRASH_RESUME").is_ok() {
        // Recovery replays, then aborts while re-submitting the open
        // epoch (the first submission counted after a restart).
        let _ = sys.resume();
    } else {
        register(&mut sys, r.buckets);
    }
    // Deliberately never drains: a result handed to the analyst by a
    // process that then dies is *delivered* and gone, which the
    // parent could not verify. Undrained results stay in `pending`,
    // ride the snapshot and the journal's close records, and must all
    // resurface after recovery.
    for _ in 0..r.epochs {
        let _ = sys.run_epoch_all();
    }
    // The hook should have killed us above.
    std::process::exit(3);
}

#[test]
fn abort_after_fsync_recovers_byte_identically() {
    let r = ABORT_RIG;
    let (mut reference, ref_spent) = reference_run(&r);
    reference.sort_by_key(|x| (x.window.start.0, x.query.to_u64()));
    let dir = store_dir("abort");
    std::fs::create_dir_all(&dir).unwrap();
    spawn_crash_child(&dir, 2, false);

    let mut sys = builder(&r).durable(&dir).snapshot_every(2).build();
    assert!(sys.needs_recovery());
    load(&mut sys);
    let recovered = sys.resume().unwrap();
    let qid = recovered[0].id;
    sys.flush_epochs().unwrap();
    let mut post = sys.drain_results();
    // The child aborted while submitting its third epoch (index 2):
    // two epochs closed, the third re-ran above. Finish the rest.
    for _ in 3..r.epochs {
        sys.run_epoch_all().unwrap();
        post.extend(sys.drain_results());
    }
    assert_eq!(sys.budget_ledger(qid).unwrap().spent().to_bits(), ref_spent.to_bits());
    let combined = merge_dedup(vec![post]);
    assert_sequences_identical(&combined, &reference, "abort recovery");
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Double crash: the first `abort()` mid-epoch, the second mid-*
/// recovery* (while the open epoch is being re-submitted). The third
/// incarnation must still finish byte-identically and never
/// over-spend — re-submission journals no new charges, so repeating
/// it is idempotent on the ledger.
#[test]
fn double_crash_during_recovery_still_byte_identical() {
    let r = ABORT_RIG;
    let (mut reference, ref_spent) = reference_run(&r);
    reference.sort_by_key(|x| (x.window.start.0, x.query.to_u64()));
    let dir = store_dir("double");
    std::fs::create_dir_all(&dir).unwrap();
    spawn_crash_child(&dir, 2, false);
    // Second victim: recovers, then aborts during the open epoch's
    // re-submission (submission index 0 of the new incarnation).
    spawn_crash_child(&dir, 0, true);

    let mut sys = builder(&r).durable(&dir).snapshot_every(2).build();
    assert!(sys.needs_recovery());
    load(&mut sys);
    let recovered = sys.resume().unwrap();
    let qid = recovered[0].id;
    let ledger = sys.budget_ledger(qid).unwrap();
    assert_eq!(
        ledger.epochs(),
        3,
        "three charged epochs — the re-submission never re-charges"
    );
    sys.flush_epochs().unwrap();
    let mut post = sys.drain_results();
    for _ in 3..r.epochs {
        sys.run_epoch_all().unwrap();
        post.extend(sys.drain_results());
    }
    assert_eq!(sys.budget_ledger(qid).unwrap().spent().to_bits(), ref_spent.to_bits());
    let combined = merge_dedup(vec![post]);
    assert_sequences_identical(&combined, &reference, "double-crash recovery");
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- retained warehouses survive restart -------------------------

/// `retain_history` + `batch_query` across a crash: the snapshot
/// carries the retained warehouse, so a historical answer after
/// recovery is byte-identical to the same question asked before the
/// crash (the batch reservoir is seeded deterministically).
#[test]
fn retained_batch_answers_survive_restart() {
    let r = Rig { seed: 23, shards: 2, buckets: 11, epochs: 3 };
    let dir = store_dir("retain");
    let range = Window {
        start: Timestamp(0),
        end: Timestamp(u64::MAX),
    };
    let before;
    {
        let mut sys = builder(&r).durable(&dir).snapshot_every(1).build();
        load(&mut sys);
        let q = register(&mut sys, r.buckets);
        sys.retain_history(q.id).unwrap();
        for _ in 0..r.epochs {
            sys.run_epoch_all().unwrap();
            sys.drain_results();
        }
        before = sys.batch_query(q.id, range, 50).unwrap();
        sys.crash();
    }
    let mut sys = builder(&r).durable(&dir).snapshot_every(1).build();
    load(&mut sys);
    let recovered = sys.resume().unwrap();
    sys.flush_epochs().unwrap();
    sys.drain_results();
    let after = sys.batch_query(recovered[0].id, range, 50).unwrap();
    assert_results_identical(&after, &before, "batch answer across restart");
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- disk stays O(snapshot interval) (satellite: bounded journal) -

/// 200-epoch soak with a tiny (4 KiB) segment threshold: rotation
/// plus pruning below each snapshot's floor must keep the journal —
/// and the whole store directory — bounded by the snapshot interval,
/// not the run length.
#[test]
fn journal_disk_stays_bounded_over_soak() {
    let r = Rig { seed: 11, shards: 1, buckets: 11, epochs: 200 };
    let dir = store_dir("soak");
    let mut sys = builder(&r)
        .durable(&dir)
        .snapshot_every(10)
        .journal_segment_bytes(4 * 1024)
        .build();
    load(&mut sys);
    register(&mut sys, r.buckets);
    let mut max_journal = 0u64;
    let mut max_segments = 0usize;
    for e in 0..r.epochs {
        sys.run_epoch_all().unwrap();
        sys.drain_results();
        if e % 10 == 9 {
            let h = sys.deploy_health();
            max_journal = max_journal.max(h.journal_bytes);
            assert!(
                h.snapshot_count <= 2,
                "epoch {e}: old snapshots must be retired, found {}",
                h.snapshot_count
            );
            let segments = std::fs::read_dir(&dir)
                .unwrap()
                .filter(|f| {
                    f.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .starts_with("wal-")
                })
                .count();
            max_segments = max_segments.max(segments);
        }
    }
    assert!(
        max_journal < 256 * 1024,
        "journal grew past the snapshot-interval bound: {max_journal} bytes"
    );
    assert!(
        max_segments <= 16,
        "segment pruning fell behind: {max_segments} live segments"
    );
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- SIGKILLed child node (process transport) --------------------

/// Process transport: SIGKILL a child node mid-run, let supervision
/// respawn it (epochs may close partially — degrade-to-sampling, not
/// corruption), then kill the whole deployment and recover. The
/// *accounting* contract holds even though a dead shard's in-flight
/// decodes are legitimately lost: every charged epoch restores, spend
/// never exceeds the charge sequence, and the recovered deployment
/// keeps producing windows.
#[test]
fn sigkilled_child_node_then_whole_system_recovery() {
    let r = Rig { seed: 29, shards: 2, buckets: 11, epochs: 6 };
    let eps = epsilon_zk(0.9, 0.8, 0.6);
    let dir = store_dir("sigkill");
    let charged_epochs;
    {
        let mut sys = builder(&r)
            .process_transport(node_binary())
            .epoch_deadline(Duration::from_secs(2))
            .durable(&dir)
            .snapshot_every(2)
            .build();
        load(&mut sys);
        let q = register(&mut sys, r.buckets);
        for _ in 0..2 {
            sys.run_epoch_all().unwrap();
            sys.drain_results();
        }
        // SIGKILL the first shard child: no unwind, no goodbye — the
        // parent discovers the death through its supervised link.
        let (_, pid) = sys
            .children()
            .iter()
            .find(|(label, _)| label == "shard-0")
            .cloned()
            .expect("process transport spawns shard children");
        Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status()
            .unwrap();
        for _ in 2..4 {
            // Faults surface as typed errors while the pipeline keeps
            // going (respawn + partial close are legitimate here).
            let _ = sys.run_epoch_all();
            let _ = sys.flush_epochs();
            sys.drain_results();
        }
        let ledger = sys.budget_ledger(q.id).unwrap();
        charged_epochs = ledger.epochs();
        assert_eq!(charged_epochs, 4, "every submitted epoch charged exactly once");
        assert!((ledger.spent() - eps * 4.0).abs() < 1e-9);
        sys.crash();
    }
    // Whole-system recovery of the process deployment.
    let mut sys = builder(&r)
        .process_transport(node_binary())
        .epoch_deadline(Duration::from_secs(2))
        .durable(&dir)
        .snapshot_every(2)
        .build();
    assert!(sys.needs_recovery());
    load(&mut sys);
    let recovered = sys.resume().unwrap();
    let qid = recovered[0].id;
    assert_eq!(
        sys.budget_ledger(qid).unwrap().epochs(),
        charged_epochs,
        "charged epochs restore exactly across a process-mode restart"
    );
    let _ = sys.flush_epochs();
    let mut produced = sys.drain_results();
    for _ in 4..r.epochs {
        sys.run_epoch_all().unwrap();
        produced.extend(sys.drain_results());
    }
    assert!(
        !produced.is_empty(),
        "the recovered process deployment keeps producing windows"
    );
    let ledger = sys.budget_ledger(qid).unwrap();
    assert_eq!(ledger.epochs(), r.epochs as u64);
    assert!(
        ledger.spent() <= eps * r.epochs as f64 + 1e-9,
        "spend never exceeds the charge sequence"
    );
    let health = sys.deploy_health();
    assert_eq!(health.recoveries, 1);
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

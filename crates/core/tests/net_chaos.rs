//! Network-chaos suite for the process transport: seeded fault
//! injection ([`FaultPlan`]) on every parent↔child link — drops,
//! duplicates, adjacent reorders, shaped delays and hard connection
//! cuts — while real epochs stream through spawned `privapprox-node`
//! children.
//!
//! The contract mirrors `tests/failure_injection.rs`' thread-level
//! chaos, lifted to the network layer:
//!
//! * **Lossless repair**: drop/duplicate/reorder/delay faults are
//!   repaired by the supervised links' resend window and the
//!   receive-side reassembly — results stay **byte-identical** to the
//!   single-threaded run, with zero partial closes; the repairs are
//!   visible as `DeployHealth::retries`.
//! * **Partition degradation**: connection cuts reconnect with
//!   backoff (`DeployHealth::reconnects`), and whatever was in flight
//!   child→parent during the severed window is *accounted* — every
//!   epoch still closes (fully, or partially at the epoch deadline),
//!   no epoch hangs, no result is silently corrupted.

use privapprox_cluster::FaultPlan;
use privapprox_core::aggregator::QueryResult;
use privapprox_core::{ShardedSystem, System};
use privapprox_types::{AnswerSpec, ExecutionParams};
use std::time::Duration;

fn node_binary() -> &'static str {
    env!("CARGO_BIN_EXE_privapprox-node")
}

const POPULATION: u64 = 120;

fn load(sys_val: impl Fn(usize) -> f64) -> impl Fn(usize) -> f64 {
    sys_val
}

fn spec() -> AnswerSpec {
    AnswerSpec::ranges_with_overflow(0.0, 110.0, 10)
}

/// Exact (bit-level for floats) equality of two results.
fn assert_results_identical(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.query, b.query, "{context}: query id");
    assert_eq!(a.window, b.window, "{context}: window");
    assert_eq!(a.sample_size, b.sample_size, "{context}: sample size");
    let bits = f64::to_bits;
    for (i, (x, y)) in a.buckets.iter().zip(&b.buckets).enumerate() {
        assert_eq!(x.raw_yes, y.raw_yes, "{context} bucket {i}: raw_yes");
        assert_eq!(
            bits(x.estimate),
            bits(y.estimate),
            "{context} bucket {i}: estimate"
        );
        assert_eq!(
            bits(x.ci.bound),
            bits(y.ci.bound),
            "{context} bucket {i}: ci bound"
        );
    }
}

/// Runs `epochs` epochs over sockets under `plan`, returning the
/// drained results and the final health snapshot.
fn run_chaos(
    seed: u64,
    plan: FaultPlan,
    epochs: usize,
    deadline: Option<Duration>,
) -> (Vec<QueryResult>, privapprox_core::DeployHealth) {
    let mut builder = ShardedSystem::builder()
        .clients(POPULATION)
        .proxies(2)
        .shards(2)
        .workers(2)
        .seed(seed)
        .process_transport(node_binary())
        .transport_faults(plan);
    if let Some(d) = deadline {
        builder = builder.epoch_deadline(d);
    }
    let mut sys = builder.build();
    sys.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64)
        .unwrap();
    let q = sys
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec())
        .window(1_000, 1_000)
        .params(ExecutionParams::checked(0.9, 0.8, 0.6))
        .submit()
        .unwrap();
    let mut results = Vec::new();
    for _ in 0..epochs {
        match sys.run_epoch(&q) {
            Ok(r) => results.push(r),
            // A partially-closed epoch can legitimately emit nothing
            // for a query; the fault is already recorded.
            Err(_) => {}
        }
        results.extend(sys.drain_results());
    }
    let health = sys.deploy_health();
    (results, health)
}

/// The single-threaded reference emission sequence.
fn reference(seed: u64, epochs: usize) -> Vec<QueryResult> {
    let mut single = System::builder()
        .clients(POPULATION)
        .proxies(2)
        .seed(seed)
        .build();
    single.load_numeric_column("vehicle", "speed", load(|i| (i % 110) as f64));
    let q = single
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(spec())
        .window(1_000, 1_000)
        .params(ExecutionParams::checked(0.9, 0.8, 0.6))
        .submit()
        .unwrap();
    let mut results = Vec::new();
    for _ in 0..epochs {
        results.push(single.run_epoch(&q).unwrap());
        results.extend(single.drain_results());
    }
    results
}

/// Drops, duplicates and reorders on every link: the resend window
/// re-delivers lost frames, the reassembly dedups and re-orders, and
/// the results come out byte-identical — chaos below, determinism
/// above. The repair traffic must be visible in the health counters.
#[test]
fn drop_duplicate_reorder_chaos_is_byte_identical() {
    let epochs = 4;
    for seed in [11u64, 12] {
        // Data records ride batched frames (512 records each), so a
        // 120-client epoch is one or two Data frames per link — the
        // fault rates are sized for dozens of frames, not thousands.
        let plan = FaultPlan {
            seed: seed ^ 0xC4A0_5,
            drop: 0.3,
            duplicate: 0.25,
            reorder: 0.25,
            ..FaultPlan::default()
        };
        let (got, health) = run_chaos(seed, plan, epochs, None);
        let want = reference(seed, epochs);
        assert_eq!(want.len(), got.len(), "seed {seed}: result count");
        for (i, (a, b)) in want.iter().zip(&got).enumerate() {
            assert_results_identical(a, b, &format!("seed {seed} result {i}"));
        }
        assert_eq!(health.partial_closes, 0, "seed {seed}: lossless repair");
        assert_eq!(health.lost_answers, 0, "seed {seed}");
        assert_eq!(health.proxy_panics + health.shard_panics, 0, "seed {seed}");
        // With a 30% drop rate over dozens of frames, at least one
        // resend must have fired (and is the only reason this test
        // passes at all).
        assert!(
            health.retries > 0,
            "seed {seed}: drops repaired without any resend?"
        );
    }
}

/// Shaped delays only: slower, never different. No repair machinery
/// should even engage.
#[test]
fn delay_chaos_is_byte_identical_and_repair_free() {
    let seed = 23u64;
    let epochs = 2;
    let plan = FaultPlan {
        seed: 99,
        delay: 0.2,
        ..FaultPlan::default()
    };
    let (got, health) = run_chaos(seed, plan, epochs, None);
    let want = reference(seed, epochs);
    assert_eq!(want.len(), got.len());
    for (i, (a, b)) in want.iter().zip(&got).enumerate() {
        assert_results_identical(a, b, &format!("delay result {i}"));
    }
    assert_eq!(health.retries, 0, "delays are not losses");
    assert_eq!(health.reconnects, 0);
    assert_eq!(health.partial_closes, 0);
}

/// Hard partitions: every link is cut after every couple of data
/// frames — with batched frames that is roughly every other epoch,
/// over and over. The links must reconnect with backoff and replay
/// their unacked windows; answers relayed child→parent during a
/// severed window are lost and must be *accounted* — every epoch
/// closes (fully or partially at the deadline), none hangs, and the
/// books balance: a shortfall is visible as partial closes with
/// counted lost answers, never silent.
#[test]
fn partition_chaos_reconnects_and_accounts_every_epoch() {
    let epochs = 4;
    let seed = 31u64;
    let plan = FaultPlan {
        seed: 7,
        cut_after: 2,
        ..FaultPlan::default()
    };
    let deadline = Duration::from_millis(1_500);
    let (results, health) = run_chaos(seed, plan, epochs, Some(deadline));

    // The run terminated (no wedged epoch) and the links healed.
    assert!(health.reconnects > 0, "cuts must force reconnects");
    // Every emitted result is structurally sound: a degraded epoch
    // shrinks the sample, it never fabricates or corrupts answers.
    for (i, r) in results.iter().enumerate() {
        assert!(
            r.sample_size <= POPULATION,
            "result {i}: sample {} exceeds population",
            r.sample_size
        );
        for (j, b) in r.buckets.iter().enumerate() {
            assert!(
                b.estimate.is_finite(),
                "result {i} bucket {j}: non-finite estimate"
            );
            assert!(
                b.raw_yes <= r.sample_size,
                "result {i} bucket {j}: more yeses than answers"
            );
        }
    }
    // Conservation: every answer the epochs expected is either in a
    // full close, or counted lost under a partial one.
    assert!(
        health.lost_answers <= POPULATION * epochs as u64,
        "lost more than was ever sent"
    );
    assert!(
        health.partial_closes <= epochs as u64,
        "more partial closes than epochs"
    );
    if health.lost_answers > 0 {
        assert!(
            health.partial_closes > 0,
            "lost answers must ride a partial close"
        );
    }
}

/// The full storm — drops, duplicates, reorders, delays *and* cuts,
/// several epochs, both shards and proxies faulted: nothing hangs,
/// nothing goes unaccounted, and the deployment is still live and
/// serving afterwards (a clean epoch at the end completes).
#[test]
#[ignore = "network chaos storm (~1 min); run by the CI multi-process job"]
fn full_storm_stays_live_and_accounted() {
    let epochs = 6;
    for seed in [41u64, 42, 43] {
        let plan = FaultPlan {
            seed: seed.wrapping_mul(0x9E37),
            drop: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            delay: 0.1,
            cut_after: 4,
            ..FaultPlan::default()
        };
        let (results, health) = run_chaos(seed, plan, epochs, Some(Duration::from_secs(2)));
        for r in &results {
            assert!(r.sample_size <= POPULATION, "seed {seed}");
            for b in &r.buckets {
                assert!(b.estimate.is_finite(), "seed {seed}");
            }
        }
        assert!(
            health.partial_closes <= epochs as u64,
            "seed {seed}: more partial closes than epochs"
        );
        if health.lost_answers > 0 {
            assert!(health.partial_closes > 0, "seed {seed}: unaccounted loss");
        }
    }
}

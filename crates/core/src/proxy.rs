//! The PrivApprox proxy: a forward-only relay (paper §3.2.3).
//!
//! "In PRIVAPPROX, the processing at proxies contains only the answer
//! transmission" — that single sentence is the system's performance
//! story (Figure 6). A proxy consumes the shares clients addressed to
//! it and republishes them on its aggregator-facing topic. It never
//! inspects payloads (they are XOR pads or encrypted answers —
//! indistinguishable), never synchronizes with other proxies, and
//! keeps no per-client state: source rewriting means the records it
//! sees carry no client identity at all.

use privapprox_stream::broker::{Broker, BrokerError, Consumer, Record, TopicWriter};
use privapprox_types::ProxyId;
use std::time::Duration;

/// Naming convention for the client→proxy topic.
pub fn inbound_topic(id: ProxyId) -> String {
    format!("proxy-{}-in", id.0)
}

/// Naming convention for the proxy→aggregator topic.
pub fn outbound_topic(id: ProxyId) -> String {
    format!("proxy-{}-out", id.0)
}

/// A forwarding proxy bound to one broker.
pub struct Proxy {
    id: ProxyId,
    consumer: Consumer,
    writer: TopicWriter,
    /// Reused poll batch: the forward loop allocates nothing per
    /// record (poll clones are refcounts, the writer's topic handle
    /// is cached, and consumers are woken once per batch).
    batch: Vec<(u32, u32, Record)>,
    forwarded: u64,
}

impl Proxy {
    /// Creates proxy `id` on the broker, subscribing to its inbound
    /// topic. The outbound topic is created with the **same partition
    /// count** as the inbound one, because forwarding is
    /// partition-preserving (see [`Proxy::pump`]).
    pub fn new(id: ProxyId, broker: &Broker) -> Proxy {
        let in_topic = inbound_topic(id);
        let out_topic = outbound_topic(id);
        broker.create_topic(&out_topic, broker.partitions(&in_topic));
        Proxy {
            id,
            consumer: broker.consumer(&format!("proxy-{}", id.0), &[&in_topic]),
            writer: broker.writer(&out_topic),
            batch: Vec::new(),
            forwarded: 0,
        }
    }

    /// The proxy id.
    pub fn id(&self) -> ProxyId {
        self.id
    }

    /// Drains pending inbound shares and forwards them unchanged.
    /// Returns the number forwarded in this pump.
    ///
    /// Forwarding is **partition-preserving**: a share polled from
    /// inbound partition `p` is republished on outbound partition `p`,
    /// so the client → partition affinity a sharded aggregator relies
    /// on survives the proxy hop (all of one client's shares stay in
    /// one partition index across every proxy's output). Key, value
    /// (by refcount) and timestamp pass through untouched.
    pub fn pump(&mut self) -> u64 {
        self.try_pump().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Proxy::pump`] reporting a backpressure deadline on the
    /// outbound topic as a typed error instead of panicking. Shares
    /// already polled but not yet re-published stay in the batch
    /// buffer, so a later pump retries them — nothing is dropped.
    pub fn try_pump(&mut self) -> Result<u64, BrokerError> {
        let mut n = 0;
        loop {
            n += self.try_forward()?;
            if self.consumer.poll_into(1024, &mut self.batch) == 0 {
                break;
            }
        }
        self.forwarded += n;
        Ok(n)
    }

    /// Blocks up to `timeout` for inbound shares, then forwards
    /// everything available (the blocked wait plus a non-blocking
    /// drain). Returns the number forwarded — `0` means the wait
    /// timed out with nothing pending. This is the building block for
    /// proxy *threads*: a `pump_blocking` loop parks on the broker's
    /// condvar instead of sleep-spinning.
    pub fn pump_blocking(&mut self, timeout: Duration) -> u64 {
        self.try_pump_blocking(timeout)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Proxy::pump_blocking`] reporting a backpressure deadline as
    /// a typed error; see [`Proxy::try_pump`] for the retry
    /// semantics of the pending batch.
    pub fn try_pump_blocking(&mut self, timeout: Duration) -> Result<u64, BrokerError> {
        if self.batch.is_empty()
            && self.consumer.poll_blocking_into(1024, timeout, &mut self.batch) == 0
        {
            return Ok(0);
        }
        let n = self.try_forward()?;
        self.forwarded += n;
        Ok(n + self.try_pump()?)
    }

    /// Forwards the pending poll batch partition-for-partition: key
    /// and value pass through by refcount, and consumers are woken
    /// once at the end of the batch. On a backpressure error the
    /// unforwarded tail (including the failing record) is retained
    /// for retry.
    fn try_forward(&mut self) -> Result<u64, BrokerError> {
        let mut sent = 0usize;
        let mut fault = None;
        for (_, partition, record) in &self.batch {
            match self.writer.try_append_quiet(
                *partition as usize,
                record.key.clone(),
                record.value.clone(),
                record.timestamp,
            ) {
                Ok(_) => sent += 1,
                Err(e) => {
                    fault = Some(e);
                    break;
                }
            }
        }
        if sent > 0 {
            self.batch.drain(..sent);
            self.writer.notify();
        }
        match fault {
            None => Ok(sent as u64),
            Some(e) => {
                self.forwarded += sent as u64;
                Err(e)
            }
        }
    }

    /// Total shares forwarded over the proxy's lifetime.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privapprox_types::Timestamp;

    #[test]
    fn topics_are_stable() {
        assert_eq!(inbound_topic(ProxyId(0)), "proxy-0-in");
        assert_eq!(outbound_topic(ProxyId(3)), "proxy-3-out");
    }

    #[test]
    fn pump_forwards_everything_in_order() {
        let broker = Broker::new(1);
        let producer = broker.producer();
        for i in 0..5u8 {
            producer.send("proxy-0-in", None, vec![i], Timestamp(i as u64));
        }
        let mut proxy = Proxy::new(ProxyId(0), &broker);
        assert_eq!(proxy.pump(), 5);
        assert_eq!(proxy.forwarded(), 5);

        let agg = broker.consumer("agg", &["proxy-0-out"]);
        let got = agg.poll(100);
        assert_eq!(got.len(), 5);
        let values: Vec<u8> = got.iter().map(|(_, r)| r.value[0]).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn payloads_and_timestamps_pass_through_unchanged() {
        let broker = Broker::new(1);
        broker.producer().send(
            "proxy-1-in",
            Some(b"mid".to_vec()),
            b"opaque-share".to_vec(),
            Timestamp(777),
        );
        let mut proxy = Proxy::new(ProxyId(1), &broker);
        proxy.pump();
        let got = broker.consumer("agg", &["proxy-1-out"]).poll(10);
        assert_eq!(&*got[0].1.value, b"opaque-share");
        assert_eq!(got[0].1.key.as_deref(), Some(&b"mid"[..]));
        assert_eq!(got[0].1.timestamp, Timestamp(777));
    }

    #[test]
    fn proxies_are_independent() {
        // Shares sent to proxy 0 never appear on proxy 1's output —
        // the unlinkability path separation.
        let broker = Broker::new(1);
        broker
            .producer()
            .send("proxy-0-in", None, b"for-0".to_vec(), Timestamp(0));
        let mut p0 = Proxy::new(ProxyId(0), &broker);
        let mut p1 = Proxy::new(ProxyId(1), &broker);
        assert_eq!(p0.pump(), 1);
        assert_eq!(p1.pump(), 0);
        assert_eq!(broker.topic_len("proxy-1-out"), 0);
    }

    #[test]
    fn forwarding_preserves_partitions() {
        let broker = Broker::new(4);
        let producer = broker.producer();
        for p in 0..4usize {
            producer.send_to("proxy-0-in", p, None, vec![p as u8], Timestamp(0));
        }
        let mut proxy = Proxy::new(ProxyId(0), &broker);
        assert_eq!(proxy.pump(), 4);
        let agg = broker.consumer("agg", &["proxy-0-out"]);
        let mut got: Vec<(usize, u8)> = agg
            .poll_partitioned(100)
            .iter()
            .map(|(_, p, r)| (*p, r.value[0]))
            .collect();
        got.sort_unstable();
        assert_eq!(
            got,
            vec![(0, 0), (1, 1), (2, 2), (3, 3)],
            "share polled from partition p must be re-published on partition p"
        );
    }

    #[test]
    fn pump_blocking_wakes_on_data_and_times_out_empty() {
        let broker = Broker::new(1);
        let mut proxy = Proxy::new(ProxyId(0), &broker);
        // Empty inbound: times out with nothing forwarded.
        assert_eq!(proxy.pump_blocking(std::time::Duration::from_millis(20)), 0);
        let producer = broker.producer();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            producer.send("proxy-0-in", None, b"wake".to_vec(), Timestamp(1));
        });
        let n = proxy.pump_blocking(std::time::Duration::from_secs(5));
        t.join().unwrap();
        assert_eq!(n, 1, "blocked pump forwards the record that woke it");
        assert_eq!(broker.topic_len("proxy-0-out"), 1);
    }

    #[test]
    fn repeated_pumps_do_not_duplicate() {
        let broker = Broker::new(1);
        broker
            .producer()
            .send("proxy-0-in", None, b"x".to_vec(), Timestamp(0));
        let mut proxy = Proxy::new(ProxyId(0), &broker);
        assert_eq!(proxy.pump(), 1);
        assert_eq!(proxy.pump(), 0);
        assert_eq!(broker.topic_len("proxy-0-out"), 1);
    }
}

//! The PrivApprox proxy: a forward-only relay (paper §3.2.3).
//!
//! "In PRIVAPPROX, the processing at proxies contains only the answer
//! transmission" — that single sentence is the system's performance
//! story (Figure 6). A proxy consumes the shares clients addressed to
//! it and republishes them on its aggregator-facing topic. It never
//! inspects payloads (they are XOR pads or encrypted answers —
//! indistinguishable), never synchronizes with other proxies, and
//! keeps no per-client state: source rewriting means the records it
//! sees carry no client identity at all.

use privapprox_stream::broker::{Broker, Consumer, Producer};
use privapprox_types::ProxyId;

/// Naming convention for the client→proxy topic.
pub fn inbound_topic(id: ProxyId) -> String {
    format!("proxy-{}-in", id.0)
}

/// Naming convention for the proxy→aggregator topic.
pub fn outbound_topic(id: ProxyId) -> String {
    format!("proxy-{}-out", id.0)
}

/// A forwarding proxy bound to one broker.
pub struct Proxy {
    id: ProxyId,
    consumer: Consumer,
    producer: Producer,
    out_topic: String,
    forwarded: u64,
}

impl Proxy {
    /// Creates proxy `id` on the broker, subscribing to its inbound
    /// topic.
    pub fn new(id: ProxyId, broker: &Broker) -> Proxy {
        let in_topic = inbound_topic(id);
        Proxy {
            id,
            consumer: broker.consumer(&format!("proxy-{}", id.0), &[&in_topic]),
            producer: broker.producer(),
            out_topic: outbound_topic(id),
            forwarded: 0,
        }
    }

    /// The proxy id.
    pub fn id(&self) -> ProxyId {
        self.id
    }

    /// Drains pending inbound shares and forwards them unchanged.
    /// Returns the number forwarded in this pump.
    pub fn pump(&mut self) -> u64 {
        let mut n = 0;
        loop {
            let batch = self.consumer.poll(1024);
            if batch.is_empty() {
                break;
            }
            for (_, record) in batch {
                // Forward-only: key and value pass through untouched.
                self.producer
                    .send(&self.out_topic, record.key, record.value, record.timestamp);
                n += 1;
            }
        }
        self.forwarded += n;
        n
    }

    /// Total shares forwarded over the proxy's lifetime.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privapprox_types::Timestamp;

    #[test]
    fn topics_are_stable() {
        assert_eq!(inbound_topic(ProxyId(0)), "proxy-0-in");
        assert_eq!(outbound_topic(ProxyId(3)), "proxy-3-out");
    }

    #[test]
    fn pump_forwards_everything_in_order() {
        let broker = Broker::new(1);
        let producer = broker.producer();
        for i in 0..5u8 {
            producer.send("proxy-0-in", None, vec![i], Timestamp(i as u64));
        }
        let mut proxy = Proxy::new(ProxyId(0), &broker);
        assert_eq!(proxy.pump(), 5);
        assert_eq!(proxy.forwarded(), 5);

        let agg = broker.consumer("agg", &["proxy-0-out"]);
        let got = agg.poll(100);
        assert_eq!(got.len(), 5);
        let values: Vec<u8> = got.iter().map(|(_, r)| r.value[0]).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn payloads_and_timestamps_pass_through_unchanged() {
        let broker = Broker::new(1);
        broker.producer().send(
            "proxy-1-in",
            Some(b"mid".to_vec()),
            b"opaque-share".to_vec(),
            Timestamp(777),
        );
        let mut proxy = Proxy::new(ProxyId(1), &broker);
        proxy.pump();
        let got = broker.consumer("agg", &["proxy-1-out"]).poll(10);
        assert_eq!(&*got[0].1.value, b"opaque-share");
        assert_eq!(got[0].1.key, Some(b"mid".to_vec()));
        assert_eq!(got[0].1.timestamp, Timestamp(777));
    }

    #[test]
    fn proxies_are_independent() {
        // Shares sent to proxy 0 never appear on proxy 1's output —
        // the unlinkability path separation.
        let broker = Broker::new(1);
        broker
            .producer()
            .send("proxy-0-in", None, b"for-0".to_vec(), Timestamp(0));
        let mut p0 = Proxy::new(ProxyId(0), &broker);
        let mut p1 = Proxy::new(ProxyId(1), &broker);
        assert_eq!(p0.pump(), 1);
        assert_eq!(p1.pump(), 0);
        assert_eq!(broker.topic_len("proxy-1-out"), 0);
    }

    #[test]
    fn repeated_pumps_do_not_duplicate() {
        let broker = Broker::new(1);
        broker
            .producer()
            .send("proxy-0-in", None, b"x".to_vec(), Timestamp(0));
        let mut proxy = Proxy::new(ProxyId(0), &broker);
        assert_eq!(proxy.pump(), 1);
        assert_eq!(proxy.pump(), 0);
        assert_eq!(broker.topic_len("proxy-0-out"), 1);
    }
}

//! SplitX baseline: synchronized proxies (paper §6 #VIII, Figure 6).
//!
//! SplitX (Chen et al., SIGCOMM '13) shares PrivApprox's architecture
//! but its proxies must *cooperate* per epoch: "the processing at
//! proxies consists of a few sub-processes including adding noise to
//! answers, answer transmission, answer intersection, and answer
//! shuffling; whereas, in PRIVAPPROX, the processing at proxies
//! contains only the answer transmission."
//!
//! This module actually executes both pipelines over a batch of
//! answers — two proxy threads with real barriers for SplitX, a plain
//! forward loop for PrivApprox — and reports per-phase wall-clock
//! times. The bench harness uses these measurements to calibrate the
//! cluster simulator for Figure 6's client counts beyond what one
//! machine can execute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Per-phase wall-clock breakdown of one SplitX epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitxTiming {
    /// Noise addition over every answer.
    pub noise: Duration,
    /// Answer transmission (copy into the peer-facing buffer).
    pub transmission: Duration,
    /// Answer intersection (MID set intersection between proxies).
    pub intersection: Duration,
    /// Answer shuffling (Fisher-Yates over the batch).
    pub shuffling: Duration,
    /// End-to-end epoch latency.
    pub total: Duration,
}

/// Deterministic xorshift for noise generation (cheap, measurable).
#[inline]
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Runs one SplitX epoch over `answers` with two proxy threads
/// synchronized by barriers between the four phases; returns the
/// timing breakdown measured on proxy 0.
pub fn run_splitx_epoch(answers: &[Vec<u8>], seed: u64) -> SplitxTiming {
    let barrier = Arc::new(Barrier::new(2));
    // Each proxy holds its own copy of the batch (SplitX replicates
    // the blinded answer stream at both proxies).
    let phase_ns: Arc<[AtomicU64; 4]> = Arc::new([
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ]);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for proxy_idx in 0..2u64 {
            let barrier = Arc::clone(&barrier);
            let phase_ns = Arc::clone(&phase_ns);
            let answers_ref = answers;
            scope.spawn(move || {
                let mut batch: Vec<Vec<u8>> = answers_ref.to_vec();
                let mut rng_state = seed ^ (proxy_idx + 1).wrapping_mul(0x9E37_79B9);

                // Phase 1: noise addition.
                let t = Instant::now();
                for answer in &mut batch {
                    for b in answer.iter_mut() {
                        *b ^= (xorshift64(&mut rng_state) & 1) as u8;
                    }
                }
                barrier.wait();
                if proxy_idx == 0 {
                    phase_ns[0].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }

                // Phase 2: answer transmission (peer-facing copy).
                let t = Instant::now();
                let transmitted: Vec<Vec<u8>> = batch.clone();
                barrier.wait();
                if proxy_idx == 0 {
                    phase_ns[1].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }

                // Phase 3: answer intersection (hash-set of message
                // fingerprints; SplitX intersects the two proxies'
                // views to drop mismatched halves).
                let t = Instant::now();
                let mut set = std::collections::HashSet::with_capacity(transmitted.len());
                for answer in &transmitted {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for &b in answer.iter().take(16) {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    set.insert(h);
                }
                let hits = transmitted
                    .iter()
                    .filter(|a| {
                        let mut h = 0xcbf2_9ce4_8422_2325u64;
                        for &b in a.iter().take(16) {
                            h ^= b as u64;
                            h = h.wrapping_mul(0x0000_0100_0000_01B3);
                        }
                        set.contains(&h)
                    })
                    .count();
                assert_eq!(hits, transmitted.len());
                barrier.wait();
                if proxy_idx == 0 {
                    phase_ns[2].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }

                // Phase 4: answer shuffling (Fisher-Yates).
                let t = Instant::now();
                let mut shuffled = transmitted;
                let n = shuffled.len();
                for i in (1..n).rev() {
                    let j = (xorshift64(&mut rng_state) % (i as u64 + 1)) as usize;
                    shuffled.swap(i, j);
                }
                std::hint::black_box(&shuffled);
                barrier.wait();
                if proxy_idx == 0 {
                    phase_ns[3].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }
    });
    let total = start.elapsed();
    SplitxTiming {
        noise: Duration::from_nanos(phase_ns[0].load(Ordering::Relaxed)),
        transmission: Duration::from_nanos(phase_ns[1].load(Ordering::Relaxed)),
        intersection: Duration::from_nanos(phase_ns[2].load(Ordering::Relaxed)),
        shuffling: Duration::from_nanos(phase_ns[3].load(Ordering::Relaxed)),
        total,
    }
}

/// Runs one PrivApprox proxy epoch over the same batch: transmission
/// only (the §6 comparison's fast path). Returns the forward latency.
pub fn run_privapprox_epoch(answers: &[Vec<u8>]) -> Duration {
    let start = Instant::now();
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(answers.len());
    for answer in answers {
        out.push(answer.clone()); // forward untouched
    }
    std::hint::black_box(&out);
    start.elapsed()
}

/// Builds a synthetic batch of `n` answers of `bytes` bytes each.
pub fn synthetic_batch(n: usize, bytes: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            (0..bytes)
                .map(|_| (xorshift64(&mut state) & 0xFF) as u8)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitx_epoch_reports_all_phases() {
        let batch = synthetic_batch(5_000, 13, 1);
        let timing = run_splitx_epoch(&batch, 42);
        assert!(timing.noise > Duration::ZERO);
        assert!(timing.transmission > Duration::ZERO);
        assert!(timing.intersection > Duration::ZERO);
        assert!(timing.shuffling > Duration::ZERO);
        assert!(timing.total >= timing.noise);
    }

    #[test]
    fn splitx_is_slower_than_privapprox_forwarding() {
        // The Figure 6 headline, in miniature: synchronized multi-
        // phase processing costs more than forward-only.
        let batch = synthetic_batch(20_000, 13, 2);
        // Warm up and take the best of 3 to de-noise CI machines.
        let mut splitx_best = Duration::MAX;
        let mut pa_best = Duration::MAX;
        for _ in 0..3 {
            splitx_best = splitx_best.min(run_splitx_epoch(&batch, 7).total);
            pa_best = pa_best.min(run_privapprox_epoch(&batch));
        }
        assert!(
            splitx_best > pa_best,
            "SplitX {splitx_best:?} should exceed PrivApprox {pa_best:?}"
        );
    }

    #[test]
    fn synthetic_batch_shape() {
        let batch = synthetic_batch(10, 13, 3);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|a| a.len() == 13));
        assert_ne!(batch[0], batch[1], "rows should differ");
    }

    #[test]
    fn timings_scale_with_batch_size() {
        let small = synthetic_batch(2_000, 13, 4);
        let large = synthetic_batch(40_000, 13, 4);
        let t_small = run_splitx_epoch(&small, 9).total;
        let t_large = run_splitx_epoch(&large, 9).total;
        assert!(
            t_large > t_small,
            "20× batch should take longer: {t_small:?} vs {t_large:?}"
        );
    }
}

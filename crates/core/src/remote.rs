//! Multi-process deployment: the `privapprox-node` child runtime and
//! the parent-side plumbing that connects it to
//! [`ShardedSystem`](crate::deploy::ShardedSystem) over loopback TCP.
//!
//! The in-process deployment runs proxies and aggregator shards as
//! supervised threads against one shared broker. This module lets the
//! *same* control flow drive them as spawned child processes instead:
//!
//! * each proxy / shard becomes a `privapprox-node` process with its
//!   own private broker, reached through one multiplexed framed
//!   connection (`crates/cluster` wire format, supervised by
//!   [`SupervisedLink`]);
//! * the parent keeps a thin *bridge thread* per child that looks
//!   exactly like the in-process `ProxyHandle` / `ShardHandle`
//!   worker threads, so respawn, epoch accounting and health roll-up
//!   are shared between both transports;
//! * the control plane (query registration, epoch close, health
//!   probes) is JSON over the workspace serde shims; floats travel as
//!   `f64::to_bits` so results stay **byte-identical** to the
//!   in-process path;
//! * the data plane is batched binary [`DataMsg`] records with
//!   cumulative acks, receive-side reassembly ([`Reassembly`]) and
//!   epoch [`Progress`](FrameKind::Progress) deltas feeding the
//!   parent's epoch-deadline ledger.
//!
//! Failure model: a dead child shows up as a dead link; when the
//! link's retry budget is exhausted the bridge thread panics with the
//! child's role attached, which lands in the existing crash log /
//! respawn machinery. Share records a dead child held are a *sampling
//! loss* — the epoch-deadline ledger closes the affected epochs
//! partially, exactly like a shard-thread panic in-process.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use privapprox_cluster::frontdoor::shake_hands;
use privapprox_cluster::wire::{encode_ack, encode_progress, Channel};
use privapprox_cluster::{
    decode_data_batch, encode_data_batch, AdmissionPolicy, BackoffPolicy, DataMsg, FaultPlan,
    FaultyTransport, Frame, FrameKind, FrontDoor, Hello, LinkStats, Reassembly, RejectReason,
    SupervisedLink, TcpTransport, TokenBucket, Transport,
};
use privapprox_rr::estimate::BucketEstimator;
use privapprox_stream::broker::{Broker, Consumer, Record, TopicWriter};
use privapprox_types::{
    AnswerSpec, BucketRule, ExecutionParams, ProxyId, Query, QueryId, Timestamp, Window,
    WindowSpec,
};
use serde::Value;

use crate::aggregator::{Aggregator, RawWindow};
use crate::deploy::DEAD_LETTER_TOPIC;
use crate::proxy::{inbound_topic, outbound_topic, Proxy};

/// How long a dial waits for the TCP connect to a child node.
pub(crate) const CONNECT_TIMEOUT: Duration = Duration::from_millis(1_000);
/// Read poll used on both ends: doubles as the idle park, so it stays
/// close to the in-process shard park (10 ms).
pub(crate) const LINK_READ_POLL: Duration = Duration::from_millis(5);
/// Hello/HelloAck round-trip budget.
pub(crate) const HANDSHAKE_TIMEOUT: Duration = Duration::from_millis(2_000);
/// Records packed into one data frame (one sequence number, one ack).
pub(crate) const BATCH_RECORDS: usize = 512;
/// Capacity of a node's local drop-oldest dead-letter quarantine.
const NODE_DEAD_LETTER_CAP: usize = 4_096;

// ---------------------------------------------------------------------------
// Control-plane codec (JSON over the serde shims).
//
// Floats are carried as `f64::to_bits` (`Value::UInt`), so estimates
// reconstruct bit-for-bit on the other side — the equivalence matrix
// pins the cross-process path byte-identical to in-process, and a JSON
// float round-trip (or a NaN) must not be able to break that.
// ---------------------------------------------------------------------------

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad ctrl payload: {what}"))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn vu(x: u64) -> Value {
    Value::UInt(x)
}

fn vf(x: f64) -> Value {
    Value::UInt(x.to_bits())
}

fn vs(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn need<'a>(v: &'a Value, key: &'static str) -> io::Result<&'a Value> {
    v.get(key).ok_or_else(|| corrupt(key))
}

fn need_u64(v: &Value, key: &'static str) -> io::Result<u64> {
    need(v, key)?.as_u64().ok_or_else(|| corrupt(key))
}

fn need_f64(v: &Value, key: &'static str) -> io::Result<f64> {
    Ok(f64::from_bits(need_u64(v, key)?))
}

fn need_str<'a>(v: &'a Value, key: &'static str) -> io::Result<&'a str> {
    need(v, key)?.as_str().ok_or_else(|| corrupt(key))
}

fn need_array<'a>(v: &'a Value, key: &'static str) -> io::Result<&'a [Value]> {
    need(v, key)?.as_array().ok_or_else(|| corrupt(key))
}

pub(crate) fn parse(payload: &[u8]) -> io::Result<Value> {
    let s = std::str::from_utf8(payload).map_err(|_| corrupt("utf8"))?;
    serde_json::from_str(s).map_err(|e| corrupt(&format!("json: {e:?}")))
}

pub(crate) fn render(v: &Value) -> Vec<u8> {
    serde_json::to_string(v).expect("ctrl json render").into_bytes()
}

pub(crate) fn query_to_value(q: &Query) -> Value {
    let rules: Vec<Value> = q
        .answer
        .buckets()
        .iter()
        .map(|r| match r {
            BucketRule::Range { lo, hi } => {
                obj(vec![("t", vs("range")), ("lo", vf(*lo)), ("hi", vf(*hi))])
            }
            BucketRule::Value(x) => obj(vec![("t", vs("value")), ("x", vf(*x))]),
            BucketRule::Text(s) => obj(vec![("t", vs("text")), ("x", vs(s))]),
            BucketRule::Like(s) => obj(vec![("t", vs("like")), ("x", vs(s))]),
        })
        .collect();
    obj(vec![
        ("id", vu(q.id.to_u64())),
        ("sql", vs(&q.sql)),
        ("freq", vu(q.frequency)),
        ("wsize", vu(q.window.size)),
        ("wslide", vu(q.window.slide)),
        ("sig", vu(q.signature)),
        ("answer", Value::Array(rules)),
    ])
}

pub(crate) fn query_from_value(v: &Value) -> io::Result<Query> {
    let mut rules = Vec::new();
    for r in need_array(v, "answer")? {
        rules.push(match need_str(r, "t")? {
            "range" => BucketRule::Range {
                lo: need_f64(r, "lo")?,
                hi: need_f64(r, "hi")?,
            },
            "value" => BucketRule::Value(need_f64(r, "x")?),
            "text" => BucketRule::Text(need_str(r, "x")?.to_string()),
            "like" => BucketRule::Like(need_str(r, "x")?.to_string()),
            _ => return Err(corrupt("rule tag")),
        });
    }
    if rules.is_empty() {
        return Err(corrupt("empty answer spec"));
    }
    Ok(Query {
        id: QueryId::from_u64(need_u64(v, "id")?),
        sql: need_str(v, "sql")?.to_string(),
        answer: AnswerSpec::new(rules),
        frequency: need_u64(v, "freq")?,
        window: WindowSpec {
            size: need_u64(v, "wsize")?,
            slide: need_u64(v, "wslide")?,
        },
        signature: need_u64(v, "sig")?,
    })
}

/// A control request the parent sends to a node.
pub(crate) enum NodeCtrl {
    /// Register a query on the node's aggregator.
    Register {
        /// The query definition.
        query: Box<Query>,
        /// Sampling / randomization parameters.
        params: ExecutionParams,
        /// Population size for scale-up.
        population: u64,
    },
    /// Close an epoch: drain, advance the watermark, report windows.
    Finish {
        /// Epoch tag (epoch-start milliseconds).
        epoch: u64,
        /// Watermark to advance to (exclusive window close bound).
        watermark: u64,
    },
    /// Health probe.
    Probe,
}

/// A control reply a node sends back to the parent.
pub(crate) enum NodeReply {
    /// Query registration acknowledged.
    Registered,
    /// Epoch closed; raw windows reconstructed losslessly.
    Closed {
        /// Which epoch this close answers (sanity check).
        epoch: u64,
        /// Answers this node decoded under the closed epoch's tag.
        decoded: u64,
        /// Cumulative busy time of the node's aggregator loop.
        busy: Duration,
        /// Closed windows with exact estimator state.
        windows: Vec<RawWindow>,
    },
    /// Health counters.
    Health {
        /// `(undecodable, unroutable, duplicates, expired_joins)`.
        quad: (u64, u64, u64, u64),
        /// Records quarantined to the node's dead-letter topic.
        dead_lettered: u64,
        /// Decoded answers dropped behind the watermark.
        late_answers: u64,
        /// Cumulative busy time.
        busy: Duration,
    },
}

pub(crate) fn encode_register(query: &Query, params: ExecutionParams, population: u64) -> Vec<u8> {
    render(&obj(vec![
        ("t", vs("register")),
        ("query", query_to_value(query)),
        ("s", vf(params.s)),
        ("p", vf(params.p)),
        ("q", vf(params.q)),
        ("population", vu(population)),
    ]))
}

pub(crate) fn encode_finish(epoch: u64, watermark: u64) -> Vec<u8> {
    render(&obj(vec![
        ("t", vs("finish")),
        ("epoch", vu(epoch)),
        ("watermark", vu(watermark)),
    ]))
}

pub(crate) fn encode_probe() -> Vec<u8> {
    render(&obj(vec![("t", vs("probe"))]))
}

pub(crate) fn decode_ctrl(payload: &[u8]) -> io::Result<NodeCtrl> {
    let v = parse(payload)?;
    Ok(match need_str(&v, "t")? {
        "register" => NodeCtrl::Register {
            query: Box::new(query_from_value(need(&v, "query")?)?),
            params: ExecutionParams {
                s: need_f64(&v, "s")?,
                p: need_f64(&v, "p")?,
                q: need_f64(&v, "q")?,
            },
            population: need_u64(&v, "population")?,
        },
        "finish" => NodeCtrl::Finish {
            epoch: need_u64(&v, "epoch")?,
            watermark: need_u64(&v, "watermark")?,
        },
        "probe" => NodeCtrl::Probe,
        _ => return Err(corrupt("ctrl tag")),
    })
}

pub(crate) fn encode_registered() -> Vec<u8> {
    render(&obj(vec![("t", vs("registered"))]))
}

/// Serializes a `Closed` reply. Takes the windows by mutable slice
/// because [`BucketEstimator::raw_parts`] folds sketch planes in
/// place before exposing the exact `u64` counts.
pub(crate) fn encode_closed(
    epoch: u64,
    decoded: u64,
    busy: Duration,
    windows: &mut [RawWindow],
) -> Vec<u8> {
    let wins: Vec<Value> = windows
        .iter_mut()
        .map(|w| {
            let (p, q, total, counts) = w.estimator.raw_parts();
            obj(vec![
                ("query", vu(w.query.to_u64())),
                ("start", vu(w.window.start.0)),
                ("end", vu(w.window.end.0)),
                ("p", vf(p)),
                ("q", vf(q)),
                ("total", vu(total)),
                ("counts", Value::Array(counts.iter().map(|c| vu(*c)).collect())),
            ])
        })
        .collect();
    render(&obj(vec![
        ("t", vs("closed")),
        ("epoch", vu(epoch)),
        ("decoded", vu(decoded)),
        ("busy_ns", vu(busy.as_nanos() as u64)),
        ("windows", Value::Array(wins)),
    ]))
}

pub(crate) fn encode_health(
    quad: (u64, u64, u64, u64),
    dead_lettered: u64,
    late_answers: u64,
    busy: Duration,
) -> Vec<u8> {
    render(&obj(vec![
        ("t", vs("health")),
        ("undecodable", vu(quad.0)),
        ("unroutable", vu(quad.1)),
        ("duplicates", vu(quad.2)),
        ("expired_joins", vu(quad.3)),
        ("dead_lettered", vu(dead_lettered)),
        ("late_answers", vu(late_answers)),
        ("busy_ns", vu(busy.as_nanos() as u64)),
    ]))
}

pub(crate) fn decode_reply(payload: &[u8]) -> io::Result<NodeReply> {
    let v = parse(payload)?;
    Ok(match need_str(&v, "t")? {
        "registered" => NodeReply::Registered,
        "closed" => {
            let mut windows = Vec::new();
            for w in need_array(&v, "windows")? {
                let counts: Vec<u64> = need_array(w, "counts")?
                    .iter()
                    .map(|c| c.as_u64().ok_or_else(|| corrupt("counts")))
                    .collect::<io::Result<_>>()?;
                windows.push(RawWindow {
                    query: QueryId::from_u64(need_u64(w, "query")?),
                    window: Window {
                        start: Timestamp(need_u64(w, "start")?),
                        end: Timestamp(need_u64(w, "end")?),
                    },
                    estimator: BucketEstimator::from_raw_parts(
                        need_f64(w, "p")?,
                        need_f64(w, "q")?,
                        need_u64(w, "total")?,
                        &counts,
                    ),
                });
            }
            NodeReply::Closed {
                epoch: need_u64(&v, "epoch")?,
                decoded: need_u64(&v, "decoded")?,
                busy: Duration::from_nanos(need_u64(&v, "busy_ns")?),
                windows,
            }
        }
        "health" => NodeReply::Health {
            quad: (
                need_u64(&v, "undecodable")?,
                need_u64(&v, "unroutable")?,
                need_u64(&v, "duplicates")?,
                need_u64(&v, "expired_joins")?,
            ),
            dead_lettered: need_u64(&v, "dead_lettered")?,
            late_answers: need_u64(&v, "late_answers")?,
            busy: Duration::from_nanos(need_u64(&v, "busy_ns")?),
        },
        _ => return Err(corrupt("reply tag")),
    })
}

// ---------------------------------------------------------------------------
// Parent side: spawning children and dialing supervised links.
// ---------------------------------------------------------------------------

/// A spawned `privapprox-node` child process.
///
/// Dropping the guard kills the child — a bridge-thread panic (or a
/// clean shutdown) can therefore never strand an orphan listener. The
/// child additionally watches its stdin (held open by this handle)
/// and exits on EOF, which covers the parent being killed outright.
pub(crate) struct NodeChild {
    child: Child,
    addr: SocketAddr,
}

impl NodeChild {
    /// The loopback address the child's front door is listening on.
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The child's OS process id.
    pub(crate) fn pid(&self) -> u32 {
        self.child.id()
    }
}

/// Cumulative on-CPU time of process `pid`, read from
/// `/proc/<pid>/schedstat` (whose first field is nanoseconds on-CPU —
/// no clock-tick conversion). `None` off Linux or once the process
/// has exited. The bench harness uses this to price child processes
/// as pipeline stages in the machine-rate bottleneck.
pub(crate) fn process_cpu(pid: u32) -> Option<Duration> {
    let text = std::fs::read_to_string(format!("/proc/{pid}/schedstat")).ok()?;
    let ns: u64 = text.split_whitespace().next()?.parse().ok()?;
    Some(Duration::from_nanos(ns))
}

impl Drop for NodeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns a `privapprox-node` child and waits for its `PORT <n>`
/// banner (printed after the front door is bound, so a successful
/// return means the child is dialable).
pub(crate) fn spawn_node(node: &Path, args: &[String]) -> io::Result<NodeChild> {
    let mut child = Command::new(node)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped child stdout");
    let mut line = String::new();
    let read = BufReader::new(stdout).read_line(&mut line);
    let port = match read {
        Ok(_) => line
            .trim()
            .strip_prefix("PORT ")
            .and_then(|p| p.parse::<u16>().ok()),
        Err(_) => None,
    };
    match port {
        Some(p) => Ok(NodeChild {
            child,
            addr: SocketAddr::from(([127, 0, 0, 1], p)),
        }),
        None => {
            let _ = child.kill();
            let _ = child.wait();
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("node did not announce a port (got {line:?})"),
            ))
        }
    }
}

/// Builds the supervised, optionally fault-injected link to a child
/// node. Each (re)dial performs the front-door handshake; admission
/// rejection surfaces as `ConnectionRefused` and burns a retry.
pub(crate) fn node_link(
    addr: SocketAddr,
    index: u32,
    faults: FaultPlan,
    stats: Arc<LinkStats>,
    seed: u64,
) -> SupervisedLink {
    let dial = Box::new(move || -> io::Result<Box<dyn Transport>> {
        let tcp = TcpTransport::connect(addr, CONNECT_TIMEOUT, LINK_READ_POLL)?;
        let mut t: Box<dyn Transport> = if faults.is_clean() {
            Box::new(tcp)
        } else {
            Box::new(FaultyTransport::new(tcp, faults))
        };
        shake_hands(
            t.as_mut(),
            Hello {
                channel: Channel::Data,
                index,
            },
            HANDSHAKE_TIMEOUT,
        )?;
        Ok(t)
    });
    SupervisedLink::new(dial, BackoffPolicy::default(), stats, seed)
}

/// Converts a polled broker record into its wire form. Key and value
/// buffers are shared with the record (refcount bumps, no copies) —
/// the only byte copy on the send path is the frame encode itself.
pub(crate) fn record_to_msg(stream: u32, partition: u32, rec: &Record) -> DataMsg {
    DataMsg {
        seq: 0,
        stream: stream as u8,
        partition,
        timestamp: rec.timestamp.0,
        key: rec.key.clone(),
        value: Arc::clone(&rec.value),
    }
}

/// Sends `msgs` over `link` as batched data frames ([`BATCH_RECORDS`]
/// records per frame). Returns the number of frames sent.
pub(crate) fn send_batched(link: &mut SupervisedLink, msgs: &[DataMsg]) -> io::Result<u64> {
    let mut frames = 0;
    for chunk in msgs.chunks(BATCH_RECORDS) {
        link.send(Frame::new(FrameKind::Data, encode_data_batch(chunk)))?;
        frames += 1;
    }
    if frames > 0 {
        link.flush()?;
    }
    Ok(frames)
}

// ---------------------------------------------------------------------------
// Child side: the `privapprox-node` runtime.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum NodeRole {
    Proxy,
    Shard,
}

struct NodeOpts {
    role: NodeRole,
    index: usize,
    partitions: usize,
    proxies: usize,
    confidence: f64,
    fuse: Option<u64>,
}

impl NodeOpts {
    fn parse(args: &[String]) -> io::Result<NodeOpts> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidInput, what.to_string());
        let role = match args.first().map(String::as_str) {
            Some("proxy") => NodeRole::Proxy,
            Some("shard") => NodeRole::Shard,
            _ => return Err(bad("usage: privapprox-node <proxy|shard> [flags]")),
        };
        let mut opts = NodeOpts {
            role,
            index: 0,
            partitions: 1,
            proxies: 2,
            confidence: 0.95,
            fuse: None,
        };
        let mut it = args[1..].iter();
        while let Some(flag) = it.next() {
            let val = it.next().ok_or_else(|| bad("flag missing value"))?;
            match flag.as_str() {
                "--index" => opts.index = val.parse().map_err(|_| bad("--index"))?,
                "--partitions" => opts.partitions = val.parse().map_err(|_| bad("--partitions"))?,
                "--proxies" => opts.proxies = val.parse().map_err(|_| bad("--proxies"))?,
                "--confidence-bits" => {
                    opts.confidence =
                        f64::from_bits(val.parse().map_err(|_| bad("--confidence-bits"))?)
                }
                "--fuse" => opts.fuse = Some(val.parse().map_err(|_| bad("--fuse"))?),
                _ => return Err(bad("unknown flag")),
            }
        }
        Ok(opts)
    }
}

/// Entry point for the `privapprox-node` binary: binds a front door,
/// prints `PORT <n>` on stdout, then serves its role until the parent
/// sends `Shutdown`, closes the child's stdin, or kills it. Returns
/// the process exit code.
pub fn node_main(args: &[String]) -> i32 {
    match run_node(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("privapprox-node: {e}");
            1
        }
    }
}

fn run_node(args: &[String]) -> io::Result<()> {
    let opts = NodeOpts::parse(args)?;
    let door = FrontDoor::bind(AdmissionPolicy::default())?;
    let port = door.local_addr()?.port();
    {
        let mut out = io::stdout().lock();
        writeln!(out, "PORT {port}")?;
        out.flush()?;
    }
    // Orphan defense: the parent holds our stdin open. EOF means the
    // parent is gone — exit instead of lingering as a stray listener.
    thread::spawn(|| {
        let mut sink = [0u8; 64];
        let mut stdin = io::stdin().lock();
        while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        std::process::exit(0);
    });
    match opts.role {
        NodeRole::Proxy => ProxyNode::new(&opts).run(&door),
        NodeRole::Shard => ShardNode::new(&opts).run(&door),
    }
}

/// Accept loop shared by both roles: serve one parent connection at a
/// time; a link error drops back to `accept` and waits for the
/// parent's supervised re-dial. Returns when `Shutdown` arrives.
fn accept_loop<F>(door: &FrontDoor, mut serve: F) -> io::Result<()>
where
    F: FnMut(&mut dyn Transport, &mut TokenBucket, usize) -> io::Result<bool>,
{
    loop {
        let mut admitted = match door.accept(HANDSHAKE_TIMEOUT) {
            Ok(a) => a,
            // A failed handshake (or a bounced connection) is the
            // peer's problem; keep the door open.
            Err(_) => continue,
        };
        admitted.transport.set_read_timeout(LINK_READ_POLL)?;
        let max_in_flight = admitted.max_in_flight;
        match serve(
            &mut admitted.transport,
            &mut admitted.bucket,
            max_in_flight,
        ) {
            Ok(true) => return Ok(()),
            // Connection lost: the parent will re-dial and replay.
            Ok(false) | Err(_) => continue,
        }
    }
}

/// Bumps the per-epoch decode tally (mirrors the in-process shard
/// loop's tee accounting).
fn bump(counts: &mut Vec<(u64, u64)>, epoch: u64, delta: u64) {
    match counts.iter_mut().find(|(e, _)| *e == epoch) {
        Some((_, n)) => *n += delta,
        None => counts.push((epoch, delta)),
    }
}

/// Sends `Progress` deltas for every epoch whose decode tally moved
/// since the last publication.
fn publish_progress(
    t: &mut dyn Transport,
    counts: &[(u64, u64)],
    published: &mut Vec<(u64, u64)>,
    wrote: &mut bool,
) -> io::Result<()> {
    for &(epoch, n) in counts {
        let prev = published
            .iter_mut()
            .find(|(e, _)| *e == epoch)
            .map(|entry| &mut entry.1);
        match prev {
            Some(p) if *p < n => {
                let delta = n - *p;
                *p = n;
                t.send(&Frame::new(FrameKind::Progress, encode_progress(epoch, delta)))?;
                *wrote = true;
            }
            Some(_) => {}
            None => {
                published.push((epoch, n));
                t.send(&Frame::new(FrameKind::Progress, encode_progress(epoch, n)))?;
                *wrote = true;
            }
        }
    }
    Ok(())
}

/// Admission checks for one inbound data frame. Returns `true` when
/// the frame should be processed, `false` when it was rejected (the
/// peer's resend window redelivers it later).
fn admit_data(
    t: &mut dyn Transport,
    bucket: &mut TokenBucket,
    max_in_flight: usize,
    seq: u64,
    floor: u64,
    records: usize,
    wrote: &mut bool,
) -> io::Result<bool> {
    if seq > floor + max_in_flight as u64 {
        t.send(&Frame::reject(RejectReason::Overloaded))?;
        *wrote = true;
        return Ok(false);
    }
    if !bucket.try_take(Instant::now(), records as f64) {
        t.send(&Frame::reject(RejectReason::RateLimited))?;
        *wrote = true;
        return Ok(false);
    }
    Ok(true)
}

/// Child runtime for one proxy: a private broker with the proxy's
/// in/out topics, the real [`Proxy`] relay in between, and the framed
/// connection to the parent on the outside.
struct ProxyNode {
    _broker: Broker,
    proxy: Proxy,
    in_writer: TopicWriter,
    egress: Consumer,
    reasm: Reassembly<Vec<DataMsg>>,
    acked: u64,
    next_seq: u64,
    deliverable: Vec<Vec<DataMsg>>,
    batch: Vec<(u32, u32, Record)>,
    out_msgs: Vec<DataMsg>,
}

impl ProxyNode {
    fn new(opts: &NodeOpts) -> ProxyNode {
        let id = ProxyId(opts.index as u16);
        let broker = Broker::new(opts.partitions);
        let inbound = inbound_topic(id);
        broker.create_topic(&inbound, opts.partitions);
        let proxy = Proxy::new(id, &broker);
        let in_writer = broker.writer(&inbound);
        let out_name = outbound_topic(id);
        let egress = broker.consumer("node-egress", &[&out_name]);
        ProxyNode {
            _broker: broker,
            proxy,
            in_writer,
            egress,
            reasm: Reassembly::new(),
            acked: 0,
            next_seq: 0,
            deliverable: Vec::new(),
            batch: Vec::new(),
            out_msgs: Vec::new(),
        }
    }

    fn run(mut self, door: &FrontDoor) -> io::Result<()> {
        accept_loop(door, |t, bucket, max_in_flight| {
            self.serve(t, bucket, max_in_flight)
        })
    }

    fn serve(
        &mut self,
        t: &mut dyn Transport,
        bucket: &mut TokenBucket,
        max_in_flight: usize,
    ) -> io::Result<bool> {
        // Fresh connection: re-announce the cumulative ack floor so
        // the parent can trim frames acked before the reconnect.
        self.acked = 0;
        loop {
            let mut wrote = false;
            let mut shutdown = false;
            // 1. Drain the socket (the read poll is the idle park).
            loop {
                match t.recv()? {
                    Some(f) => match f.kind {
                        FrameKind::Data => {
                            let mut msgs = Vec::new();
                            decode_data_batch(&f.payload, &mut msgs)?;
                            let seq = msgs[0].seq;
                            if admit_data(
                                t,
                                bucket,
                                max_in_flight,
                                seq,
                                self.reasm.ack_floor(),
                                msgs.len(),
                                &mut wrote,
                            )? {
                                self.reasm.accept(seq, msgs, &mut self.deliverable);
                            }
                        }
                        FrameKind::Shutdown => {
                            shutdown = true;
                            break;
                        }
                        _ => {}
                    },
                    None => break,
                }
            }
            // 2. Feed reassembled shares into the local inbound topic.
            if !self.deliverable.is_empty() {
                for batch in self.deliverable.drain(..) {
                    for m in batch {
                        self.in_writer.append_quiet(
                            m.partition as usize,
                            m.key,
                            m.value,
                            Timestamp(m.timestamp),
                        );
                    }
                }
                self.in_writer.notify();
            }
            // 3. Relay (partition-preserving, same code as in-process).
            self.proxy.pump();
            // 4. Ship relayed shares back to the parent.
            loop {
                let n = self.egress.poll_into(BATCH_RECORDS, &mut self.batch);
                if n == 0 {
                    break;
                }
                self.out_msgs.clear();
                for (stream, partition, rec) in self.batch.drain(..) {
                    self.out_msgs.push(record_to_msg(stream, partition, &rec));
                }
                self.next_seq += 1;
                self.out_msgs[0].seq = self.next_seq;
                t.send(&Frame::new(
                    FrameKind::Data,
                    encode_data_batch(&self.out_msgs),
                ))?;
                wrote = true;
            }
            // 5. Cumulative ack for everything delivered in order.
            let floor = self.reasm.ack_floor();
            if floor > self.acked {
                t.send(&Frame::new(FrameKind::DataAck, encode_ack(floor)))?;
                self.acked = floor;
                wrote = true;
            }
            if wrote {
                t.flush()?;
            }
            if shutdown {
                return Ok(true);
            }
        }
    }
}

/// Child runtime for one aggregator shard: a private broker carrying
/// every proxy's outbound topic, a sole-member [`Aggregator`] over
/// them, and the epoch close protocol spoken over the control frames.
struct ShardNode {
    _broker: Broker,
    agg: Aggregator,
    writers: Vec<TopicWriter>,
    reasm: Reassembly<Vec<DataMsg>>,
    acked: u64,
    counts: Vec<(u64, u64)>,
    published: Vec<(u64, u64)>,
    busy: Duration,
    fuse: Option<u64>,
    deliverable: Vec<Vec<DataMsg>>,
    raw: Vec<RawWindow>,
}

impl ShardNode {
    fn new(opts: &NodeOpts) -> ShardNode {
        let broker = Broker::new(opts.partitions);
        let names: Vec<String> = (0..opts.proxies)
            .map(|p| outbound_topic(ProxyId(p as u16)))
            .collect();
        for n in &names {
            broker.create_topic(n, opts.partitions);
        }
        broker.create_topic_drop_oldest(DEAD_LETTER_TOPIC, opts.partitions, NODE_DEAD_LETTER_CAP);
        let mut agg = Aggregator::new(&broker, opts.proxies, opts.confidence);
        agg.set_dead_letter(broker.writer(DEAD_LETTER_TOPIC));
        let writers = names.iter().map(|n| broker.writer(n)).collect();
        ShardNode {
            _broker: broker,
            agg,
            writers,
            reasm: Reassembly::new(),
            acked: 0,
            counts: Vec::new(),
            published: Vec::new(),
            busy: Duration::ZERO,
            fuse: opts.fuse,
            deliverable: Vec::new(),
            raw: Vec::new(),
        }
    }

    fn run(mut self, door: &FrontDoor) -> io::Result<()> {
        accept_loop(door, |t, bucket, max_in_flight| {
            self.serve(t, bucket, max_in_flight)
        })
    }

    /// Drains the aggregator, tallying decodes per epoch tag and
    /// burning the injected-fault fuse (a fuse of 0 panics, which
    /// kills the child process — the remote analogue of the
    /// in-process shard fault injection).
    fn pump(&mut self) -> u64 {
        let t0 = Instant::now();
        let counts = &mut self.counts;
        let fuse = &mut self.fuse;
        let n = self.agg.pump_with(|_q, ts, _mid, _answer| {
            bump(counts, ts.0, 1);
            if let Some(left) = fuse {
                assert!(*left > 0, "injected shard fault (fuse)");
                *left -= 1;
            }
        });
        self.busy += t0.elapsed();
        n
    }

    fn on_ctrl(&mut self, payload: &[u8], t: &mut dyn Transport, wrote: &mut bool) -> io::Result<()> {
        let reply = match decode_ctrl(payload)? {
            NodeCtrl::Register {
                query,
                params,
                population,
            } => {
                self.agg.register_query(&query, params, population);
                encode_registered()
            }
            NodeCtrl::Finish { epoch, watermark } => {
                // Drain whatever already sits in the local topics,
                // publish the resulting progress (so the parent's
                // ledger never runs behind the close), then cut the
                // windows.
                while self.pump() > 0 {}
                publish_progress(t, &self.counts, &mut self.published, wrote)?;
                let t0 = Instant::now();
                self.raw.clear();
                self.agg
                    .advance_watermark_raw_into(Timestamp(watermark), &mut self.raw);
                let decoded = self
                    .counts
                    .iter()
                    .find(|(e, _)| *e == epoch)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                self.busy += t0.elapsed();
                let reply = encode_closed(epoch, decoded, self.busy, &mut self.raw);
                // Estimators go home to the open-window pool; the
                // retired epoch tallies are dropped.
                for w in self.raw.drain(..) {
                    self.agg.release_estimator(w.estimator);
                }
                self.counts.retain(|(e, _)| *e > epoch);
                self.published.retain(|(e, _)| *e > epoch);
                reply
            }
            NodeCtrl::Probe => {
                while self.pump() > 0 {}
                publish_progress(t, &self.counts, &mut self.published, wrote)?;
                encode_health(
                    (
                        self.agg.undecodable(),
                        self.agg.unroutable(),
                        self.agg.duplicates(),
                        self.agg.expired_joins(),
                    ),
                    self.agg.dead_lettered(),
                    self.agg.late_events(),
                    self.busy,
                )
            }
        };
        t.send(&Frame::new(FrameKind::CtrlReply, reply))?;
        *wrote = true;
        Ok(())
    }

    fn serve(
        &mut self,
        t: &mut dyn Transport,
        bucket: &mut TokenBucket,
        max_in_flight: usize,
    ) -> io::Result<bool> {
        self.acked = 0;
        loop {
            let mut wrote = false;
            let mut shutdown = false;
            loop {
                match t.recv()? {
                    Some(f) => match f.kind {
                        FrameKind::Data => {
                            let mut msgs = Vec::new();
                            decode_data_batch(&f.payload, &mut msgs)?;
                            let seq = msgs[0].seq;
                            if admit_data(
                                t,
                                bucket,
                                max_in_flight,
                                seq,
                                self.reasm.ack_floor(),
                                msgs.len(),
                                &mut wrote,
                            )? {
                                self.reasm.accept(seq, msgs, &mut self.deliverable);
                            }
                        }
                        FrameKind::Ctrl => self.on_ctrl(&f.payload, t, &mut wrote)?,
                        FrameKind::Shutdown => {
                            shutdown = true;
                            break;
                        }
                        _ => {}
                    },
                    None => break,
                }
            }
            if !self.deliverable.is_empty() {
                for batch in self.deliverable.drain(..) {
                    for m in batch {
                        if let Some(w) = self.writers.get(m.stream as usize) {
                            w.append_quiet(
                                m.partition as usize,
                                m.key,
                                m.value,
                                Timestamp(m.timestamp),
                            );
                        }
                    }
                }
                for w in &self.writers {
                    w.notify();
                }
            }
            self.pump();
            publish_progress(t, &self.counts, &mut self.published, &mut wrote)?;
            let floor = self.reasm.ack_floor();
            if floor > self.acked {
                t.send(&Frame::new(FrameKind::DataAck, encode_ack(floor)))?;
                self.acked = floor;
                wrote = true;
            }
            if wrote {
                t.flush()?;
            }
            if shutdown {
                return Ok(true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privapprox_types::{AnalystId, QueryBuilder};

    fn sample_query() -> Query {
        QueryBuilder::new(QueryId::new(AnalystId(3), 7), "SELECT speed FROM cars")
            .answer(AnswerSpec::new(vec![
                BucketRule::Value(0.0),
                BucketRule::Range { lo: 0.0, hi: 100.0 },
                BucketRule::Range {
                    lo: 100.0,
                    hi: f64::INFINITY,
                },
                BucketRule::Text("n/a".into()),
                BucketRule::Like("err-%".into()),
            ]))
            .frequency(500)
            .window(2_000, 500)
            .sign_and_build(0xDEAD_BEEF)
    }

    #[test]
    fn register_roundtrip_is_exact() {
        let q = sample_query();
        let params = ExecutionParams {
            s: 0.6,
            p: 0.85,
            q: 0.3,
        };
        let enc = encode_register(&q, params, 12_345);
        match decode_ctrl(&enc).unwrap() {
            NodeCtrl::Register {
                query,
                params: p2,
                population,
            } => {
                assert_eq!(*query, q);
                assert_eq!(p2.s.to_bits(), params.s.to_bits());
                assert_eq!(p2.p.to_bits(), params.p.to_bits());
                assert_eq!(p2.q.to_bits(), params.q.to_bits());
                assert_eq!(population, 12_345);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn finish_and_probe_roundtrip() {
        match decode_ctrl(&encode_finish(4_000, 2_000)).unwrap() {
            NodeCtrl::Finish { epoch, watermark } => {
                assert_eq!((epoch, watermark), (4_000, 2_000));
            }
            _ => panic!("wrong variant"),
        }
        assert!(matches!(
            decode_ctrl(&encode_probe()).unwrap(),
            NodeCtrl::Probe
        ));
    }

    #[test]
    fn closed_reply_reconstructs_estimators_bit_for_bit() {
        use privapprox_types::BitVec;
        let mut est = BucketEstimator::new(5, 0.9, 0.55);
        let mut answer = BitVec::zeros(5);
        for i in 0..200u64 {
            answer.reset(5);
            answer.set((i % 5) as usize, true);
            answer.set(((i * 3) % 5) as usize, true);
            est.push(&answer);
        }
        let mut reference = est.clone();
        let mut windows = vec![RawWindow {
            query: QueryId::new(AnalystId(1), 2),
            window: Window {
                start: Timestamp(1_000),
                end: Timestamp(3_000),
            },
            estimator: est,
        }];
        let enc = encode_closed(7_000, 200, Duration::from_nanos(1_234), &mut windows);
        match decode_reply(&enc).unwrap() {
            NodeReply::Closed {
                epoch,
                decoded,
                busy,
                windows: got,
            } => {
                assert_eq!(epoch, 7_000);
                assert_eq!(decoded, 200);
                assert_eq!(busy, Duration::from_nanos(1_234));
                assert_eq!(got.len(), 1);
                let mut back = got.into_iter().next().unwrap();
                assert_eq!(back.query, QueryId::new(AnalystId(1), 2));
                assert_eq!(back.window.start, Timestamp(1_000));
                for (a, b) in back
                    .estimator
                    .estimates()
                    .iter()
                    .zip(reference.estimates().iter())
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "estimate drifted over the wire");
                }
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn health_roundtrip_and_corrupt_payloads() {
        let enc = encode_health((1, 2, 3, 4), 5, 6, Duration::from_nanos(7));
        match decode_reply(&enc).unwrap() {
            NodeReply::Health {
                quad,
                dead_lettered,
                late_answers,
                busy,
            } => {
                assert_eq!(quad, (1, 2, 3, 4));
                assert_eq!((dead_lettered, late_answers), (5, 6));
                assert_eq!(busy, Duration::from_nanos(7));
            }
            _ => panic!("wrong variant"),
        }
        assert!(decode_reply(b"not json").is_err());
        assert!(decode_reply(b"{\"t\":\"nope\"}").is_err());
        assert!(decode_ctrl(b"{\"t\":\"finish\"}").is_err());
    }

    #[test]
    fn node_opts_parse() {
        let args: Vec<String> = [
            "shard",
            "--index",
            "2",
            "--partitions",
            "8",
            "--proxies",
            "3",
            "--confidence-bits",
            &0.99f64.to_bits().to_string(),
            "--fuse",
            "10",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = NodeOpts::parse(&args).unwrap();
        assert!(opts.role == NodeRole::Shard);
        assert_eq!(opts.index, 2);
        assert_eq!(opts.partitions, 8);
        assert_eq!(opts.proxies, 3);
        assert_eq!(opts.confidence.to_bits(), 0.99f64.to_bits());
        assert_eq!(opts.fuse, Some(10));
        assert!(NodeOpts::parse(&["referee".to_string()]).is_err());
    }
}

//! An in-process PrivApprox deployment.
//!
//! [`System`] wires clients, proxies (≥ 2), the broker, the
//! aggregator, the initializer and the historical warehouse into one
//! harness with deterministic, epoch-at-a-time execution — the shape
//! every example, integration test and benchmark in this repository
//! drives. The dataflow per epoch is exactly the paper's Figure 3:
//! clients sample/answer/randomize/split; shares travel through the
//! per-proxy broker topics; proxies forward; the aggregator joins,
//! decodes, windows and estimates.

use crate::aggregator::{Aggregator, QueryResult};
use crate::client::{Client, ClientScratch};
use crate::error::CoreError;
use crate::historical::Warehouse;
use crate::initializer::Initializer;
use crate::proxy::{inbound_topic, Proxy};
use privapprox_crypto::xor::wire_key;
use privapprox_sql::{ColumnType, Schema, Value};
use privapprox_stream::broker::{Broker, BrokerStats, Producer};
use privapprox_types::ids::AnalystId;
use privapprox_types::{
    AnswerSpec, Budget, ClientId, ExecutionParams, ProxyId, Query, QueryBuilder, QueryId, Timestamp,
};
use std::collections::HashMap;

/// Static configuration of an in-process deployment.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of client devices.
    pub clients: u64,
    /// Number of proxies (≥ 2).
    pub proxies: u16,
    /// Master seed for all client RNGs.
    pub seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
    /// The analyst's signing key (shared with clients for
    /// verification).
    pub analyst_key: u64,
    /// Whether decoded answers are also stored for historical
    /// analytics (§3.3.1).
    pub enable_warehouse: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            clients: 100,
            proxies: 2,
            seed: 0,
            confidence: 0.95,
            analyst_key: 0x5EED_0000_CAFE,
            enable_warehouse: false,
        }
    }
}

/// Builder for [`System`].
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    config: SystemConfig,
}

impl SystemBuilder {
    /// Sets the client population size.
    pub fn clients(mut self, n: u64) -> Self {
        self.config.clients = n;
        self
    }

    /// Sets the number of proxies (≥ 2).
    pub fn proxies(mut self, n: u16) -> Self {
        self.config.proxies = n;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the reporting confidence level.
    pub fn confidence(mut self, c: f64) -> Self {
        self.config.confidence = c;
        self
    }

    /// Enables the historical warehouse.
    pub fn warehouse(mut self, enable: bool) -> Self {
        self.config.enable_warehouse = enable;
        self
    }

    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics on a zero-client population or fewer than two proxies.
    pub fn build(self) -> System {
        let c = self.config;
        assert!(c.clients > 0, "population must be positive");
        assert!(c.proxies >= 2, "PrivApprox requires at least two proxies");
        let broker = Broker::new(1);
        let proxies: Vec<Proxy> = (0..c.proxies)
            .map(|i| Proxy::new(ProxyId(i), &broker))
            .collect();
        let aggregator = Aggregator::new(&broker, c.proxies as usize, c.confidence);
        let clients = (0..c.clients)
            .map(|i| Client::new(ClientId(i), c.seed, c.analyst_key))
            .collect();
        let producer = broker.producer();
        System {
            config: c,
            broker,
            producer,
            clients,
            proxies,
            aggregator,
            queries: HashMap::new(),
            warehouses: HashMap::new(),
            initializer: Initializer::new(),
            now_ms: 0,
            next_serial: 1,
            pending: Vec::new(),
            scratch: ClientScratch::new(),
        }
    }
}

/// An in-process PrivApprox deployment.
pub struct System {
    config: SystemConfig,
    broker: Broker,
    producer: Producer,
    clients: Vec<Client>,
    proxies: Vec<Proxy>,
    aggregator: Aggregator,
    queries: HashMap<QueryId, (Query, ExecutionParams)>,
    warehouses: HashMap<QueryId, Warehouse>,
    initializer: Initializer,
    /// The shared event clock: every query's answers and watermarks
    /// advance along one timeline, mirroring real wall-clock epochs.
    now_ms: u64,
    next_serial: u32,
    /// Closed windows not yet returned by `run_epoch`.
    pending: Vec<QueryResult>,
    /// Reused buffers for every client's randomize → encode → split
    /// stages (each send copies the share once into the broker's
    /// shared immutable buffer, so one scratch serves the whole
    /// population). Sharing is safe for determinism because the
    /// randomize stage re-forks the scratch's bulk generator from
    /// each client's private RNG per call
    /// (`Randomizer::randomize_vec_forked`), so every client's answer
    /// is a pure function of its own RNG stream — which is also why
    /// `ShardedSystem`, with one scratch per worker thread, produces
    /// byte-identical results.
    scratch: ClientScratch,
}

impl System {
    /// Starts building a deployment.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Replaces the initializer (e.g. to set a privacy ceiling).
    pub fn set_initializer(&mut self, init: Initializer) {
        self.initializer = init;
    }

    /// Populates every client with a one-row table holding a numeric
    /// column: client `i` gets value `f(i)`. Creates the table as
    /// `(ts INT, <column> FLOAT)` with `ts = 0`.
    pub fn load_numeric_column<F: Fn(usize) -> f64>(&mut self, table: &str, column: &str, f: F) {
        for (i, client) in self.clients.iter_mut().enumerate() {
            let db = client.db_mut();
            db.create_table(
                table,
                Schema::new(vec![("ts", ColumnType::Int), (column, ColumnType::Float)]),
            );
            db.insert(table, vec![Value::Int(0), Value::Float(f(i))])
                .expect("schema arity");
        }
    }

    /// Populates every client with arbitrary rows: `f(i)` returns the
    /// rows for client `i` under the given schema.
    pub fn load_rows<F: Fn(usize) -> Vec<Vec<Value>>>(
        &mut self,
        table: &str,
        schema: Schema,
        f: F,
    ) {
        for (i, client) in self.clients.iter_mut().enumerate() {
            let db = client.db_mut();
            db.create_table(table, schema.clone());
            for row in f(i) {
                db.insert(table, row).expect("schema arity");
            }
        }
    }

    /// Direct mutable access to one client (failure injection, tests).
    pub fn client_mut(&mut self, i: usize) -> &mut Client {
        &mut self.clients[i]
    }

    /// Opens an analyst session for query submission.
    pub fn analyst(&mut self) -> AnalystSession<'_> {
        AnalystSession {
            system: self,
            sql: String::new(),
            buckets: None,
            budget: Budget::default_accuracy(),
            window: None,
            explicit_params: None,
        }
    }

    /// The execution parameters currently assigned to a query.
    pub fn params(&self, id: QueryId) -> Option<ExecutionParams> {
        self.queries.get(&id).map(|(_, p)| *p)
    }

    /// Overrides a query's execution parameters (used by the feedback
    /// loop and parameter-sweep benchmarks).
    pub fn set_params(&mut self, id: QueryId, params: ExecutionParams) -> Result<(), CoreError> {
        let (query, slot) = match self.queries.get_mut(&id) {
            Some((q, p)) => (q.clone(), p),
            None => return Err(CoreError::UnknownQuery),
        };
        *slot = params;
        self.aggregator
            .register_query(&query, params, self.config.clients);
        Ok(())
    }

    /// Runs one epoch of a query: every client flips its coin,
    /// participants answer, shares flow through the proxies, and the
    /// epoch's window is closed and estimated.
    ///
    /// Returns the epoch's windowed result.
    pub fn run_epoch(&mut self, query: &Query) -> Result<QueryResult, CoreError> {
        let (_, params) = self
            .queries
            .get(&query.id)
            .copied_params(query.id)
            .ok_or(CoreError::UnknownQuery)?;
        let window_size = query.window.size;
        // Align the epoch to this query's window grid on the shared
        // event clock, so the emitted window is exactly one epoch.
        let epoch_start = self.now_ms.div_ceil(window_size) * window_size;
        let ts = Timestamp(epoch_start + window_size / 2);
        let watermark = Timestamp(epoch_start + window_size);
        self.now_ms = watermark.0;

        // Clients answer and transmit shares to their proxies.
        let n_proxies = self.config.proxies as usize;
        for client in &mut self.clients {
            if let Some(shares) =
                client.answer_query_into(query, &params, n_proxies, &mut self.scratch)?
            {
                for (pi, share) in shares.iter().enumerate() {
                    // One copy of the share into a shared immutable
                    // buffer; every downstream hop (proxy poll,
                    // forward, aggregator poll) shares it by refcount.
                    self.producer.send(
                        &inbound_topic(ProxyId(pi as u16)),
                        Some(wire_key(query.id, share.mid).to_vec()),
                        &share.payload[..],
                        ts,
                    );
                }
            }
        }
        // Proxies forward; the aggregator joins/decodes/windows.
        for proxy in &mut self.proxies {
            proxy.pump();
        }
        let warehouses = &mut self.warehouses;
        self.aggregator.pump_with(|qid, ts, mid, answer| {
            if let Some(w) = warehouses.get_mut(&qid) {
                w.append(ts, mid, answer.clone());
            }
        });
        // Close the epoch's window (appends into the pending buffer
        // without allocating once the aggregator's pools are warm).
        self.aggregator
            .advance_watermark_into(watermark, &mut self.pending);
        // Return the newest result for this query.
        let idx = self
            .pending
            .iter()
            .rposition(|r| r.query == query.id)
            .ok_or(CoreError::UnknownQuery)?;
        Ok(self.pending.remove(idx))
    }

    /// Drains any additional closed windows (sliding-window queries
    /// emit several per epoch).
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        std::mem::take(&mut self.pending)
    }

    /// Broker traffic counters (Figure 9a).
    pub fn broker_stats(&self) -> BrokerStats {
        self.broker.stats()
    }

    /// The historical warehouse for a query, when enabled.
    pub fn warehouse(&self, id: QueryId) -> Option<&Warehouse> {
        self.warehouses.get(&id)
    }

    /// Aggregator health counters: `(undecodable, unroutable,
    /// duplicates, expired_joins)`.
    pub fn aggregator_health(&self) -> (u64, u64, u64, u64) {
        (
            self.aggregator.undecodable(),
            self.aggregator.unroutable(),
            self.aggregator.duplicates(),
            self.aggregator.expired_joins(),
        )
    }
}

/// Small helper trait so `run_epoch` can copy params out of the map
/// without fighting the borrow checker.
trait CopiedParams {
    fn copied_params(&self, id: QueryId) -> Option<(QueryId, ExecutionParams)>;
}

impl CopiedParams for Option<&(Query, ExecutionParams)> {
    fn copied_params(&self, id: QueryId) -> Option<(QueryId, ExecutionParams)> {
        self.map(|(_, p)| (id, *p))
    }
}

/// A fluent analyst session: SQL → buckets → budget → submit.
pub struct AnalystSession<'a> {
    system: &'a mut System,
    sql: String,
    buckets: Option<AnswerSpec>,
    budget: Budget,
    window: Option<(u64, u64)>,
    explicit_params: Option<ExecutionParams>,
}

impl<'a> AnalystSession<'a> {
    /// Sets the SQL text.
    pub fn query(mut self, sql: impl Into<String>) -> Self {
        self.sql = sql.into();
        self
    }

    /// Sets the answer format `A[n]`.
    pub fn buckets(mut self, spec: AnswerSpec) -> Self {
        self.buckets = Some(spec);
        self
    }

    /// Sets the execution budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets sliding-window parameters `(w, δ)` in milliseconds.
    pub fn window(mut self, size: u64, slide: u64) -> Self {
        self.window = Some((size, slide));
        self
    }

    /// Bypasses the initializer with explicit `(s, p, q)` — used by
    /// the parameter-sweep experiments.
    pub fn params(mut self, params: ExecutionParams) -> Self {
        self.explicit_params = Some(params);
        self
    }

    /// Signs, registers and distributes the query; returns it.
    pub fn submit(self) -> Result<Query, CoreError> {
        let spec = self.buckets.ok_or_else(|| {
            CoreError::InfeasibleBudget("query needs an answer bucket spec".into())
        })?;
        let (w, d) = self.window.unwrap_or((60_000, 60_000));
        let sys = self.system;
        let id = QueryId::new(AnalystId(1), sys.next_serial);
        sys.next_serial += 1;
        let query = QueryBuilder::new(id, self.sql)
            .answer(spec)
            .window(w, d)
            .sign_and_build(sys.config.analyst_key);
        let params = match self.explicit_params {
            Some(p) => p,
            None => sys.initializer.derive(&self.budget, sys.config.clients)?,
        };
        sys.aggregator
            .register_query(&query, params, sys.config.clients);
        if sys.config.enable_warehouse {
            sys.warehouses.insert(
                id,
                Warehouse::new(id, query.answer.len(), params, sys.config.clients),
            );
        }
        sys.queries.insert(id, (query.clone(), params));
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_spec() -> AnswerSpec {
        AnswerSpec::ranges_with_overflow(0.0, 110.0, 11)
    }

    #[test]
    fn end_to_end_exact_mode() {
        let mut system = System::builder().clients(200).proxies(2).seed(1).build();
        system.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 200);
        assert_eq!(result.population, 200);
        // 200 clients, speeds i % 110: speeds 0–89 appear twice,
        // 90–109 once → buckets 0–8 hold 20, buckets 9–10 hold 10.
        let total: f64 = result.buckets.iter().map(|b| b.estimate).sum();
        assert_eq!(total, 200.0);
        for b in 0..9 {
            assert_eq!(result.buckets[b].estimate, 20.0, "bucket {b}");
        }
        assert_eq!(result.buckets[9].estimate, 10.0);
        assert_eq!(result.buckets[10].estimate, 10.0);
        assert_eq!(result.buckets[11].estimate, 0.0);
        let (undec, unrout, dup, expired) = system.aggregator_health();
        assert_eq!((undec, unrout, dup, expired), (0, 0, 0, 0));
    }

    #[test]
    fn end_to_end_private_mode_estimates() {
        let mut system = System::builder().clients(3_000).proxies(2).seed(2).build();
        // Bimodal speeds: 60 % at 15 mph, 40 % at 55 mph.
        system.load_numeric_column("vehicle", "speed", |i| if i % 10 < 6 { 15.0 } else { 55.0 });
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(0.9, 0.9, 0.6))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        // Bucket 1 = [10,20): truth 1800; bucket 5 = [50,60): 1200.
        let b1 = result.buckets[1].estimate;
        let b5 = result.buckets[5].estimate;
        assert!((b1 - 1_800.0).abs() < 250.0, "bucket1 {b1}");
        assert!((b5 - 1_200.0).abs() < 250.0, "bucket5 {b5}");
        assert!(result.buckets[1].ci.contains(1_800.0));
        assert!(result.privacy.eps_zk.is_finite());
        assert!(result.sample_size < 3_000, "sampling really happened");
    }

    #[test]
    fn budget_driven_submission_derives_params() {
        let mut system = System::builder().clients(10_000).proxies(2).seed(3).build();
        system.load_numeric_column("vehicle", "speed", |i| (i % 100) as f64);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .budget(Budget::Resources {
                max_answers_per_window: 2_500,
            })
            .submit()
            .unwrap();
        let params = system.params(query.id).unwrap();
        assert!((params.s - 0.25).abs() < 1e-9, "s = {}", params.s);
        let result = system.run_epoch(&query).unwrap();
        assert!(
            (result.sample_size as f64 - 2_500.0).abs() < 200.0,
            "sample {}",
            result.sample_size
        );
    }

    #[test]
    fn epochs_advance_windows() {
        let mut system = System::builder().clients(50).proxies(2).seed(4).build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let r1 = system.run_epoch(&query).unwrap();
        let r2 = system.run_epoch(&query).unwrap();
        assert!(r2.window.start > r1.window.start);
        assert_eq!(r1.sample_size, 50);
        assert_eq!(r2.sample_size, 50);
    }

    #[test]
    fn warehouse_accumulates_when_enabled() {
        let mut system = System::builder()
            .clients(100)
            .proxies(2)
            .seed(5)
            .warehouse(true)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 0.9, 0.6))
            .submit()
            .unwrap();
        system.run_epoch(&query).unwrap();
        system.run_epoch(&query).unwrap();
        let w = system.warehouse(query.id).expect("warehouse enabled");
        assert_eq!(w.len(), 200, "two epochs of 100 answers");
    }

    #[test]
    fn three_proxy_deployments_work() {
        let mut system = System::builder().clients(100).proxies(3).seed(6).build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 100);
        assert_eq!(result.buckets[1].estimate, 100.0);
    }

    #[test]
    fn traffic_shrinks_with_sampling() {
        let run = |s: f64| {
            let mut system = System::builder().clients(2_000).proxies(2).seed(7).build();
            system.load_numeric_column("vehicle", "speed", |_| 15.0);
            let query = system
                .analyst()
                .query("SELECT speed FROM vehicle")
                .buckets(speed_spec())
                .params(ExecutionParams::checked(s, 0.9, 0.6))
                .submit()
                .unwrap();
            system.run_epoch(&query).unwrap();
            system.broker_stats().bytes_in
        };
        let full = run(1.0);
        let sampled = run(0.6);
        let ratio = full as f64 / sampled as f64;
        // The paper's Figure 9a: s = 0.6 cuts traffic by ≈1.6×.
        assert!((ratio - 1.0 / 0.6).abs() < 0.15, "traffic ratio {ratio}");
    }

    #[test]
    fn unknown_query_is_rejected() {
        let mut system = System::builder().clients(10).proxies(2).seed(8).build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let foreign =
            QueryBuilder::new(QueryId::new(AnalystId(1), 999), "SELECT speed FROM vehicle")
                .answer(speed_spec())
                .sign_and_build(system.config().analyst_key);
        assert_eq!(
            system.run_epoch(&foreign).unwrap_err(),
            CoreError::UnknownQuery
        );
    }

    #[test]
    fn submit_without_buckets_fails() {
        let mut system = System::builder().clients(10).proxies(2).seed(9).build();
        let err = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .submit()
            .unwrap_err();
        assert!(matches!(err, CoreError::InfeasibleBudget(_)));
    }
}

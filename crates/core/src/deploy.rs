//! The threaded, sharded deployment runtime — **overlapped epochs**.
//!
//! [`System`](crate::System) is the deterministic *epoch-at-a-time*
//! harness: one thread walks clients → proxies → aggregator in
//! sequence, so every BENCH number it produces is per-core.
//! [`ShardedSystem`] is the same deployment run the way the paper
//! runs it (§5): **N proxy relay threads** and **M aggregator
//! shards** over *partitioned* broker topics, fed by a pool of client
//! worker threads — and, since the pipelined runtime, the stages run
//! **continuously and concurrently** instead of lock-stepping behind
//! per-epoch barriers.
//!
//! # Topology and partition affinity
//!
//! ```text
//! worker threads ──send_to(partition π(c))──► proxy-i-in[π(c)]   (i = 0..n)
//! proxy thread i ──partition-preserving─────► proxy-i-out[π(c)]   (free-running)
//! shard thread s (owns {p : p % M == s}) ───► join ⟂ decode ⟂ window (free-running)
//! main ──Close(epoch) → merge counts────────► finalize → QueryResult
//! ```
//!
//! Every client `c` is pinned to partition `π(c) = c mod P`; all `n`
//! of its XOR shares travel in partition `π(c)` of their respective
//! proxy topics (proxies forward partition-preserving), and the
//! broker's consumer-group assignment hands partition `π(c)` of
//! *every* proxy-out topic to the same shard — so each MID's shares
//! join **shard-locally**, with no cross-shard traffic before the
//! window merge.
//!
//! # The overlapped pipeline
//!
//! The pre-pipelined runtime ran a global three-phase barrier per
//! epoch (all workers answer → all proxies drain → all shards drain),
//! so the epoch's critical path *summed* the stage maxima. Now:
//!
//! * **proxy threads free-run**: they forward whatever arrives,
//!   whenever it arrives, with no per-epoch commands at all — a relay
//!   has no epoch state to synchronize;
//! * **shard threads free-run**: they continuously join/decode/window
//!   records, counting completed decodes **per epoch tag** (the
//!   answer timestamp, which identifies its epoch); an epoch is
//!   closed by a `Close{epoch, expect, watermark}` control message,
//!   which the shard satisfies as soon as its in-flight accounting
//!   shows all `expect` answers tagged with that epoch have been
//!   decoded — records of *later* epochs may already be flowing
//!   through the same shard and are simply accounted under their own
//!   tags;
//! * **the main thread pipelines epochs**: [`ShardedSystem::submit_epoch`]
//!   dispatches epoch `k+1` to the workers without waiting for epoch
//!   `k` to drain, up to the configured
//!   [pipeline depth](ShardedSystemBuilder::pipeline_depth); worker
//!   replies, shard closes and the cross-shard merge happen when the
//!   epoch *completes* (lazily, oldest first).
//!
//! Per-partition **backpressure** (see
//! [`ShardedSystemBuilder::partition_capacity`]) bounds how far a
//! fast stage can run ahead of a slow one in records, on top of the
//! epoch-granular bound the pipeline depth provides — epoch `k+1`'s
//! workers park in the broker instead of flooding a shard still
//! draining epoch `k`.
//!
//! Why the epoch tag is sufficient: within one partition the broker
//! is FIFO **per producer**, but epoch `k+1` shares from one worker
//! may overtake epoch `k` shares from another, so a simple cumulative
//! message count cannot tell a shard when epoch `k` is fully drained.
//! The timestamp does: every answer of an epoch carries that epoch's
//! event timestamp, the timestamps are strictly increasing across
//! submitted epochs, and the per-tag counters are exact regardless of
//! interleaving. Closing epochs in submission order then guarantees
//! every window the watermark sweeps is complete: sliding windows
//! only ever close once every epoch overlapping them has been
//! accounted (earlier epochs closed earlier, later epochs only live
//! in windows ending after this watermark).
//!
//! # Determinism and equivalence
//!
//! `ShardedSystem` produces **byte-identical** `QueryResult`s to
//! `System` for the same configuration, seed for seed, at any shard
//! count *and any pipeline depth*. Four properties compose into that
//! guarantee:
//!
//! 1. every client's answer is a pure function of its own RNG stream
//!    ([`Randomizer::randomize_vec_forked`](privapprox_rr::randomize::Randomizer::randomize_vec_forked)
//!    re-forks the bulk generator per call), so processing order,
//!    scratch sharing and epoch overlap are irrelevant;
//! 2. window accumulation is commutative counting, so the partition
//!    of answers across shards — and the interleaving of epochs
//!    within a shard — is irrelevant;
//! 3. watermarks advance in epoch order and only after the epoch's
//!    in-flight accounting settles, so every closed window saw
//!    exactly the answers the single-threaded run folds; and
//! 4. estimation ([`finalize_window_into`]) is a pure function of the
//!    merged counts, so summing shard-local counts and finalizing
//!    once equals finalizing a single aggregator's counts.
//!
//! The equivalence is pinned by `tests/sharded_equivalence.rs` across
//! seeds × bucket widths × proxies × shards × **pipeline depths**,
//! including a straggler-shard stress where one shard is artificially
//! delayed while the workers run epochs ahead.
//!
//! # Steady-state allocation
//!
//! Each shard keeps the single-aggregator guarantees: decode scratch,
//! pooled estimators, recycled result shells, allocation-free broker
//! polls. The per-epoch in-flight accounting is a bounded scan list
//! (one entry per epoch concurrently in flight), so the overlapped
//! steady state performs no per-message heap allocation either
//! (extended proof in `crates/core/tests/alloc_steady_state.rs`).
//! Per-epoch *control* traffic (channel messages, reply vectors) is
//! deliberately outside that budget — it is O(threads) per epoch,
//! not O(messages).

use crate::aggregator::{finalize_window_into, Aggregator, QueryResult, RawWindow};
use crate::client::{Client, ClientScratch};
use crate::error::CoreError;
use crate::initializer::Initializer;
use crate::proxy::{inbound_topic, outbound_topic, Proxy};
use privapprox_cluster::DeploymentShape;
use privapprox_rr::estimate::BucketEstimator;
use privapprox_sql::{ColumnType, Schema, Value};
use privapprox_stream::broker::{Broker, BrokerStats, TopicWriter};
use privapprox_types::ids::AnalystId;
use privapprox_types::{
    AnswerSpec, Budget, ClientId, ExecutionParams, ProxyId, Query, QueryBuilder, QueryId,
    Timestamp, Window,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a shard waits for an epoch's expected in-flight records
/// before closing with what it has (making the main thread's
/// completeness assert fire with an exact count) — a liveness
/// backstop, not a tuning knob: under correct operation every close
/// is satisfied as soon as the pipeline catches up.
const DRAIN_DEADLINE: Duration = Duration::from_secs(60);

/// Park granularity of a free-running shard thread between control
/// checks (condvar park inside `pump_blocking_with`; close commands
/// additionally wake the park through the broker so command latency
/// is a wakeup, not a timeout).
const SHARD_PARK: Duration = Duration::from_millis(10);

/// Park granularity of a free-running proxy thread (shutdown latency
/// bound; data wakes the park immediately).
const PROXY_PARK: Duration = Duration::from_millis(50);

/// CPU time consumed by the calling thread so far (Linux:
/// `CLOCK_THREAD_CPUTIME_ID`; elsewhere falls back to wall time,
/// which over-counts blocked waits).
///
/// This is the measurement behind "machine-level" throughput claims:
/// on an unloaded multi-core machine a pinned thread's CPU time
/// equals its wall time, while on an oversubscribed box (CI
/// containers) it still reports what the thread *would* sustain on a
/// dedicated core. For the overlapped pipeline the machine rate is
/// `messages / max over all threads of CPU time` — the wall-clock of
/// the bottleneck stage when every thread has its own core —
/// documented for BENCH_5 in `docs/benchmarks.md`.
pub fn thread_busy_time() -> Duration {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: std links libc on Linux; Timespec matches the ABI
        // layout of struct timespec on 64-bit Linux.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32);
        }
    }
    wall_clock_fallback()
}

/// Wall-clock fallback for [`thread_busy_time`] on platforms without
/// a per-thread CPU clock.
fn wall_clock_fallback() -> Duration {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// Static configuration of a threaded sharded deployment.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of client devices.
    pub clients: u64,
    /// Number of proxies = relay threads (≥ 2).
    pub proxies: u16,
    /// Number of aggregator shards (≥ 1).
    pub shards: usize,
    /// Number of client worker threads (≥ 1).
    pub workers: usize,
    /// Partitions per broker topic; `0` means "same as `shards`".
    pub partitions: usize,
    /// Maximum epochs concurrently in flight (≥ 1); see
    /// [`ShardedSystemBuilder::pipeline_depth`].
    pub pipeline_depth: usize,
    /// Per-partition broker backlog bound (`0` = auto-sized to
    /// pipeline-depth + 1 epochs' worth of records); see
    /// [`ShardedSystemBuilder::partition_capacity`].
    pub partition_capacity: usize,
    /// Artificial per-close delay injected into one shard thread
    /// (test/stress hook); see [`ShardedSystemBuilder::straggler`].
    pub straggler: Option<(usize, Duration)>,
    /// Master seed for all client RNGs (same semantics as
    /// [`SystemConfig::seed`](crate::SystemConfig)).
    pub seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
    /// The analyst's signing key.
    pub analyst_key: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            clients: 100,
            proxies: 2,
            shards: 2,
            workers: 2,
            partitions: 0,
            pipeline_depth: 2,
            partition_capacity: 0,
            straggler: None,
            seed: 0,
            confidence: 0.95,
            analyst_key: 0x5EED_0000_CAFE,
        }
    }
}

impl ShardedConfig {
    /// Effective partition count (`partitions`, defaulting to
    /// `shards`).
    pub fn effective_partitions(&self) -> usize {
        if self.partitions == 0 {
            self.shards
        } else {
            self.partitions
        }
    }
}

/// Builder for [`ShardedSystem`].
#[derive(Debug, Clone, Default)]
pub struct ShardedSystemBuilder {
    config: ShardedConfig,
}

impl ShardedSystemBuilder {
    /// Sets the client population size.
    pub fn clients(mut self, n: u64) -> Self {
        self.config.clients = n;
        self
    }

    /// Sets the number of proxies / relay threads (≥ 2).
    pub fn proxies(mut self, n: u16) -> Self {
        self.config.proxies = n;
        self
    }

    /// Sets the number of aggregator shards (≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Sets the number of client worker threads (≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Sets the broker partition count (defaults to the shard count;
    /// may exceed it, in which case shards own several partitions
    /// each).
    pub fn partitions(mut self, n: usize) -> Self {
        self.config.partitions = n;
        self
    }

    /// Sets the **pipeline depth**: how many epochs may be in flight
    /// at once through [`ShardedSystem::submit_epoch`] before the
    /// oldest is completed. Depth 1 degenerates to epoch-at-a-time
    /// submission; the default of 2 lets workers populate epoch `k+1`
    /// while the shards drain epoch `k`. [`ShardedSystem::run_epoch`]
    /// always flushes, so its per-call semantics are depth-invariant.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = depth.max(1);
        self
    }

    /// Bounds every broker partition's backlog to `records` in-flight
    /// records: producers park when a partition is full, and consumed
    /// records are trimmed off the bounded log. This is the
    /// record-granular backpressure under the epoch-granular pipeline
    /// depth: a future epoch's workers cannot flood a shard that is
    /// still draining. Deployment topics are **always** bounded —
    /// `0` (the default) auto-sizes the bound to pipeline-depth + 1
    /// epochs' worth of records per partition.
    pub fn partition_capacity(mut self, records: usize) -> Self {
        self.config.partition_capacity = records;
        self
    }

    /// Injects an artificial delay before every epoch close on shard
    /// `shard` — the straggler-shard stress hook: workers run epochs
    /// ahead (up to the pipeline depth) while the straggler lags, and
    /// results must still be byte-identical to the single-threaded
    /// harness.
    pub fn straggler(mut self, shard: usize, delay: Duration) -> Self {
        self.config.straggler = Some((shard, delay));
        self
    }

    /// Adopts thread/shard counts from a cluster-tier mapping — the
    /// bridge from the simulator's `ClusterSpec`s to the real
    /// runtime.
    pub fn shape(mut self, shape: DeploymentShape) -> Self {
        self.config.proxies = shape.proxies;
        self.config.shards = shape.shards;
        self.config.workers = shape.workers;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the reporting confidence level.
    pub fn confidence(mut self, c: f64) -> Self {
        self.config.confidence = c;
        self
    }

    /// Builds and starts the deployment: creates the (optionally
    /// bounded) topics, spawns the worker, proxy and shard threads
    /// and settles consumer-group membership before any record flows
    /// (so partition assignment is fixed for the run).
    ///
    /// # Panics
    ///
    /// Panics on a zero-client population, fewer than two proxies, or
    /// zero shards/workers.
    pub fn build(self) -> ShardedSystem {
        let c = self.config;
        assert!(c.clients > 0, "population must be positive");
        assert!(c.proxies >= 2, "PrivApprox requires at least two proxies");
        assert!(c.shards >= 1, "need at least one aggregator shard");
        assert!(c.workers >= 1, "need at least one client worker");
        if let Some((s, _)) = c.straggler {
            assert!(s < c.shards, "straggler shard {s} out of range");
        }
        let partitions = c.effective_partitions();
        let broker = Broker::new(partitions);
        // Every deployment topic is bounded: an explicit capacity, or
        // the auto-bound of pipeline-depth + 1 epochs' worth of
        // records per partition. Bounded partitions give the pipeline
        // its record-granular backpressure AND log trimming — consumed
        // records drop off the front, so the broker's memory (and the
        // allocator's page-fault rate) stays flat however many epochs
        // stream through.
        let capacity = if c.partition_capacity > 0 {
            c.partition_capacity
        } else {
            ((c.pipeline_depth as u64 + 1) * c.clients.div_ceil(partitions as u64)).max(64)
                as usize
        };
        // Bounded topics must exist (with their capacity) before the
        // proxies/shards auto-create them unbounded.
        for i in 0..c.proxies {
            let id = ProxyId(i);
            broker.create_topic_with_capacity(&inbound_topic(id), partitions, capacity);
            broker.create_topic_with_capacity(&outbound_topic(id), partitions, capacity);
        }

        // Order matters: create every proxy and shard consumer *now*,
        // on this thread, so group membership — and therefore the
        // partition → shard mapping — is complete and deterministic
        // before the first record is produced. (A shard joining the
        // "aggregator" group after a sibling already polled would
        // strand shares across joiners.)
        let proxies: Vec<Proxy> = (0..c.proxies)
            .map(|i| Proxy::new(ProxyId(i), &broker))
            .collect();
        let shards_instances: Vec<Aggregator> = (0..c.shards)
            .map(|_| Aggregator::new(&broker, c.proxies as usize, c.confidence))
            .collect();

        let workers = (0..c.workers)
            .map(|w| WorkerHandle::spawn(w, &c, partitions, &broker))
            .collect();
        let proxy_threads = proxies.into_iter().map(ProxyHandle::spawn).collect();
        let shard_threads = shards_instances
            .into_iter()
            .enumerate()
            .map(|(s, agg)| {
                let straggle = match c.straggler {
                    Some((idx, delay)) if idx == s => Some(delay),
                    _ => None,
                };
                ShardHandle::spawn(s, agg, straggle)
            })
            .collect();

        ShardedSystem {
            config: c,
            partitions,
            broker,
            workers,
            proxies: proxy_threads,
            shards: shard_threads,
            queries: HashMap::new(),
            initializer: Initializer::new(),
            now_ms: 0,
            next_serial: 1,
            in_flight: VecDeque::new(),
            pending: Vec::new(),
            spare_shells: Vec::new(),
            pending_recycle: vec![Vec::new(); c.shards],
            busy: BusyProfile::new(c.workers, c.proxies as usize, c.shards),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker threads: own a slice of the client population.

enum WorkerCmd {
    LoadNumeric {
        table: String,
        column: String,
        f: Arc<dyn Fn(usize) -> f64 + Send + Sync>,
    },
    LoadRows {
        table: String,
        schema: Schema,
        f: Arc<dyn Fn(usize) -> Vec<Vec<Value>> + Send + Sync>,
    },
    Answer {
        query: Query,
        params: ExecutionParams,
        ts: Timestamp,
    },
    Shutdown,
}

enum WorkerReply {
    Loaded,
    Answered {
        /// Messages (participating clients) sent, per partition.
        /// Always present — even on error, the shares sent before the
        /// failing client are in the broker and must be accounted for.
        per_partition: Vec<u64>,
        /// The first client-side error, if any (the worker stops at
        /// the first failing client).
        error: Option<CoreError>,
        busy: Duration,
    },
}

struct WorkerHandle {
    cmd: Sender<WorkerCmd>,
    reply: Receiver<WorkerReply>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Spawns worker `w`, owning clients `{i : i % workers == w}`.
    /// Client identities (id, RNG seed) are exactly
    /// [`System`](crate::System)'s, so per-client streams match the
    /// single-threaded harness seed for seed.
    fn spawn(w: usize, c: &ShardedConfig, partitions: usize, broker: &Broker) -> WorkerHandle {
        let (cmd_tx, cmd_rx) = channel::<WorkerCmd>();
        let (reply_tx, reply_rx) = channel::<WorkerReply>();
        let broker = broker.clone();
        let (workers, clients, seed, key, n_proxies) = (
            c.workers,
            c.clients,
            c.seed,
            c.analyst_key,
            c.proxies as usize,
        );
        let thread = std::thread::Builder::new()
            .name(format!("pa-worker-{w}"))
            .spawn(move || {
                let mut owned: Vec<(usize, Client)> = (0..clients)
                    .filter(|i| (*i as usize) % workers == w)
                    .map(|i| (i as usize, Client::new(ClientId(i), seed, key)))
                    .collect();
                let mut scratch = ClientScratch::new();
                // Cached per-topic writers: no topic-name hash per
                // share, one consumer wakeup per epoch slice (the
                // blocking polls downstream re-check every ≤10ms, so
                // forwarding overlaps the answer loop regardless).
                let writers: Vec<TopicWriter> = (0..n_proxies)
                    .map(|pi| broker.writer(&inbound_topic(ProxyId(pi as u16))))
                    .collect();
                let mut per_partition = vec![0u64; partitions];
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        WorkerCmd::LoadNumeric { table, column, f } => {
                            for (i, client) in &mut owned {
                                let db = client.db_mut();
                                db.create_table(
                                    &table,
                                    Schema::new(vec![
                                        ("ts", ColumnType::Int),
                                        (column.as_str(), ColumnType::Float),
                                    ]),
                                );
                                db.insert(&table, vec![Value::Int(0), Value::Float(f(*i))])
                                    .expect("schema arity");
                            }
                            let _ = reply_tx.send(WorkerReply::Loaded);
                        }
                        WorkerCmd::LoadRows { table, schema, f } => {
                            for (i, client) in &mut owned {
                                let db = client.db_mut();
                                db.create_table(&table, schema.clone());
                                for row in f(*i) {
                                    db.insert(&table, row).expect("schema arity");
                                }
                            }
                            let _ = reply_tx.send(WorkerReply::Loaded);
                        }
                        WorkerCmd::Answer { query, params, ts } => {
                            let t0 = thread_busy_time();
                            per_partition.iter_mut().for_each(|n| *n = 0);
                            let mut failure = None;
                            for (i, client) in &mut owned {
                                match client.answer_query_into(
                                    &query,
                                    &params,
                                    n_proxies,
                                    &mut scratch,
                                ) {
                                    Ok(None) => {}
                                    Ok(Some(shares)) => {
                                        let partition = *i % partitions;
                                        for (pi, share) in shares.iter().enumerate() {
                                            writers[pi].append_quiet(
                                                partition,
                                                Some(Arc::from(&share.mid.to_bytes()[..])),
                                                &share.payload[..],
                                                ts,
                                            );
                                        }
                                        per_partition[partition] += 1;
                                    }
                                    Err(e) => {
                                        failure = Some(e);
                                        break;
                                    }
                                }
                            }
                            for writer in &writers {
                                writer.notify();
                            }
                            let busy = thread_busy_time().saturating_sub(t0);
                            // Counts always travel with the reply,
                            // error or not: shares sent *before* a
                            // failing client are already in the
                            // broker, and the epoch-tagged close is
                            // what lets a later epoch run from
                            // consistent counts.
                            let _ = reply_tx.send(WorkerReply::Answered {
                                per_partition: per_partition.clone(),
                                error: failure,
                                busy,
                            });
                        }
                        WorkerCmd::Shutdown => break,
                    }
                }
            })
            .expect("spawn worker thread");
        WorkerHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
        }
    }
}

// ---------------------------------------------------------------------------
// Proxy threads: free-running partition-preserving relays.

struct ProxyHandle {
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    busy_ns: Arc<AtomicU64>,
    in_topic: String,
    thread: Option<JoinHandle<()>>,
}

impl ProxyHandle {
    /// Spawns a relay thread that forwards continuously until told to
    /// stop: a proxy holds no epoch state, so it needs no epoch
    /// commands — it parks on the broker's condvar and forwards
    /// whatever lands, whichever epoch it belongs to.
    fn spawn(mut proxy: Proxy) -> ProxyHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let busy_ns = Arc::new(AtomicU64::new(0));
        let in_topic = inbound_topic(proxy.id());
        let (stop2, forwarded2, busy2) =
            (Arc::clone(&stop), Arc::clone(&forwarded), Arc::clone(&busy_ns));
        let thread = std::thread::Builder::new()
            .name(format!("pa-proxy-{}", proxy.id().0))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let t0 = thread_busy_time();
                    let n = proxy.pump_blocking(PROXY_PARK);
                    let dt = thread_busy_time().saturating_sub(t0);
                    busy2.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                    if n > 0 {
                        forwarded2.fetch_add(n, Ordering::Relaxed);
                    }
                }
                // Final drain so shutdown leaves no stranded shares.
                let n = proxy.pump();
                forwarded2.fetch_add(n, Ordering::Relaxed);
            })
            .expect("spawn proxy thread");
        ProxyHandle {
            stop,
            forwarded,
            busy_ns,
            in_topic,
            thread: Some(thread),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard threads: free-running join ⟂ decode ⟂ window with per-epoch
// in-flight accounting.

/// An epoch close request: "once `expect` answers tagged `epoch` have
/// been decoded, advance the watermark and emit the closed windows".
struct CloseCmd {
    epoch: Timestamp,
    expect: u64,
    watermark: Timestamp,
    /// Estimators coming home from a previous epoch's merge.
    recycle: Vec<BucketEstimator>,
}

enum ShardCmd {
    Register {
        query: Box<Query>,
        params: ExecutionParams,
        population: u64,
    },
    Close(CloseCmd),
    /// Health-counter snapshot (no watermark movement).
    Probe,
    Shutdown,
}

enum ShardReply {
    Registered,
    Closed {
        /// Answers decoded under the closed epoch's tag (equals the
        /// close's `expect` unless the drain deadline fired).
        decoded: u64,
        windows: Vec<RawWindow>,
        /// Cumulative CPU time of the shard thread (monotone).
        busy: Duration,
    },
    /// `(undecodable, unroutable, duplicates, expired_joins)` plus
    /// cumulative CPU time.
    Health((u64, u64, u64, u64), Duration),
}

struct ShardHandle {
    cmd: Sender<ShardCmd>,
    reply: Receiver<ShardReply>,
    thread: Option<JoinHandle<()>>,
}

impl ShardHandle {
    fn spawn(index: usize, mut agg: Aggregator, straggle: Option<Duration>) -> ShardHandle {
        let (cmd_tx, cmd_rx) = channel::<ShardCmd>();
        let (reply_tx, reply_rx) = channel::<ShardReply>();
        let thread = std::thread::Builder::new()
            .name(format!("pa-shard-{index}"))
            .spawn(move || {
                // Per-epoch in-flight accounting: decoded answers per
                // epoch tag. A bounded scan list, not a map — at most
                // pipeline-depth + 1 epochs are ever live, entries
                // retire when their epoch closes, and the warm list
                // never allocates per message.
                let mut counts: Vec<(Timestamp, u64)> = Vec::new();
                // Close requests queue in epoch order and are
                // satisfied strictly FIFO (watermarks must advance in
                // order); `Instant` tracks the drain deadline.
                let mut closes: VecDeque<(CloseCmd, Instant)> = VecDeque::new();
                'run: loop {
                    // 1. Absorb all pending control messages.
                    loop {
                        match cmd_rx.try_recv() {
                            Ok(ShardCmd::Register {
                                query,
                                params,
                                population,
                            }) => {
                                agg.register_query(&query, params, population);
                                let _ = reply_tx.send(ShardReply::Registered);
                            }
                            Ok(ShardCmd::Close(c)) => closes.push_back((c, Instant::now())),
                            Ok(ShardCmd::Probe) => {
                                let _ = reply_tx.send(ShardReply::Health(
                                    (
                                        agg.undecodable(),
                                        agg.unroutable(),
                                        agg.duplicates(),
                                        agg.expired_joins(),
                                    ),
                                    thread_busy_time(),
                                ));
                            }
                            Ok(ShardCmd::Shutdown) | Err(TryRecvError::Disconnected) => {
                                break 'run;
                            }
                            Err(TryRecvError::Empty) => break,
                        }
                    }
                    // 2. Satisfy the oldest close once its epoch's
                    //    accounting settles (or its deadline fires).
                    if let Some((front, since)) = closes.front() {
                        let have = counts
                            .iter()
                            .find(|(t, _)| *t == front.epoch)
                            .map(|(_, n)| *n)
                            .unwrap_or(0);
                        if have >= front.expect || since.elapsed() >= DRAIN_DEADLINE {
                            let (c, _) = closes.pop_front().expect("front exists");
                            if let Some(delay) = straggle {
                                std::thread::sleep(delay);
                            }
                            for est in c.recycle {
                                agg.release_estimator(est);
                            }
                            let mut windows = Vec::new();
                            agg.advance_watermark_raw_into(c.watermark, &mut windows);
                            // The epoch's accounting entry retires
                            // with the close.
                            counts.retain(|(t, _)| *t > c.epoch);
                            let _ = reply_tx.send(ShardReply::Closed {
                                decoded: have,
                                windows,
                                busy: thread_busy_time(),
                            });
                            continue 'run;
                        }
                    }
                    // 3. Pump, tagging every decode with its epoch.
                    agg.pump_blocking_with(SHARD_PARK, |_, ts, _| {
                        match counts.iter_mut().find(|(t, _)| *t == ts) {
                            Some((_, n)) => *n += 1,
                            None => counts.push((ts, 1)),
                        }
                    });
                }
            })
            .expect("spawn shard thread");
        ShardHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
        }
    }
}

// ---------------------------------------------------------------------------
// The deployment.

/// Accumulated per-thread CPU time over a deployment's lifetime —
/// the instrumentation behind machine-level throughput reporting
/// (see [`thread_busy_time`]).
#[derive(Debug, Clone)]
pub struct BusyProfile {
    /// Per client-worker CPU time in the answer stage.
    pub workers: Vec<Duration>,
    /// Per proxy-thread CPU time (forwarding plus the free-running
    /// poll loop).
    pub proxies: Vec<Duration>,
    /// Per shard-thread CPU time (drain/close plus the free-running
    /// poll loop).
    pub shards: Vec<Duration>,
}

impl BusyProfile {
    fn new(workers: usize, proxies: usize, shards: usize) -> BusyProfile {
        BusyProfile {
            workers: vec![Duration::ZERO; workers],
            proxies: vec![Duration::ZERO; proxies],
            shards: vec![Duration::ZERO; shards],
        }
    }

    /// The critical path of a *barrier-synchronized* pass:
    /// `max(workers) + max(proxies) + max(shards)` — what an epoch
    /// costs when the stages run one after another (the BENCH_4
    /// methodology, kept for like-for-like comparisons).
    pub fn critical_path(&self) -> Duration {
        let max = |v: &[Duration]| v.iter().copied().max().unwrap_or(Duration::ZERO);
        max(&self.workers) + max(&self.proxies) + max(&self.shards)
    }

    /// The busiest single thread — the critical resource of the
    /// **overlapped** pipeline: with one core per thread and the
    /// stages running concurrently, steady-state wall time converges
    /// to this, so `messages / bottleneck()` is the pipelined machine
    /// rate (the BENCH_5 methodology).
    pub fn bottleneck(&self) -> Duration {
        self.workers
            .iter()
            .chain(&self.proxies)
            .chain(&self.shards)
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// One submitted, not-yet-completed epoch.
struct InFlightEpoch {
    /// The epoch tag: the event timestamp every answer of this epoch
    /// carries.
    epoch: Timestamp,
    /// The watermark closing the epoch's windows.
    watermark: Timestamp,
}

/// A threaded, sharded in-process PrivApprox deployment with
/// overlapped-epoch pipelining (see the module docs for topology,
/// the pipeline protocol and guarantees). Drives the same query-epoch
/// surface as [`System`](crate::System) — `analyst()`, `load_*`,
/// `run_epoch`, `drain_results` — and produces byte-identical
/// results; [`ShardedSystem::submit_epoch`]/[`ShardedSystem::flush_epochs`]
/// expose the pipelined form.
pub struct ShardedSystem {
    config: ShardedConfig,
    partitions: usize,
    broker: Broker,
    workers: Vec<WorkerHandle>,
    proxies: Vec<ProxyHandle>,
    shards: Vec<ShardHandle>,
    queries: HashMap<QueryId, (Query, ExecutionParams)>,
    initializer: Initializer,
    /// The shared event clock, advanced exactly like `System`'s.
    now_ms: u64,
    next_serial: u32,
    /// Submitted epochs not yet completed, oldest first.
    in_flight: VecDeque<InFlightEpoch>,
    /// Closed, merged windows not yet returned.
    pending: Vec<QueryResult>,
    /// Recycled result shells for the merge step.
    spare_shells: Vec<QueryResult>,
    /// Estimators consumed by the last merge, owed back to each shard
    /// with its next close command.
    pending_recycle: Vec<Vec<BucketEstimator>>,
    /// Cumulative per-thread busy time (workers accumulate deltas;
    /// shard slots hold the latest cumulative reading; proxy times
    /// live in the handles' atomics).
    busy: BusyProfile,
}

impl ShardedSystem {
    /// Starts building a deployment.
    pub fn builder() -> ShardedSystemBuilder {
        ShardedSystemBuilder::default()
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Replaces the initializer (e.g. to set a privacy ceiling).
    pub fn set_initializer(&mut self, init: Initializer) {
        self.initializer = init;
    }

    /// The partition a client is pinned to: `c mod partitions`.
    pub fn partition_of(&self, client: u64) -> usize {
        (client % self.partitions as u64) as usize
    }

    /// The shard owning a partition under the group assignment
    /// (`p mod shards` — shards joined the group in order, so rank
    /// equals shard index).
    pub fn shard_of_partition(&self, partition: usize) -> usize {
        partition % self.config.shards
    }

    /// Number of epochs currently in flight (submitted, not yet
    /// completed).
    pub fn in_flight_epochs(&self) -> usize {
        self.in_flight.len()
    }

    /// Populates every client with a one-row table holding a numeric
    /// column, exactly like
    /// [`System::load_numeric_column`](crate::System::load_numeric_column).
    /// Completes any in-flight epochs first: loads must not reorder
    /// around pending answer commands.
    pub fn load_numeric_column<F>(&mut self, table: &str, column: &str, f: F)
    where
        F: Fn(usize) -> f64 + Send + Sync + 'static,
    {
        let _ = self.flush_epochs();
        let f: Arc<dyn Fn(usize) -> f64 + Send + Sync> = Arc::new(f);
        for w in &self.workers {
            w.cmd
                .send(WorkerCmd::LoadNumeric {
                    table: table.to_string(),
                    column: column.to_string(),
                    f: Arc::clone(&f),
                })
                .expect("worker alive");
        }
        for w in &self.workers {
            match w.reply.recv().expect("worker alive") {
                WorkerReply::Loaded => {}
                WorkerReply::Answered { .. } => unreachable!("load expects Loaded"),
            }
        }
    }

    /// Populates every client with arbitrary rows, exactly like
    /// [`System::load_rows`](crate::System::load_rows). Completes any
    /// in-flight epochs first.
    pub fn load_rows<F>(&mut self, table: &str, schema: Schema, f: F)
    where
        F: Fn(usize) -> Vec<Vec<Value>> + Send + Sync + 'static,
    {
        let _ = self.flush_epochs();
        let f: Arc<dyn Fn(usize) -> Vec<Vec<Value>> + Send + Sync> = Arc::new(f);
        for w in &self.workers {
            w.cmd
                .send(WorkerCmd::LoadRows {
                    table: table.to_string(),
                    schema: schema.clone(),
                    f: Arc::clone(&f),
                })
                .expect("worker alive");
        }
        for w in &self.workers {
            match w.reply.recv().expect("worker alive") {
                WorkerReply::Loaded => {}
                WorkerReply::Answered { .. } => unreachable!("load expects Loaded"),
            }
        }
    }

    /// Opens an analyst session for query submission.
    pub fn analyst(&mut self) -> ShardedAnalystSession<'_> {
        ShardedAnalystSession {
            system: self,
            sql: String::new(),
            buckets: None,
            budget: Budget::default_accuracy(),
            window: None,
            explicit_params: None,
        }
    }

    /// The execution parameters currently assigned to a query.
    pub fn params(&self, id: QueryId) -> Option<ExecutionParams> {
        self.queries.get(&id).map(|(_, p)| *p)
    }

    /// Registers a signed query with explicit parameters on every
    /// shard (the lower-level path under
    /// [`ShardedAnalystSession::submit`]). Completes any in-flight
    /// epochs first so registration cannot interleave with pending
    /// closes.
    pub fn register(&mut self, query: Query, params: ExecutionParams) {
        let _ = self.flush_epochs();
        for shard in &self.shards {
            shard
                .cmd
                .send(ShardCmd::Register {
                    query: Box::new(query.clone()),
                    params,
                    population: self.config.clients,
                })
                .expect("shard alive");
        }
        self.wake_shards();
        for shard in &self.shards {
            match shard.reply.recv().expect("shard alive") {
                ShardReply::Registered => {}
                _ => unreachable!("register expects Registered"),
            }
        }
        self.queries.insert(query.id, (query, params));
    }

    /// Submits one epoch of a query into the pipeline: the workers
    /// start answering immediately, while proxies forward and shards
    /// drain whatever earlier epochs are still in flight. If the
    /// pipeline is at [depth](ShardedSystemBuilder::pipeline_depth),
    /// the oldest epoch is completed first (its windows land in the
    /// [`ShardedSystem::drain_results`] buffer, and its client error —
    /// if any — is returned here).
    pub fn submit_epoch(&mut self, query: &Query) -> Result<(), CoreError> {
        let (_, params) = *self.queries.get(&query.id).ok_or(CoreError::UnknownQuery)?;
        let depth = self.config.pipeline_depth.max(1);
        let mut result = Ok(());
        while self.in_flight.len() >= depth {
            let r = self.complete_oldest(false);
            if result.is_ok() {
                result = r;
            }
        }
        let window_size = query.window.size;
        let epoch_start = self.now_ms.div_ceil(window_size) * window_size;
        let ts = Timestamp(epoch_start + window_size / 2);
        let watermark = Timestamp(epoch_start + window_size);
        self.now_ms = watermark.0;
        for w in &self.workers {
            w.cmd
                .send(WorkerCmd::Answer {
                    query: query.clone(),
                    params,
                    ts,
                })
                .expect("worker alive");
        }
        self.in_flight.push_back(InFlightEpoch {
            epoch: ts,
            watermark,
        });
        result
    }

    /// Completes every in-flight epoch, oldest first: collects worker
    /// replies, issues the epoch-tagged closes, merges shard windows
    /// and finalizes results into the
    /// [`ShardedSystem::drain_results`] buffer. Returns the first
    /// client error encountered (later epochs still complete — the
    /// cleanup guarantee).
    pub fn flush_epochs(&mut self) -> Result<(), CoreError> {
        let mut result = Ok(());
        while !self.in_flight.is_empty() {
            let r = self.complete_oldest(false);
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// Runs one epoch of a query through the overlapped pipeline and
    /// waits for it: submit + flush. Within the epoch the stages
    /// still stream concurrently (workers feed proxies feed shards);
    /// across epochs, use [`ShardedSystem::submit_epoch`] to keep the
    /// pipeline full.
    ///
    /// Returns the epoch's windowed result — byte-identical to what
    /// [`System::run_epoch`](crate::System::run_epoch) returns for
    /// the same configuration and seed, at any pipeline depth.
    pub fn run_epoch(&mut self, query: &Query) -> Result<QueryResult, CoreError> {
        let mut outcome = self.submit_epoch(query);
        let flushed = self.flush_epochs();
        if outcome.is_ok() {
            outcome = flushed;
        }
        outcome?;
        let idx = self
            .pending
            .iter()
            .rposition(|r| r.query == query.id)
            .ok_or(CoreError::UnknownQuery)?;
        Ok(self.pending.remove(idx))
    }

    /// Wakes shard threads parked in their blocking polls so a
    /// control message is observed at wakeup latency (shards park on
    /// their first subscribed topic's condvar).
    fn wake_shards(&self) {
        self.broker.notify_topic(&outbound_topic(ProxyId(0)));
    }

    /// Completes the oldest in-flight epoch. `lenient` (drop path)
    /// tolerates dead threads and incomplete drains instead of
    /// panicking.
    fn complete_oldest(&mut self, lenient: bool) -> Result<(), CoreError> {
        let Some(ep) = self.in_flight.pop_front() else {
            return Ok(());
        };
        // Worker replies arrive strictly in command order per worker,
        // so the oldest pending Answered on each channel is this
        // epoch's.
        let mut per_partition = vec![0u64; self.partitions];
        let mut first_error = None;
        for (wi, w) in self.workers.iter().enumerate() {
            let reply = match w.reply.recv() {
                Ok(r) => r,
                Err(_) if lenient => continue,
                Err(_) => panic!("worker {wi} died mid-epoch"),
            };
            match reply {
                WorkerReply::Answered {
                    per_partition: counts,
                    error,
                    busy,
                } => {
                    self.busy.workers[wi] += busy;
                    for (total, n) in per_partition.iter_mut().zip(&counts) {
                        *total += n;
                    }
                    if let Some(e) = error {
                        first_error = first_error.or(Some(e));
                    }
                }
                WorkerReply::Loaded => unreachable!("answer expects Answered"),
            }
        }
        // Even when a client errored, the epoch still closes: the
        // shares sent before the failure are in the broker, and the
        // epoch-tagged close (with the exact partial count) is what
        // lets later — possibly already in-flight — epochs proceed
        // from consistent accounting. The partial window surfaces via
        // `drain_results`, mirroring `System`. The error is returned
        // after cleanup.
        let expects: Vec<u64> = (0..self.config.shards)
            .map(|s| {
                per_partition
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| p % self.config.shards == s)
                    .map(|(_, n)| n)
                    .sum()
            })
            .collect();
        for (s, shard) in self.shards.iter().enumerate() {
            let _ = shard.cmd.send(ShardCmd::Close(CloseCmd {
                epoch: ep.epoch,
                expect: expects[s],
                watermark: ep.watermark,
                recycle: std::mem::take(&mut self.pending_recycle[s]),
            }));
        }
        self.wake_shards();
        let mut merged: Vec<(QueryId, Window, BucketEstimator, usize)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let reply = match shard.reply.recv() {
                Ok(r) => r,
                Err(_) if lenient => continue,
                Err(_) => panic!("shard {s} died mid-epoch"),
            };
            match reply {
                ShardReply::Closed {
                    decoded,
                    windows,
                    busy,
                } => {
                    self.busy.shards[s] = busy;
                    if !lenient {
                        assert_eq!(
                            decoded, expects[s],
                            "shard {s} close incomplete: {decoded}/{} answers decoded \
                             for epoch tagged {:?}",
                            expects[s], ep.epoch
                        );
                    }
                    for rw in windows {
                        match merged
                            .iter_mut()
                            .find(|(q, w, _, _)| *q == rw.query && *w == rw.window)
                        {
                            Some((_, _, est, _)) => {
                                est.merge(&rw.estimator);
                                self.pending_recycle[s].push(rw.estimator);
                            }
                            None => merged.push((rw.query, rw.window, rw.estimator, s)),
                        }
                    }
                }
                _ => unreachable!("close expects Closed"),
            }
        }
        merged.sort_unstable_by_key(|(q, w, _, _)| (w.start, q.to_u64()));
        for (qid, window, est, src) in merged {
            let (_, qparams) = self.queries.get(&qid).expect("registered query");
            let mut shell = self.spare_shells.pop().unwrap_or_else(QueryResult::shell);
            finalize_window_into(
                &mut shell,
                qid,
                window,
                &est,
                *qparams,
                self.config.clients,
                self.config.confidence,
            );
            self.pending.push(shell);
            self.pending_recycle[src].push(est);
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drains any additional closed windows (sliding-window queries
    /// emit several per epoch; pipelined submissions park every
    /// completed epoch's results here).
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        std::mem::take(&mut self.pending)
    }

    /// Returns consumed results to the merge step's shell pool.
    pub fn recycle_results(&mut self, consumed: &mut Vec<QueryResult>) {
        self.spare_shells.append(consumed);
    }

    /// Broker traffic counters.
    pub fn broker_stats(&self) -> BrokerStats {
        self.broker.stats()
    }

    /// Aggregated shard health counters: `(undecodable, unroutable,
    /// duplicates, expired_joins)` summed across shards. Completes
    /// any in-flight epochs first, so the snapshot covers everything
    /// submitted so far.
    pub fn aggregator_health(&mut self) -> (u64, u64, u64, u64) {
        let _ = self.flush_epochs();
        let mut totals = (0, 0, 0, 0);
        for shard in &self.shards {
            shard.cmd.send(ShardCmd::Probe).expect("shard alive");
        }
        self.wake_shards();
        for (s, shard) in self.shards.iter().enumerate() {
            match shard.reply.recv().expect("shard alive") {
                ShardReply::Health(health, busy) => {
                    self.busy.shards[s] = busy;
                    totals.0 += health.0;
                    totals.1 += health.1;
                    totals.2 += health.2;
                    totals.3 += health.3;
                }
                _ => unreachable!("probe expects Health"),
            }
        }
        totals
    }

    /// Snapshot of cumulative per-thread CPU time per stage (the
    /// machine-level throughput instrumentation; see
    /// [`thread_busy_time`] and [`BusyProfile::bottleneck`]).
    pub fn busy_profile(&self) -> BusyProfile {
        let mut profile = self.busy.clone();
        for (i, p) in self.proxies.iter().enumerate() {
            profile.proxies[i] = Duration::from_nanos(p.busy_ns.load(Ordering::Relaxed));
        }
        profile
    }

    /// Total shares forwarded by the relay threads so far.
    pub fn forwarded_shares(&self) -> u64 {
        self.proxies
            .iter()
            .map(|p| p.forwarded.load(Ordering::Relaxed))
            .sum()
    }
}

impl Drop for ShardedSystem {
    fn drop(&mut self) {
        // Leniently complete whatever the caller left in flight: an
        // abandoned overlapped epoch leaves answer commands, broker
        // records and epoch-tagged closes in the pipeline, and the
        // worker/shard threads must observe their shutdowns *after*
        // those — not interleaved with them.
        while !self.in_flight.is_empty() {
            let _ = self.complete_oldest(true);
        }
        for w in &self.workers {
            let _ = w.cmd.send(WorkerCmd::Shutdown);
        }
        for s in &self.shards {
            let _ = s.cmd.send(ShardCmd::Shutdown);
        }
        for p in &self.proxies {
            p.stop.store(true, Ordering::Relaxed);
        }
        // Pop parked threads out of their condvar waits.
        for p in &self.proxies {
            self.broker.notify_topic(&p.in_topic);
        }
        self.wake_shards();
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
        for p in &mut self.proxies {
            if let Some(t) = p.thread.take() {
                let _ = t.join();
            }
        }
        for s in &mut self.shards {
            if let Some(t) = s.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// A fluent analyst session against a [`ShardedSystem`] — the same
/// SQL → buckets → budget → submit surface as
/// [`AnalystSession`](crate::system::AnalystSession), registering the
/// query on every shard.
pub struct ShardedAnalystSession<'a> {
    system: &'a mut ShardedSystem,
    sql: String,
    buckets: Option<AnswerSpec>,
    budget: Budget,
    window: Option<(u64, u64)>,
    explicit_params: Option<ExecutionParams>,
}

impl<'a> ShardedAnalystSession<'a> {
    /// Sets the SQL text.
    pub fn query(mut self, sql: impl Into<String>) -> Self {
        self.sql = sql.into();
        self
    }

    /// Sets the answer format `A[n]`.
    pub fn buckets(mut self, spec: AnswerSpec) -> Self {
        self.buckets = Some(spec);
        self
    }

    /// Sets the execution budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets sliding-window parameters `(w, δ)` in milliseconds.
    pub fn window(mut self, size: u64, slide: u64) -> Self {
        self.window = Some((size, slide));
        self
    }

    /// Bypasses the initializer with explicit `(s, p, q)`.
    pub fn params(mut self, params: ExecutionParams) -> Self {
        self.explicit_params = Some(params);
        self
    }

    /// Signs, registers (on every shard) and distributes the query;
    /// returns it. Serial assignment matches
    /// [`System`](crate::System) so the same submission order yields
    /// the same `QueryId`s.
    pub fn submit(self) -> Result<Query, CoreError> {
        let spec = self.buckets.ok_or_else(|| {
            CoreError::InfeasibleBudget("query needs an answer bucket spec".into())
        })?;
        let (w, d) = self.window.unwrap_or((60_000, 60_000));
        let sys = self.system;
        let id = QueryId::new(AnalystId(1), sys.next_serial);
        sys.next_serial += 1;
        let query = QueryBuilder::new(id, self.sql)
            .answer(spec)
            .window(w, d)
            .sign_and_build(sys.config.analyst_key);
        let params = match self.explicit_params {
            Some(p) => p,
            None => sys.initializer.derive(&self.budget, sys.config.clients)?,
        };
        sys.register(query.clone(), params);
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_spec() -> AnswerSpec {
        AnswerSpec::ranges_with_overflow(0.0, 110.0, 11)
    }

    #[test]
    fn sharded_end_to_end_exact_mode() {
        let mut system = ShardedSystem::builder()
            .clients(200)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(1)
            .build();
        system.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 200);
        assert_eq!(result.population, 200);
        let total: f64 = result.buckets.iter().map(|b| b.estimate).sum();
        assert_eq!(total, 200.0);
        for b in 0..9 {
            assert_eq!(result.buckets[b].estimate, 20.0, "bucket {b}");
        }
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_epochs_advance_windows() {
        let mut system = ShardedSystem::builder()
            .clients(60)
            .proxies(2)
            .shards(4)
            .workers(3)
            .seed(4)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let r1 = system.run_epoch(&query).unwrap();
        let r2 = system.run_epoch(&query).unwrap();
        assert!(r2.window.start > r1.window.start);
        assert_eq!(r1.sample_size, 60);
        assert_eq!(r2.sample_size, 60);
        // Threads did real work on every stage.
        let busy = system.busy_profile();
        assert!(busy.workers.iter().any(|d| !d.is_zero()));
        assert!(busy.critical_path() > Duration::ZERO);
        assert!(busy.bottleneck() <= busy.critical_path());
    }

    /// Pipelined submission: epochs overlap up to the configured
    /// depth, results arrive in epoch order via `drain_results`, and
    /// every epoch is exact.
    #[test]
    fn sharded_pipelined_epochs_overlap_and_drain_in_order() {
        let mut system = ShardedSystem::builder()
            .clients(90)
            .proxies(2)
            .shards(3)
            .workers(3)
            .pipeline_depth(3)
            .seed(6)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        for _ in 0..5 {
            system.submit_epoch(&query).unwrap();
            assert!(system.in_flight_epochs() <= 3, "depth respected");
        }
        system.flush_epochs().unwrap();
        assert_eq!(system.in_flight_epochs(), 0);
        let results = system.drain_results();
        assert_eq!(results.len(), 5);
        for (e, r) in results.iter().enumerate() {
            assert_eq!(r.sample_size, 90, "epoch {e}");
            assert_eq!(r.buckets[1].estimate, 90.0, "epoch {e}");
            if e > 0 {
                assert!(r.window.start > results[e - 1].window.start, "epoch order");
            }
        }
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_single_shard_degenerates_to_plain_pipeline() {
        let mut system = ShardedSystem::builder()
            .clients(50)
            .proxies(3)
            .shards(1)
            .workers(1)
            .seed(9)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 50);
        assert_eq!(result.buckets[1].estimate, 50.0);
    }

    #[test]
    fn sharded_partition_affinity_is_total() {
        let system = ShardedSystem::builder()
            .clients(10)
            .proxies(2)
            .shards(3)
            .partitions(6)
            .build();
        // Every client maps to a partition, every partition to a
        // shard, and the shard set is exhaustive.
        let mut shards_seen = std::collections::HashSet::new();
        for c in 0..10 {
            let p = system.partition_of(c);
            assert!(p < 6);
            shards_seen.insert(system.shard_of_partition(p));
        }
        assert_eq!(shards_seen.len(), 3);
    }

    #[test]
    fn sharded_shape_adopts_cluster_tiers() {
        let shape = DeploymentShape::single_node(2, 4);
        let system = ShardedSystem::builder().clients(10).shape(shape).build();
        assert_eq!(system.config().proxies, 2);
        assert_eq!(system.config().shards, 4);
        assert_eq!(system.config().workers, 4);
    }

    /// A failed epoch (one client errors mid-population) must not
    /// poison the pipeline: the epoch still closes with its exact
    /// partial count, so the next epoch runs from consistent
    /// accounting instead of tripping the close asserts on stale
    /// records.
    #[test]
    fn sharded_failed_epoch_cleans_up_for_the_next() {
        let mut system = ShardedSystem::builder()
            .clients(40)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(3)
            .build();
        // Client 25 holds an unbucketizable (negative) speed.
        system.load_numeric_column("vehicle", "speed", |i| if i == 25 { -5.0 } else { 15.0 });
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        assert!(matches!(
            system.run_epoch(&query),
            Err(CoreError::Unbucketizable(_))
        ));
        // The failure epoch's partial window surfaces via drain, not
        // silently: some clients answered before the bad one.
        let partial = system.drain_results();
        assert_eq!(partial.len(), 1);
        assert!(partial[0].sample_size < 40);
        // Repair the data; the next epoch is exact and complete.
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 40);
        assert_eq!(result.buckets[1].estimate, 40.0);
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    /// A client error in epoch k+1 while epoch k is still in flight
    /// must not corrupt epoch k's windows: each overlapped epoch
    /// closes under its own tag with its own exact (possibly partial)
    /// count.
    #[test]
    fn sharded_error_in_overlapped_epoch_isolates_to_its_windows() {
        let mut system = ShardedSystem::builder()
            .clients(40)
            .proxies(2)
            .shards(2)
            .workers(2)
            .pipeline_depth(3)
            .seed(8)
            .build();
        // Client 25 fails every epoch — so both in-flight epochs
        // error, each mid-population.
        system.load_numeric_column("vehicle", "speed", |i| if i == 25 { -5.0 } else { 15.0 });
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        // Two epochs enter the pipeline back to back; neither has
        // completed when the second is submitted.
        system.submit_epoch(&query).unwrap();
        assert!(system.submit_epoch(&query).is_ok(), "depth not yet hit");
        assert_eq!(system.in_flight_epochs(), 2);
        assert!(matches!(
            system.flush_epochs(),
            Err(CoreError::Unbucketizable(_))
        ));
        let partials = system.drain_results();
        assert_eq!(partials.len(), 2, "both epochs closed their windows");
        assert_eq!(
            partials[0].sample_size, partials[1].sample_size,
            "identical partial populations → identical counts per epoch"
        );
        assert!(partials[0].sample_size < 40);
        assert!(partials[1].window.start > partials[0].window.start);
        // Repair and verify the pipeline is clean.
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 40);
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    /// Dropping a system with epochs still in flight (an aborted
    /// overlapped run) must drain the epoch-tagged control messages
    /// and shut down cleanly instead of interleaving shutdowns with
    /// pending answers/closes.
    #[test]
    fn sharded_drop_with_in_flight_epochs_shuts_down_cleanly() {
        let mut system = ShardedSystem::builder()
            .clients(30)
            .proxies(2)
            .shards(2)
            .workers(2)
            .pipeline_depth(3)
            .seed(12)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        system.submit_epoch(&query).unwrap();
        system.submit_epoch(&query).unwrap();
        assert_eq!(system.in_flight_epochs(), 2);
        drop(system); // must not hang or panic
    }

    #[test]
    fn sharded_unknown_query_is_rejected() {
        let mut system = ShardedSystem::builder().clients(10).build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let foreign =
            QueryBuilder::new(QueryId::new(AnalystId(1), 999), "SELECT speed FROM vehicle")
                .answer(speed_spec())
                .sign_and_build(system.config().analyst_key);
        assert_eq!(
            system.run_epoch(&foreign).unwrap_err(),
            CoreError::UnknownQuery
        );
        assert_eq!(
            system.submit_epoch(&foreign).unwrap_err(),
            CoreError::UnknownQuery
        );
    }
}

//! The threaded, sharded deployment runtime.
//!
//! [`System`](crate::System) is the deterministic *epoch-at-a-time*
//! harness: one thread walks clients → proxies → aggregator in
//! sequence, so every BENCH number it produces is per-core.
//! [`ShardedSystem`] is the same deployment run the way the paper
//! runs it (§5): **N proxy relay threads** and **M aggregator
//! shards** over *partitioned* broker topics, fed by a pool of client
//! worker threads — the shape that turns per-core throughput into
//! machine-level throughput.
//!
//! # Topology and partition affinity
//!
//! ```text
//! worker threads ──send_to(partition π(c))──► proxy-i-in[π(c)]   (i = 0..n)
//! proxy thread i ──partition-preserving─────► proxy-i-out[π(c)]
//! shard thread s (owns {p : p % M == s}) ───► join ⟂ decode ⟂ window (raw counts)
//! main ──merge counts across shards──────────► finalize → QueryResult
//! ```
//!
//! Every client `c` is pinned to partition `π(c) = c mod P`; all `n`
//! of its XOR shares travel in partition `π(c)` of their respective
//! proxy topics (proxies forward partition-preserving), and the
//! broker's consumer-group assignment hands partition `π(c)` of
//! *every* proxy-out topic to the same shard — so each MID's shares
//! join **shard-locally**, with no cross-shard traffic before the
//! window merge.
//!
//! # Determinism and equivalence
//!
//! `ShardedSystem` produces **byte-identical** `QueryResult`s to
//! `System` for the same configuration, seed for seed, at any shard
//! count. Three properties compose into that guarantee:
//!
//! 1. every client's answer is a pure function of its own RNG stream
//!    ([`Randomizer::randomize_vec_forked`](privapprox_rr::randomize::Randomizer::randomize_vec_forked)
//!    re-forks the bulk generator per call), so processing order and
//!    scratch sharing are irrelevant;
//! 2. window accumulation is commutative counting, so the partition
//!    of answers across shards is irrelevant; and
//! 3. estimation ([`finalize_window_into`]) is a pure function of the
//!    merged counts, so summing shard-local counts and finalizing
//!    once equals finalizing a single aggregator's counts.
//!
//! The equivalence is pinned by `tests/sharded_equivalence.rs` across
//! seeds × bucket widths × proxy counts × shard counts.
//!
//! # Steady-state allocation
//!
//! Each shard keeps the single-aggregator guarantees: decode scratch,
//! pooled estimators, recycled result shells. Raw-window estimators
//! leave a shard for the merge and are handed back with the next
//! epoch's drain command, so the per-shard window cycle stays
//! zero-allocation once warm (extended proof in
//! `crates/core/tests/alloc_steady_state.rs`); the merge itself runs
//! over pooled shells and returned estimators. Per-epoch *control*
//! traffic (channel messages, reply vectors) is deliberately outside
//! that budget — it is O(threads) per epoch, not O(messages).

use crate::aggregator::{finalize_window_into, Aggregator, QueryResult, RawWindow};
use crate::client::{Client, ClientScratch};
use crate::error::CoreError;
use crate::initializer::Initializer;
use crate::proxy::{inbound_topic, Proxy};
use privapprox_cluster::DeploymentShape;
use privapprox_rr::estimate::BucketEstimator;
use privapprox_sql::{ColumnType, Schema, Value};
use privapprox_stream::broker::{Broker, BrokerStats};
use privapprox_types::ids::AnalystId;
use privapprox_types::{
    AnswerSpec, Budget, ClientId, ExecutionParams, ProxyId, Query, QueryBuilder, QueryId,
    Timestamp, Window,
};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a drain phase waits for in-flight records before giving
/// up — a liveness backstop, not a tuning knob: under correct
/// operation every drain completes as soon as the pipeline catches
/// up.
const DRAIN_DEADLINE: Duration = Duration::from_secs(60);

/// Per-wait block granularity inside drain loops (condvar park time
/// per `pump_blocking` call).
const DRAIN_WAIT: Duration = Duration::from_millis(100);

/// CPU time consumed by the calling thread so far (Linux:
/// `CLOCK_THREAD_CPUTIME_ID`; elsewhere falls back to wall time,
/// which over-counts blocked waits).
///
/// This is the measurement behind "machine-level" throughput claims:
/// on an unloaded multi-core machine a pinned thread's CPU time
/// equals its wall time, while on an oversubscribed box (CI
/// containers) it still reports what the thread *would* sustain on a
/// dedicated core — `messages / max_thread_busy` is the throughput of
/// the deployment with one core per thread. `docs/benchmarks.md`
/// documents the convention for BENCH_4.
pub fn thread_busy_time() -> Duration {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: std links libc on Linux; Timespec matches the ABI
        // layout of struct timespec on 64-bit Linux.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32);
        }
    }
    wall_clock_fallback()
}

/// Wall-clock fallback for [`thread_busy_time`] on platforms without
/// a per-thread CPU clock.
fn wall_clock_fallback() -> Duration {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// Static configuration of a threaded sharded deployment.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of client devices.
    pub clients: u64,
    /// Number of proxies = relay threads (≥ 2).
    pub proxies: u16,
    /// Number of aggregator shards (≥ 1).
    pub shards: usize,
    /// Number of client worker threads (≥ 1).
    pub workers: usize,
    /// Partitions per broker topic; `0` means "same as `shards`".
    pub partitions: usize,
    /// Master seed for all client RNGs (same semantics as
    /// [`SystemConfig::seed`](crate::SystemConfig)).
    pub seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
    /// The analyst's signing key.
    pub analyst_key: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            clients: 100,
            proxies: 2,
            shards: 2,
            workers: 2,
            partitions: 0,
            seed: 0,
            confidence: 0.95,
            analyst_key: 0x5EED_0000_CAFE,
        }
    }
}

impl ShardedConfig {
    /// Effective partition count (`partitions`, defaulting to
    /// `shards`).
    pub fn effective_partitions(&self) -> usize {
        if self.partitions == 0 {
            self.shards
        } else {
            self.partitions
        }
    }
}

/// Builder for [`ShardedSystem`].
#[derive(Debug, Clone, Default)]
pub struct ShardedSystemBuilder {
    config: ShardedConfig,
}

impl ShardedSystemBuilder {
    /// Sets the client population size.
    pub fn clients(mut self, n: u64) -> Self {
        self.config.clients = n;
        self
    }

    /// Sets the number of proxies / relay threads (≥ 2).
    pub fn proxies(mut self, n: u16) -> Self {
        self.config.proxies = n;
        self
    }

    /// Sets the number of aggregator shards (≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Sets the number of client worker threads (≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Sets the broker partition count (defaults to the shard count;
    /// may exceed it, in which case shards own several partitions
    /// each).
    pub fn partitions(mut self, n: usize) -> Self {
        self.config.partitions = n;
        self
    }

    /// Adopts thread/shard counts from a cluster-tier mapping — the
    /// bridge from the simulator's `ClusterSpec`s to the real
    /// runtime.
    pub fn shape(mut self, shape: DeploymentShape) -> Self {
        self.config.proxies = shape.proxies;
        self.config.shards = shape.shards;
        self.config.workers = shape.workers;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the reporting confidence level.
    pub fn confidence(mut self, c: f64) -> Self {
        self.config.confidence = c;
        self
    }

    /// Builds and starts the deployment: spawns the worker, proxy and
    /// shard threads and settles consumer-group membership before any
    /// record flows (so partition assignment is fixed for the run).
    ///
    /// # Panics
    ///
    /// Panics on a zero-client population, fewer than two proxies, or
    /// zero shards/workers.
    pub fn build(self) -> ShardedSystem {
        let c = self.config;
        assert!(c.clients > 0, "population must be positive");
        assert!(c.proxies >= 2, "PrivApprox requires at least two proxies");
        assert!(c.shards >= 1, "need at least one aggregator shard");
        assert!(c.workers >= 1, "need at least one client worker");
        let partitions = c.effective_partitions();
        let broker = Broker::new(partitions);

        // Order matters: create every proxy and shard consumer *now*,
        // on this thread, so group membership — and therefore the
        // partition → shard mapping — is complete and deterministic
        // before the first record is produced. (A shard joining the
        // "aggregator" group after a sibling already polled would
        // strand shares across joiners.)
        let proxies: Vec<Proxy> = (0..c.proxies)
            .map(|i| Proxy::new(ProxyId(i), &broker))
            .collect();
        let shards_instances: Vec<Aggregator> = (0..c.shards)
            .map(|_| Aggregator::new(&broker, c.proxies as usize, c.confidence))
            .collect();

        let workers = (0..c.workers)
            .map(|w| WorkerHandle::spawn(w, &c, partitions, &broker))
            .collect();
        let proxy_threads = proxies.into_iter().map(ProxyHandle::spawn).collect();
        let shard_threads = shards_instances
            .into_iter()
            .map(ShardHandle::spawn)
            .collect();

        ShardedSystem {
            config: c,
            partitions,
            broker,
            workers,
            proxies: proxy_threads,
            shards: shard_threads,
            queries: HashMap::new(),
            initializer: Initializer::new(),
            now_ms: 0,
            next_serial: 1,
            pending: Vec::new(),
            spare_shells: Vec::new(),
            pending_recycle: vec![Vec::new(); c.shards],
            busy: BusyProfile::new(c.workers, c.proxies as usize, c.shards),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker threads: own a slice of the client population.

enum WorkerCmd {
    LoadNumeric {
        table: String,
        column: String,
        f: Arc<dyn Fn(usize) -> f64 + Send + Sync>,
    },
    LoadRows {
        table: String,
        schema: Schema,
        f: Arc<dyn Fn(usize) -> Vec<Vec<Value>> + Send + Sync>,
    },
    Answer {
        query: Query,
        params: ExecutionParams,
        ts: Timestamp,
    },
    Shutdown,
}

enum WorkerReply {
    Loaded,
    Answered {
        /// Messages (participating clients) sent, per partition.
        /// Always present — even on error, the shares sent before the
        /// failing client are in the broker and must be accounted for.
        per_partition: Vec<u64>,
        /// The first client-side error, if any (the worker stops at
        /// the first failing client).
        error: Option<CoreError>,
        busy: Duration,
    },
}

struct WorkerHandle {
    cmd: Sender<WorkerCmd>,
    reply: Receiver<WorkerReply>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Spawns worker `w`, owning clients `{i : i % workers == w}`.
    /// Client identities (id, RNG seed) are exactly
    /// [`System`](crate::System)'s, so per-client streams match the
    /// single-threaded harness seed for seed.
    fn spawn(w: usize, c: &ShardedConfig, partitions: usize, broker: &Broker) -> WorkerHandle {
        let (cmd_tx, cmd_rx) = channel::<WorkerCmd>();
        let (reply_tx, reply_rx) = channel::<WorkerReply>();
        let producer = broker.producer();
        let (workers, clients, seed, key, n_proxies) = (
            c.workers,
            c.clients,
            c.seed,
            c.analyst_key,
            c.proxies as usize,
        );
        let thread = std::thread::Builder::new()
            .name(format!("pa-worker-{w}"))
            .spawn(move || {
                let mut owned: Vec<(usize, Client)> = (0..clients)
                    .filter(|i| (*i as usize) % workers == w)
                    .map(|i| (i as usize, Client::new(ClientId(i), seed, key)))
                    .collect();
                let mut scratch = ClientScratch::new();
                let in_topics: Vec<String> = (0..n_proxies)
                    .map(|pi| inbound_topic(ProxyId(pi as u16)))
                    .collect();
                let mut per_partition = vec![0u64; partitions];
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        WorkerCmd::LoadNumeric { table, column, f } => {
                            for (i, client) in &mut owned {
                                let db = client.db_mut();
                                db.create_table(
                                    &table,
                                    Schema::new(vec![
                                        ("ts", ColumnType::Int),
                                        (column.as_str(), ColumnType::Float),
                                    ]),
                                );
                                db.insert(&table, vec![Value::Int(0), Value::Float(f(*i))])
                                    .expect("schema arity");
                            }
                            let _ = reply_tx.send(WorkerReply::Loaded);
                        }
                        WorkerCmd::LoadRows { table, schema, f } => {
                            for (i, client) in &mut owned {
                                let db = client.db_mut();
                                db.create_table(&table, schema.clone());
                                for row in f(*i) {
                                    db.insert(&table, row).expect("schema arity");
                                }
                            }
                            let _ = reply_tx.send(WorkerReply::Loaded);
                        }
                        WorkerCmd::Answer { query, params, ts } => {
                            let t0 = thread_busy_time();
                            per_partition.iter_mut().for_each(|n| *n = 0);
                            let mut failure = None;
                            for (i, client) in &mut owned {
                                match client.answer_query_into(
                                    &query,
                                    &params,
                                    n_proxies,
                                    &mut scratch,
                                ) {
                                    Ok(None) => {}
                                    Ok(Some(shares)) => {
                                        let partition = *i % partitions;
                                        for (pi, share) in shares.iter().enumerate() {
                                            producer.send_to(
                                                &in_topics[pi],
                                                partition,
                                                Some(share.mid.to_bytes().to_vec()),
                                                &share.payload[..],
                                                ts,
                                            );
                                        }
                                        per_partition[partition] += 1;
                                    }
                                    Err(e) => {
                                        failure = Some(e);
                                        break;
                                    }
                                }
                            }
                            let busy = thread_busy_time().saturating_sub(t0);
                            // Counts always travel with the reply,
                            // error or not: shares sent *before* a
                            // failing client are already in the
                            // broker, and the main thread must drain
                            // them through the pipeline so a later
                            // epoch starts from clean topics.
                            let _ = reply_tx.send(WorkerReply::Answered {
                                per_partition: per_partition.clone(),
                                error: failure,
                                busy,
                            });
                        }
                        WorkerCmd::Shutdown => break,
                    }
                }
            })
            .expect("spawn worker thread");
        WorkerHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
        }
    }
}

// ---------------------------------------------------------------------------
// Proxy threads: partition-preserving relays.

enum ProxyCmd {
    Drain { expect: u64 },
    Shutdown,
}

struct ProxyReply {
    forwarded: u64,
    busy: Duration,
}

struct ProxyHandle {
    cmd: Sender<ProxyCmd>,
    reply: Receiver<ProxyReply>,
    thread: Option<JoinHandle<()>>,
}

impl ProxyHandle {
    fn spawn(mut proxy: Proxy) -> ProxyHandle {
        let (cmd_tx, cmd_rx) = channel::<ProxyCmd>();
        let (reply_tx, reply_rx) = channel::<ProxyReply>();
        let thread = std::thread::Builder::new()
            .name(format!("pa-proxy-{}", proxy.id().0))
            .spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        ProxyCmd::Drain { expect } => {
                            let t0 = thread_busy_time();
                            let mut forwarded = 0u64;
                            let deadline = Instant::now() + DRAIN_DEADLINE;
                            while forwarded < expect && Instant::now() < deadline {
                                forwarded += proxy.pump_blocking(DRAIN_WAIT);
                            }
                            let _ = reply_tx.send(ProxyReply {
                                forwarded,
                                busy: thread_busy_time().saturating_sub(t0),
                            });
                        }
                        ProxyCmd::Shutdown => break,
                    }
                }
            })
            .expect("spawn proxy thread");
        ProxyHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard threads: join ⟂ decode ⟂ window over owned partitions.

enum ShardCmd {
    Register {
        query: Box<Query>,
        params: ExecutionParams,
        population: u64,
    },
    Drain {
        expect: u64,
        watermark: Timestamp,
        /// Estimators coming home from the previous epoch's merge.
        recycle: Vec<BucketEstimator>,
    },
    Shutdown,
}

enum ShardReply {
    Registered,
    Drained {
        decoded: u64,
        windows: Vec<RawWindow>,
        /// `(undecodable, unroutable, duplicates, expired_joins)`.
        health: (u64, u64, u64, u64),
        busy: Duration,
    },
}

struct ShardHandle {
    cmd: Sender<ShardCmd>,
    reply: Receiver<ShardReply>,
    thread: Option<JoinHandle<()>>,
}

impl ShardHandle {
    fn spawn(mut agg: Aggregator) -> ShardHandle {
        let (cmd_tx, cmd_rx) = channel::<ShardCmd>();
        let (reply_tx, reply_rx) = channel::<ShardReply>();
        let thread = std::thread::Builder::new()
            .name("pa-shard".to_string())
            .spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    match cmd {
                        ShardCmd::Register {
                            query,
                            params,
                            population,
                        } => {
                            agg.register_query(&query, params, population);
                            let _ = reply_tx.send(ShardReply::Registered);
                        }
                        ShardCmd::Drain {
                            expect,
                            watermark,
                            recycle,
                        } => {
                            let t0 = thread_busy_time();
                            for est in recycle {
                                agg.release_estimator(est);
                            }
                            let mut decoded = 0u64;
                            let deadline = Instant::now() + DRAIN_DEADLINE;
                            while decoded < expect && Instant::now() < deadline {
                                decoded += agg.pump_blocking(DRAIN_WAIT);
                            }
                            let mut windows = Vec::new();
                            agg.advance_watermark_raw_into(watermark, &mut windows);
                            let _ = reply_tx.send(ShardReply::Drained {
                                decoded,
                                windows,
                                health: (
                                    agg.undecodable(),
                                    agg.unroutable(),
                                    agg.duplicates(),
                                    agg.expired_joins(),
                                ),
                                busy: thread_busy_time().saturating_sub(t0),
                            });
                        }
                        ShardCmd::Shutdown => break,
                    }
                }
            })
            .expect("spawn shard thread");
        ShardHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
        }
    }
}

// ---------------------------------------------------------------------------
// The deployment.

/// Accumulated per-thread CPU time over a deployment's lifetime —
/// the instrumentation behind machine-level throughput reporting
/// (see [`thread_busy_time`]).
#[derive(Debug, Clone)]
pub struct BusyProfile {
    /// Per client-worker CPU time in the answer stage.
    pub workers: Vec<Duration>,
    /// Per proxy-thread CPU time in the forward stage.
    pub proxies: Vec<Duration>,
    /// Per shard-thread CPU time in the drain/close stage.
    pub shards: Vec<Duration>,
}

impl BusyProfile {
    fn new(workers: usize, proxies: usize, shards: usize) -> BusyProfile {
        BusyProfile {
            workers: vec![Duration::ZERO; workers],
            proxies: vec![Duration::ZERO; proxies],
            shards: vec![Duration::ZERO; shards],
        }
    }

    /// The critical path of one barrier-synchronized pass:
    /// `max(workers) + max(proxies) + max(shards)` — what the epoch
    /// costs when every thread has its own core.
    pub fn critical_path(&self) -> Duration {
        let max = |v: &[Duration]| v.iter().copied().max().unwrap_or(Duration::ZERO);
        max(&self.workers) + max(&self.proxies) + max(&self.shards)
    }
}

/// A threaded, sharded in-process PrivApprox deployment (see the
/// module docs for topology and guarantees). Drives the same
/// query-epoch surface as [`System`](crate::System) — `analyst()`,
/// `load_*`, `run_epoch`, `drain_results` — and produces byte-identical
/// results.
pub struct ShardedSystem {
    config: ShardedConfig,
    partitions: usize,
    broker: Broker,
    workers: Vec<WorkerHandle>,
    proxies: Vec<ProxyHandle>,
    shards: Vec<ShardHandle>,
    queries: HashMap<QueryId, (Query, ExecutionParams)>,
    initializer: Initializer,
    /// The shared event clock, advanced exactly like `System`'s.
    now_ms: u64,
    next_serial: u32,
    /// Closed, merged windows not yet returned.
    pending: Vec<QueryResult>,
    /// Recycled result shells for the merge step.
    spare_shells: Vec<QueryResult>,
    /// Estimators consumed by the last merge, owed back to each shard
    /// with its next drain command.
    pending_recycle: Vec<Vec<BucketEstimator>>,
    /// Cumulative per-thread busy time.
    busy: BusyProfile,
}

impl ShardedSystem {
    /// Starts building a deployment.
    pub fn builder() -> ShardedSystemBuilder {
        ShardedSystemBuilder::default()
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Replaces the initializer (e.g. to set a privacy ceiling).
    pub fn set_initializer(&mut self, init: Initializer) {
        self.initializer = init;
    }

    /// The partition a client is pinned to: `c mod partitions`.
    pub fn partition_of(&self, client: u64) -> usize {
        (client % self.partitions as u64) as usize
    }

    /// The shard owning a partition under the group assignment
    /// (`p mod shards` — shards joined the group in order, so rank
    /// equals shard index).
    pub fn shard_of_partition(&self, partition: usize) -> usize {
        partition % self.config.shards
    }

    /// Populates every client with a one-row table holding a numeric
    /// column, exactly like
    /// [`System::load_numeric_column`](crate::System::load_numeric_column).
    pub fn load_numeric_column<F>(&mut self, table: &str, column: &str, f: F)
    where
        F: Fn(usize) -> f64 + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn(usize) -> f64 + Send + Sync> = Arc::new(f);
        for w in &self.workers {
            w.cmd
                .send(WorkerCmd::LoadNumeric {
                    table: table.to_string(),
                    column: column.to_string(),
                    f: Arc::clone(&f),
                })
                .expect("worker alive");
        }
        for w in &self.workers {
            match w.reply.recv().expect("worker alive") {
                WorkerReply::Loaded => {}
                WorkerReply::Answered { .. } => unreachable!("load expects Loaded"),
            }
        }
    }

    /// Populates every client with arbitrary rows, exactly like
    /// [`System::load_rows`](crate::System::load_rows).
    pub fn load_rows<F>(&mut self, table: &str, schema: Schema, f: F)
    where
        F: Fn(usize) -> Vec<Vec<Value>> + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn(usize) -> Vec<Vec<Value>> + Send + Sync> = Arc::new(f);
        for w in &self.workers {
            w.cmd
                .send(WorkerCmd::LoadRows {
                    table: table.to_string(),
                    schema: schema.clone(),
                    f: Arc::clone(&f),
                })
                .expect("worker alive");
        }
        for w in &self.workers {
            match w.reply.recv().expect("worker alive") {
                WorkerReply::Loaded => {}
                WorkerReply::Answered { .. } => unreachable!("load expects Loaded"),
            }
        }
    }

    /// Opens an analyst session for query submission.
    pub fn analyst(&mut self) -> ShardedAnalystSession<'_> {
        ShardedAnalystSession {
            system: self,
            sql: String::new(),
            buckets: None,
            budget: Budget::default_accuracy(),
            window: None,
            explicit_params: None,
        }
    }

    /// The execution parameters currently assigned to a query.
    pub fn params(&self, id: QueryId) -> Option<ExecutionParams> {
        self.queries.get(&id).map(|(_, p)| *p)
    }

    /// Registers a signed query with explicit parameters on every
    /// shard (the lower-level path under
    /// [`ShardedAnalystSession::submit`]).
    pub fn register(&mut self, query: Query, params: ExecutionParams) {
        for shard in &self.shards {
            shard
                .cmd
                .send(ShardCmd::Register {
                    query: Box::new(query.clone()),
                    params,
                    population: self.config.clients,
                })
                .expect("shard alive");
        }
        for shard in &self.shards {
            match shard.reply.recv().expect("shard alive") {
                ShardReply::Registered => {}
                ShardReply::Drained { .. } => unreachable!("register expects Registered"),
            }
        }
        self.queries.insert(query.id, (query, params));
    }

    /// Runs one epoch of a query across the threaded pipeline:
    /// workers answer in parallel, proxy threads forward, shards
    /// join/decode/window concurrently, and the epoch's windows are
    /// merged into single results.
    ///
    /// Returns the epoch's windowed result — byte-identical to what
    /// [`System::run_epoch`](crate::System::run_epoch) returns for
    /// the same configuration and seed.
    pub fn run_epoch(&mut self, query: &Query) -> Result<QueryResult, CoreError> {
        let (_, params) = *self.queries.get(&query.id).ok_or(CoreError::UnknownQuery)?;
        let window_size = query.window.size;
        let epoch_start = self.now_ms.div_ceil(window_size) * window_size;
        let ts = Timestamp(epoch_start + window_size / 2);
        let watermark = Timestamp(epoch_start + window_size);
        self.now_ms = watermark.0;

        // Stage 1: workers answer their client slices in parallel.
        for w in &self.workers {
            w.cmd
                .send(WorkerCmd::Answer {
                    query: query.clone(),
                    params,
                    ts,
                })
                .expect("worker alive");
        }
        let mut per_partition = vec![0u64; self.partitions];
        let mut first_error = None;
        for (wi, w) in self.workers.iter().enumerate() {
            match w.reply.recv().expect("worker alive") {
                WorkerReply::Answered {
                    per_partition: counts,
                    error,
                    busy,
                } => {
                    self.busy.workers[wi] += busy;
                    for (total, n) in per_partition.iter_mut().zip(&counts) {
                        *total += n;
                    }
                    if let Some(e) = error {
                        first_error = first_error.or(Some(e));
                    }
                }
                WorkerReply::Loaded => unreachable!("answer expects Answered"),
            }
        }
        // Even when a client errored, stages 2–4 still run: the
        // shares sent before the failure are already in the broker,
        // and draining them through proxies and shards is what lets a
        // *later* epoch start from clean topics and consistent
        // counts. Their (partial) windows close below and surface via
        // `drain_results` — mirroring `System`, where shares sent
        // before a failing client also reach the aggregator on the
        // next pump. The error is returned after cleanup.
        let participants: u64 = per_partition.iter().sum();

        // Stage 2: every proxy forwards one share per participant.
        for p in &self.proxies {
            p.cmd
                .send(ProxyCmd::Drain {
                    expect: participants,
                })
                .expect("proxy alive");
        }
        for (pi, p) in self.proxies.iter().enumerate() {
            let reply = p.reply.recv().expect("proxy alive");
            self.busy.proxies[pi] += reply.busy;
            assert_eq!(
                reply.forwarded, participants,
                "proxy {pi} drain incomplete: {}/{} shares forwarded",
                reply.forwarded, participants
            );
        }

        // Stage 3: shards drain their partitions and close windows.
        // A shard's expectation: every message in the partitions the
        // group assignment gives it (`p % shards == rank`).
        let expects: Vec<u64> = (0..self.config.shards)
            .map(|s| {
                per_partition
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| p % self.config.shards == s)
                    .map(|(_, n)| n)
                    .sum()
            })
            .collect();
        for (s, shard) in self.shards.iter().enumerate() {
            shard
                .cmd
                .send(ShardCmd::Drain {
                    expect: expects[s],
                    watermark,
                    recycle: std::mem::take(&mut self.pending_recycle[s]),
                })
                .expect("shard alive");
        }
        // Stage 4: merge shard-local windows into single results.
        let mut merged: Vec<(QueryId, Window, BucketEstimator, usize)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            match shard.reply.recv().expect("shard alive") {
                ShardReply::Drained {
                    decoded,
                    windows,
                    health: _,
                    busy,
                } => {
                    self.busy.shards[s] += busy;
                    assert_eq!(
                        decoded, expects[s],
                        "shard {s} drain incomplete: {decoded}/{} answers decoded",
                        expects[s]
                    );
                    for rw in windows {
                        match merged
                            .iter_mut()
                            .find(|(q, w, _, _)| *q == rw.query && *w == rw.window)
                        {
                            Some((_, _, est, _)) => {
                                est.merge(&rw.estimator);
                                self.pending_recycle[s].push(rw.estimator);
                            }
                            None => merged.push((rw.query, rw.window, rw.estimator, s)),
                        }
                    }
                }
                ShardReply::Registered => unreachable!("drain expects Drained"),
            }
        }
        merged.sort_unstable_by_key(|(q, w, _, _)| (w.start, q.to_u64()));
        for (qid, window, est, src) in merged {
            let (_, qparams) = self.queries.get(&qid).expect("registered query");
            let mut shell = self.spare_shells.pop().unwrap_or_else(QueryResult::shell);
            finalize_window_into(
                &mut shell,
                qid,
                window,
                &est,
                *qparams,
                self.config.clients,
                self.config.confidence,
            );
            self.pending.push(shell);
            self.pending_recycle[src].push(est);
        }

        // Cleanup complete; now surface the epoch's client error.
        if let Some(e) = first_error {
            return Err(e);
        }
        let idx = self
            .pending
            .iter()
            .rposition(|r| r.query == query.id)
            .ok_or(CoreError::UnknownQuery)?;
        Ok(self.pending.remove(idx))
    }

    /// Drains any additional closed windows (sliding-window queries
    /// emit several per epoch).
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        std::mem::take(&mut self.pending)
    }

    /// Returns consumed results to the merge step's shell pool.
    pub fn recycle_results(&mut self, consumed: &mut Vec<QueryResult>) {
        self.spare_shells.append(consumed);
    }

    /// Broker traffic counters.
    pub fn broker_stats(&self) -> BrokerStats {
        self.broker.stats()
    }

    /// Aggregated shard health counters: `(undecodable, unroutable,
    /// duplicates, expired_joins)` summed across shards.
    pub fn aggregator_health(&mut self) -> (u64, u64, u64, u64) {
        // Health rides the drain replies; ask for an empty drain.
        let mut totals = (0, 0, 0, 0);
        for shard in &self.shards {
            shard
                .cmd
                .send(ShardCmd::Drain {
                    expect: 0,
                    watermark: Timestamp(self.now_ms),
                    recycle: Vec::new(),
                })
                .expect("shard alive");
        }
        for (s, shard) in self.shards.iter().enumerate() {
            match shard.reply.recv().expect("shard alive") {
                ShardReply::Drained {
                    windows,
                    health,
                    busy,
                    ..
                } => {
                    self.busy.shards[s] += busy;
                    // The watermark hasn't advanced past the last
                    // epoch's, so no window can close here; anything
                    // else would mean silently dropped counts and a
                    // leaked estimator.
                    assert!(
                        windows.is_empty(),
                        "health probe closed {} windows on shard {s}",
                        windows.len()
                    );
                    totals.0 += health.0;
                    totals.1 += health.1;
                    totals.2 += health.2;
                    totals.3 += health.3;
                }
                ShardReply::Registered => unreachable!(),
            }
        }
        totals
    }

    /// Cumulative per-thread CPU time per stage (the machine-level
    /// throughput instrumentation; see [`thread_busy_time`]).
    pub fn busy_profile(&self) -> &BusyProfile {
        &self.busy
    }
}

impl Drop for ShardedSystem {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.cmd.send(WorkerCmd::Shutdown);
        }
        for p in &self.proxies {
            let _ = p.cmd.send(ProxyCmd::Shutdown);
        }
        for s in &self.shards {
            let _ = s.cmd.send(ShardCmd::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
        for p in &mut self.proxies {
            if let Some(t) = p.thread.take() {
                let _ = t.join();
            }
        }
        for s in &mut self.shards {
            if let Some(t) = s.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// A fluent analyst session against a [`ShardedSystem`] — the same
/// SQL → buckets → budget → submit surface as
/// [`AnalystSession`](crate::system::AnalystSession), registering the
/// query on every shard.
pub struct ShardedAnalystSession<'a> {
    system: &'a mut ShardedSystem,
    sql: String,
    buckets: Option<AnswerSpec>,
    budget: Budget,
    window: Option<(u64, u64)>,
    explicit_params: Option<ExecutionParams>,
}

impl<'a> ShardedAnalystSession<'a> {
    /// Sets the SQL text.
    pub fn query(mut self, sql: impl Into<String>) -> Self {
        self.sql = sql.into();
        self
    }

    /// Sets the answer format `A[n]`.
    pub fn buckets(mut self, spec: AnswerSpec) -> Self {
        self.buckets = Some(spec);
        self
    }

    /// Sets the execution budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets sliding-window parameters `(w, δ)` in milliseconds.
    pub fn window(mut self, size: u64, slide: u64) -> Self {
        self.window = Some((size, slide));
        self
    }

    /// Bypasses the initializer with explicit `(s, p, q)`.
    pub fn params(mut self, params: ExecutionParams) -> Self {
        self.explicit_params = Some(params);
        self
    }

    /// Signs, registers (on every shard) and distributes the query;
    /// returns it. Serial assignment matches
    /// [`System`](crate::System) so the same submission order yields
    /// the same `QueryId`s.
    pub fn submit(self) -> Result<Query, CoreError> {
        let spec = self.buckets.ok_or_else(|| {
            CoreError::InfeasibleBudget("query needs an answer bucket spec".into())
        })?;
        let (w, d) = self.window.unwrap_or((60_000, 60_000));
        let sys = self.system;
        let id = QueryId::new(AnalystId(1), sys.next_serial);
        sys.next_serial += 1;
        let query = QueryBuilder::new(id, self.sql)
            .answer(spec)
            .window(w, d)
            .sign_and_build(sys.config.analyst_key);
        let params = match self.explicit_params {
            Some(p) => p,
            None => sys.initializer.derive(&self.budget, sys.config.clients)?,
        };
        sys.register(query.clone(), params);
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_spec() -> AnswerSpec {
        AnswerSpec::ranges_with_overflow(0.0, 110.0, 11)
    }

    #[test]
    fn sharded_end_to_end_exact_mode() {
        let mut system = ShardedSystem::builder()
            .clients(200)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(1)
            .build();
        system.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 200);
        assert_eq!(result.population, 200);
        let total: f64 = result.buckets.iter().map(|b| b.estimate).sum();
        assert_eq!(total, 200.0);
        for b in 0..9 {
            assert_eq!(result.buckets[b].estimate, 20.0, "bucket {b}");
        }
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_epochs_advance_windows() {
        let mut system = ShardedSystem::builder()
            .clients(60)
            .proxies(2)
            .shards(4)
            .workers(3)
            .seed(4)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let r1 = system.run_epoch(&query).unwrap();
        let r2 = system.run_epoch(&query).unwrap();
        assert!(r2.window.start > r1.window.start);
        assert_eq!(r1.sample_size, 60);
        assert_eq!(r2.sample_size, 60);
        // Threads did real work on every stage.
        let busy = system.busy_profile();
        assert!(busy.workers.iter().any(|d| !d.is_zero()));
        assert!(busy.critical_path() > Duration::ZERO);
    }

    #[test]
    fn sharded_single_shard_degenerates_to_plain_pipeline() {
        let mut system = ShardedSystem::builder()
            .clients(50)
            .proxies(3)
            .shards(1)
            .workers(1)
            .seed(9)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 50);
        assert_eq!(result.buckets[1].estimate, 50.0);
    }

    #[test]
    fn sharded_partition_affinity_is_total() {
        let system = ShardedSystem::builder()
            .clients(10)
            .proxies(2)
            .shards(3)
            .partitions(6)
            .build();
        // Every client maps to a partition, every partition to a
        // shard, and the shard set is exhaustive.
        let mut shards_seen = std::collections::HashSet::new();
        for c in 0..10 {
            let p = system.partition_of(c);
            assert!(p < 6);
            shards_seen.insert(system.shard_of_partition(p));
        }
        assert_eq!(shards_seen.len(), 3);
    }

    #[test]
    fn sharded_shape_adopts_cluster_tiers() {
        let shape = DeploymentShape::single_node(2, 4);
        let system = ShardedSystem::builder().clients(10).shape(shape).build();
        assert_eq!(system.config().proxies, 2);
        assert_eq!(system.config().shards, 4);
        assert_eq!(system.config().workers, 4);
    }

    /// A failed epoch (one client errors mid-population) must not
    /// poison the pipeline: the shares sent before the failure drain
    /// through proxies and shards as cleanup, so the next epoch runs
    /// from clean topics and exact counts instead of tripping the
    /// drain asserts on stale records.
    #[test]
    fn sharded_failed_epoch_cleans_up_for_the_next() {
        let mut system = ShardedSystem::builder()
            .clients(40)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(3)
            .build();
        // Client 25 holds an unbucketizable (negative) speed.
        system.load_numeric_column("vehicle", "speed", |i| if i == 25 { -5.0 } else { 15.0 });
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        assert!(matches!(
            system.run_epoch(&query),
            Err(CoreError::Unbucketizable(_))
        ));
        // The failure epoch's partial window surfaces via drain, not
        // silently: some clients answered before the bad one.
        let partial = system.drain_results();
        assert_eq!(partial.len(), 1);
        assert!(partial[0].sample_size < 40);
        // Repair the data; the next epoch is exact and complete.
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 40);
        assert_eq!(result.buckets[1].estimate, 40.0);
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_unknown_query_is_rejected() {
        let mut system = ShardedSystem::builder().clients(10).build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0);
        let foreign =
            QueryBuilder::new(QueryId::new(AnalystId(1), 999), "SELECT speed FROM vehicle")
                .answer(speed_spec())
                .sign_and_build(system.config().analyst_key);
        assert_eq!(
            system.run_epoch(&foreign).unwrap_err(),
            CoreError::UnknownQuery
        );
    }
}

//! The threaded, sharded deployment runtime — **overlapped epochs**.
//!
//! [`System`](crate::System) is the deterministic *epoch-at-a-time*
//! harness: one thread walks clients → proxies → aggregator in
//! sequence, so every BENCH number it produces is per-core.
//! [`ShardedSystem`] is the same deployment run the way the paper
//! runs it (§5): **N proxy relay threads** and **M aggregator
//! shards** over *partitioned* broker topics, fed by a pool of client
//! worker threads — and, since the pipelined runtime, the stages run
//! **continuously and concurrently** instead of lock-stepping behind
//! per-epoch barriers.
//!
//! # Topology and partition affinity
//!
//! ```text
//! worker threads ──send_to(partition π(c))──► proxy-i-in[π(c)]   (i = 0..n)
//! proxy thread i ──partition-preserving─────► proxy-i-out[π(c)]   (free-running)
//! shard thread s (owns {p : p % M == s}) ───► join ⟂ decode ⟂ window (free-running)
//! main ──Close(epoch) → merge counts────────► finalize → QueryResult
//! ```
//!
//! Every client `c` is pinned to partition `π(c) = c mod P`; all `n`
//! of its XOR shares travel in partition `π(c)` of their respective
//! proxy topics (proxies forward partition-preserving), and the
//! broker's consumer-group assignment hands partition `π(c)` of
//! *every* proxy-out topic to the same shard — so each MID's shares
//! join **shard-locally**, with no cross-shard traffic before the
//! window merge.
//!
//! # The overlapped pipeline
//!
//! The pre-pipelined runtime ran a global three-phase barrier per
//! epoch (all workers answer → all proxies drain → all shards drain),
//! so the epoch's critical path *summed* the stage maxima. Now:
//!
//! * **proxy threads free-run**: they forward whatever arrives,
//!   whenever it arrives, with no per-epoch commands at all — a relay
//!   has no epoch state to synchronize;
//! * **shard threads free-run**: they continuously join/decode/window
//!   records, counting completed decodes **per epoch tag** (the
//!   answer timestamp, which identifies its epoch); an epoch is
//!   closed by a `Close{epoch, expect, watermark}` control message,
//!   which the shard satisfies as soon as its in-flight accounting
//!   shows all `expect` answers tagged with that epoch have been
//!   decoded — records of *later* epochs may already be flowing
//!   through the same shard and are simply accounted under their own
//!   tags;
//! * **the main thread pipelines epochs**: [`ShardedSystem::submit_epoch`]
//!   dispatches epoch `k+1` to the workers without waiting for epoch
//!   `k` to drain, up to the configured
//!   [pipeline depth](ShardedSystemBuilder::pipeline_depth); worker
//!   replies, shard closes and the cross-shard merge happen when the
//!   epoch *completes* (lazily, oldest first).
//!
//! Per-partition **backpressure** (see
//! [`ShardedSystemBuilder::partition_capacity`]) bounds how far a
//! fast stage can run ahead of a slow one in records, on top of the
//! epoch-granular bound the pipeline depth provides — epoch `k+1`'s
//! workers park in the broker instead of flooding a shard still
//! draining epoch `k`.
//!
//! Why the epoch tag is sufficient: within one partition the broker
//! is FIFO **per producer**, but epoch `k+1` shares from one worker
//! may overtake epoch `k` shares from another, so a simple cumulative
//! message count cannot tell a shard when epoch `k` is fully drained.
//! The timestamp does: every answer of an epoch carries that epoch's
//! event timestamp, the timestamps are strictly increasing across
//! submitted epochs, and the per-tag counters are exact regardless of
//! interleaving. Closing epochs in submission order then guarantees
//! every window the watermark sweeps is complete: sliding windows
//! only ever close once every epoch overlapping them has been
//! accounted (earlier epochs closed earlier, later epochs only live
//! in windows ending after this watermark).
//!
//! # Determinism and equivalence
//!
//! `ShardedSystem` produces **byte-identical** `QueryResult`s to
//! `System` for the same configuration, seed for seed, at any shard
//! count *and any pipeline depth*. Four properties compose into that
//! guarantee:
//!
//! 1. every client's answer is a pure function of its own RNG stream
//!    ([`Randomizer::randomize_vec_forked`](privapprox_rr::randomize::Randomizer::randomize_vec_forked)
//!    re-forks the bulk generator per call), so processing order,
//!    scratch sharing and epoch overlap are irrelevant;
//! 2. window accumulation is commutative counting, so the partition
//!    of answers across shards — and the interleaving of epochs
//!    within a shard — is irrelevant;
//! 3. watermarks advance in epoch order and only after the epoch's
//!    in-flight accounting settles, so every closed window saw
//!    exactly the answers the single-threaded run folds; and
//! 4. estimation ([`finalize_window_into`]) is a pure function of the
//!    merged counts, so summing shard-local counts and finalizing
//!    once equals finalizing a single aggregator's counts.
//!
//! The equivalence is pinned by `tests/sharded_equivalence.rs` across
//! seeds × bucket widths × proxies × shards × **pipeline depths**,
//! including a straggler-shard stress where one shard is artificially
//! delayed while the workers run epochs ahead.
//!
//! # Steady-state allocation
//!
//! Each shard keeps the single-aggregator guarantees: decode scratch,
//! pooled estimators, recycled result shells, allocation-free broker
//! polls. The per-epoch in-flight accounting is a bounded scan list
//! (one entry per epoch concurrently in flight), so the overlapped
//! steady state performs no per-message heap allocation either
//! (extended proof in `crates/core/tests/alloc_steady_state.rs`).
//! Per-epoch *control* traffic (channel messages, reply vectors) is
//! deliberately outside that budget — it is O(threads) per epoch,
//! not O(messages).
//!
//! # Failure model (supervised runtime)
//!
//! Every deployment thread runs under a supervisor: panics are caught
//! ([`std::panic::catch_unwind`]), recorded in a crash log, surfaced
//! as typed [`DeployError`]s from the epoch API (never hangs), and —
//! by default — the dead thread is **respawned**:
//!
//! * a **worker** respawns with the same index, hence the same client
//!   ids and RNG seeds, and replays the command history — loads for
//!   real, past answers muted — so its clients' tables are rebuilt
//!   and their RNG streams resume byte-identically where the dead
//!   worker's stopped;
//! * a **shard** respawns by rejoining the `"aggregator"` consumer
//!   group — committed offsets persist across membership changes, so
//!   the replacement resumes exactly where the dead shard stopped
//!   (no replay, no loss beyond what died in its windows) — and is
//!   pre-registered with every live query;
//! * a **proxy** respawns onto its own single-member group, resuming
//!   from the committed offset.
//!
//! Epoch closes carry a **deadline**
//! ([`ShardedSystemBuilder::epoch_deadline`]): a close that cannot
//! account for all expected answers in time fires anyway with the
//! decodes at hand — a *partial close*. The estimate stays unbiased
//! because [`finalize_window_into`] scales by `U/n` with `n` the
//! answers actually observed: losing answers degrades the deployment
//! to a smaller effective sampling fraction with a correspondingly
//! wider confidence interval (degrade-to-sampling), never a biased
//! number. Partial closes and lost answers are counted in
//! [`DeployHealth`].
//!
//! Epoch-completion accounting is **global**, not per shard: every
//! decode bumps a shared epoch ledger keyed by epoch tag, and a
//! close is satisfied when the ledger reaches the epoch's total
//! expectation. This keeps closes correct across respawns, where the
//! consumer group's partition → shard assignment reshuffles.
//!
//! Poisoned input (malformed keys, undecodable or unroutable
//! payloads) is quarantined to a dead-letter topic (see
//! [`Aggregator::set_dead_letter`]) and counted, and every thread
//! carries a [`Heartbeat`] surfaced through
//! [`ShardedSystem::thread_health`].

use crate::aggregator::{finalize_window_into, Aggregator, QueryResult, RawWindow};
use crate::client::{Client, ClientScratch};
use crate::error::{CoreError, DeployError};
use crate::feedback::FeedbackController;
use crate::historical::Warehouse;
use crate::initializer::Initializer;
use crate::persist::{
    self, persist_err, CloseRecord, DurableState, OpenEpoch, RecoveredState, SnapshotContents,
};
use crate::proxy::{inbound_topic, outbound_topic, Proxy};
use crate::remote::{self, NodeChild};
use privapprox_store::wal::DEFAULT_SEGMENT_BYTES;
use privapprox_cluster::wire::{decode_data_batch, decode_progress, DataMsg};
use privapprox_cluster::{
    DeploymentShape, FaultPlan, Frame, FrameKind, Heartbeat, HeartbeatStatus, LinkStats,
    SupervisedLink, Watchdog,
};
use privapprox_rr::estimate::BucketEstimator;
use privapprox_rr::privacy::epsilon_zk;
use privapprox_sql::{ColumnType, Schema, Value};
use privapprox_crypto::xor::SlotPool;
use privapprox_stream::broker::{BatchEntry, Broker, BrokerStats, Consumer, Record, TopicWriter};
use privapprox_types::ids::AnalystId;
use privapprox_types::{
    AnswerSpec, BitVec, Budget, BudgetLedger, ClientId, ExecutionParams, MessageId, PrivacyBudget,
    ProxyId, Query, QueryBuilder, QueryId, Timestamp, Window,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default epoch deadline: how long a shard waits for an epoch's
/// expected in-flight records before closing partially with what it
/// has — a liveness backstop under correct operation, the
/// degrade-to-sampling trigger under faults. Configurable via
/// [`ShardedSystemBuilder::epoch_deadline`].
const DEFAULT_EPOCH_DEADLINE: Duration = Duration::from_secs(60);

/// Topic poisoned records are quarantined to (drop-oldest bounded at
/// [`DEAD_LETTER_CAP`]; same partition count as the data topics).
pub(crate) const DEAD_LETTER_TOPIC: &str = "dead-letter";

/// Dead-letter quarantine capacity per partition. A poisoned-input
/// storm evicts the *oldest* quarantined records rather than growing
/// without bound; evictions are surfaced as
/// [`DeployHealth::dead_letter_dropped`].
pub(crate) const DEAD_LETTER_CAP: usize = 4_096;

/// How often an idle worker wakes from its command wait to beat its
/// heartbeat.
const WORKER_IDLE_BEAT: Duration = Duration::from_millis(250);

/// Records a worker accumulates per (proxy topic, partition) before
/// flushing the run as one batch append — the lock-amortization
/// grain of the batched send path. Long enough to amortize the
/// partition lock and capacity check to noise, short enough that a
/// run publishes well inside an epoch (downstream blocking polls
/// re-check every ≤10 ms regardless) and the payload slot pools stay
/// small. Clamped to the topic capacity on bounded topics, since a
/// batch wider than the capacity can never publish.
const WORKER_FLUSH_RUN: usize = 64;

/// Park granularity of a free-running shard thread between control
/// checks (condvar park inside `pump_blocking_with`; close commands
/// additionally wake the park through the broker so command latency
/// is a wakeup, not a timeout).
const SHARD_PARK: Duration = Duration::from_millis(10);

/// Park granularity of a free-running proxy thread (shutdown latency
/// bound; data wakes the park immediately).
const PROXY_PARK: Duration = Duration::from_millis(50);

/// CPU time consumed by the calling thread so far (Linux:
/// `CLOCK_THREAD_CPUTIME_ID`; elsewhere falls back to wall time,
/// which over-counts blocked waits).
///
/// This is the measurement behind "machine-level" throughput claims:
/// on an unloaded multi-core machine a pinned thread's CPU time
/// equals its wall time, while on an oversubscribed box (CI
/// containers) it still reports what the thread *would* sustain on a
/// dedicated core. For the overlapped pipeline the machine rate is
/// `messages / max over all threads of CPU time` — the wall-clock of
/// the bottleneck stage when every thread has its own core —
/// documented for BENCH_5 in `docs/benchmarks.md`.
pub fn thread_busy_time() -> Duration {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: std links libc on Linux; Timespec matches the ABI
        // layout of struct timespec on 64-bit Linux.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0 {
            return Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32);
        }
    }
    wall_clock_fallback()
}

/// Wall-clock fallback for [`thread_busy_time`] on platforms without
/// a per-thread CPU clock.
fn wall_clock_fallback() -> Duration {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

// ---------------------------------------------------------------------------
// Supervision primitives.

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One caught thread panic, recorded by the supervisor wrapper
/// *before* the thread's reply channel disconnects — so the main
/// thread's recv-error path always finds the message waiting.
struct Crash {
    role: &'static str,
    index: usize,
    message: String,
}

type CrashLog = Arc<Mutex<Vec<Crash>>>;

/// Removes and returns the crash message recorded for `(role,
/// index)`, if any.
fn take_crash(crashes: &CrashLog, role: &'static str, index: usize) -> Option<String> {
    let mut log = crashes.lock().expect("crash log lock");
    let pos = log
        .iter()
        .position(|c| c.role == role && c.index == index)?;
    Some(log.remove(pos).message)
}

/// Global per-epoch decode counts, shared by every shard thread.
///
/// Closes are satisfied against the **global** count (the close
/// command carries the epoch's *total* expectation), which keeps
/// epoch accounting correct across shard respawns: a consumer-group
/// rebalance reshuffles the partition → shard assignment, so any
/// per-shard split of the expectation would go permanently stale the
/// first time a shard dies.
///
/// Shards batch their bumps (one ledger update per poll batch, not
/// per record), and the entry list is a bounded scan list — at most
/// pipeline-depth + 1 epochs are live, and the main thread retires
/// entries once an epoch fully closes — so the warm ledger costs an
/// uncontended mutex plus a ≤ depth-entry scan per batch and
/// allocates nothing.
struct EpochLedger {
    counts: Mutex<Vec<(Timestamp, u64)>>,
}

impl EpochLedger {
    fn new() -> EpochLedger {
        EpochLedger {
            counts: Mutex::new(Vec::new()),
        }
    }

    /// Adds `delta` decodes under `epoch`'s tag.
    fn add(&self, epoch: Timestamp, delta: u64) {
        let mut counts = self.counts.lock().expect("ledger lock");
        match counts.iter_mut().find(|(t, _)| *t == epoch) {
            Some((_, n)) => *n += delta,
            None => counts.push((epoch, delta)),
        }
    }

    /// Total decodes recorded under `epoch`'s tag.
    fn count(&self, epoch: Timestamp) -> u64 {
        self.counts
            .lock()
            .expect("ledger lock")
            .iter()
            .find(|(t, _)| *t == epoch)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Retires every entry tagged `epoch` or earlier (epoch tags are
    /// strictly increasing, so this also sweeps stale zombie entries
    /// from threads that died mid-publish).
    fn retire(&self, epoch: Timestamp) {
        self.counts
            .lock()
            .expect("ledger lock")
            .retain(|(t, _)| *t > epoch);
    }
}

/// Static configuration of a threaded sharded deployment.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of client devices.
    pub clients: u64,
    /// Number of proxies = relay threads (≥ 2).
    pub proxies: u16,
    /// Number of aggregator shards (≥ 1).
    pub shards: usize,
    /// Number of client worker threads (≥ 1).
    pub workers: usize,
    /// Partitions per broker topic; `0` means "same as `shards`".
    pub partitions: usize,
    /// Maximum epochs concurrently in flight (≥ 1); see
    /// [`ShardedSystemBuilder::pipeline_depth`].
    pub pipeline_depth: usize,
    /// Per-partition broker backlog bound (`0` = auto-sized to
    /// pipeline-depth + 1 epochs' worth of records); see
    /// [`ShardedSystemBuilder::partition_capacity`].
    pub partition_capacity: usize,
    /// Expected multi-tenant schedule width, used by the capacity
    /// auto-sizing (a scheduled epoch carries one record per client
    /// *per admitted query*); see
    /// [`ShardedSystemBuilder::concurrent_queries`].
    pub concurrent_queries: usize,
    /// Artificial per-close delay injected into one shard thread
    /// (test/stress hook); see [`ShardedSystemBuilder::straggler`].
    pub straggler: Option<(usize, Duration)>,
    /// Master seed for all client RNGs (same semantics as
    /// [`SystemConfig::seed`](crate::SystemConfig)).
    pub seed: u64,
    /// Confidence level for reported intervals.
    pub confidence: f64,
    /// The analyst's signing key.
    pub analyst_key: u64,
    /// How long an epoch close may wait for its expected answers
    /// before closing partially; see
    /// [`ShardedSystemBuilder::epoch_deadline`].
    pub epoch_deadline: Duration,
    /// Whether dead threads are automatically respawned; see
    /// [`ShardedSystemBuilder::auto_respawn`].
    pub auto_respawn: bool,
    /// Fault injection: worker `w` panics after sending its `n`-th
    /// answer; see [`ShardedSystemBuilder::worker_panic_after`].
    pub worker_panic_after: Option<(usize, u64)>,
    /// Fault injection: shard `s` panics after its `n`-th decode; see
    /// [`ShardedSystemBuilder::shard_panic_after`].
    pub shard_panic_after: Option<(usize, u64)>,
    /// Fault injection: workers drop (never send) every share bound
    /// for shard `s`'s partitions while still accounting the answers;
    /// see [`ShardedSystemBuilder::drop_shard_traffic`].
    pub drop_shard_traffic: Option<usize>,
    /// Ack-stall threshold before a supervised link proactively
    /// resends its unacked window; see
    /// [`ShardedSystemBuilder::link_resend_after`]. `None` keeps the
    /// link's default (250 ms).
    pub link_resend_after: Option<Duration>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            clients: 100,
            proxies: 2,
            shards: 2,
            workers: 2,
            partitions: 0,
            pipeline_depth: 2,
            partition_capacity: 0,
            concurrent_queries: 1,
            straggler: None,
            seed: 0,
            confidence: 0.95,
            analyst_key: 0x5EED_0000_CAFE,
            epoch_deadline: DEFAULT_EPOCH_DEADLINE,
            auto_respawn: true,
            worker_panic_after: None,
            shard_panic_after: None,
            drop_shard_traffic: None,
            link_resend_after: None,
        }
    }
}

impl ShardedConfig {
    /// Effective partition count (`partitions`, defaulting to
    /// `shards`).
    pub fn effective_partitions(&self) -> usize {
        if self.partitions == 0 {
            self.shards
        } else {
            self.partitions
        }
    }
}

/// How the deployment's proxies and aggregator shards are hosted.
///
/// The epoch protocol, supervision and health roll-up are identical
/// either way — [`ShardedSystem`] drives both through the same handle
/// types, and the equivalence matrix pins the process transport
/// byte-identical to in-process threads.
#[derive(Debug, Clone, Default)]
pub enum TransportMode {
    /// Proxies and shards run as supervised threads sharing this
    /// process's broker (the default).
    #[default]
    InProcess,
    /// Proxies and shards run as spawned `privapprox-node` child
    /// processes reached over loopback TCP, each behind a supervised,
    /// optionally fault-injected link (see [`crate::remote`]).
    Process {
        /// Path to the `privapprox-node` binary.
        node: PathBuf,
        /// Fault plan applied to every parent→child link's dials
        /// ([`FaultPlan::default`] = clean links).
        faults: FaultPlan,
    },
}

/// Builder for [`ShardedSystem`].
#[derive(Debug, Clone, Default)]
pub struct ShardedSystemBuilder {
    config: ShardedConfig,
    /// `Some(path)` switches the build to process transport.
    node_binary: Option<PathBuf>,
    /// Link fault plan for process transport (ignored in-process).
    link_faults: FaultPlan,
    /// `Some(dir)` enables the durable store (journal + snapshots).
    durable_dir: Option<PathBuf>,
    /// Epoch closes between snapshots (`0` = default of 8).
    snapshot_every: u64,
    /// Journal segment rotation threshold (`0` = store default).
    journal_segment_bytes: u64,
    /// Crash-injection hook: `abort()` right after the n-th submitted
    /// epoch's journal records are fsynced, before any worker send.
    crash_after_journal: Option<u64>,
}

impl ShardedSystemBuilder {
    /// Enables **durable crash recovery** backed by `dir`: budget
    /// charges are journaled (and fsynced) strictly before the
    /// debit-gated sends of every epoch, committed offsets and window
    /// high-water marks are checkpointed at each epoch close, and the
    /// full supervisor state (ledgers, schedule, muted-replay history,
    /// retained warehouses, undrained results) is snapshotted every
    /// [`snapshot_every`](ShardedSystemBuilder::snapshot_every) closes
    /// with the journal pruned beneath the snapshot floor.
    ///
    /// If `dir` already holds a store, the build loads it and the
    /// system starts **pending recovery**: re-issue the original loads
    /// (closures cannot be journaled), then call
    /// [`ShardedSystem::resume`]. Works under both the in-process and
    /// the process transport — journaling is entirely supervisor-side.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Sets how many epoch closes elapse between snapshots (default
    /// 8). `1` snapshots at every close — the exactness setting for
    /// retained-warehouse recovery; larger intervals trade a longer
    /// journal replay for less checkpoint I/O. Disk usage stays
    /// O(snapshot interval) either way: each snapshot prunes journal
    /// segments below its floor.
    pub fn snapshot_every(mut self, closes: u64) -> Self {
        self.snapshot_every = closes.max(1);
        self
    }

    /// Overrides the journal's segment rotation threshold in bytes
    /// (default 1 MiB). Small segments make the disk bound tight —
    /// pruning deletes whole segments — at the cost of more files.
    pub fn journal_segment_bytes(mut self, bytes: u64) -> Self {
        self.journal_segment_bytes = bytes.max(1 << 12);
        self
    }

    /// Crash-injection hook for the kill-9 recovery harness: the
    /// process calls [`std::process::abort`] immediately after the
    /// `epoch`-th (0-based, counted across the deployment's lifetime)
    /// submitted epoch's journal records hit disk — after the fsync
    /// barrier, **before** any worker send. This is the exact point
    /// the durability contract pivots on: the charge is spent on disk
    /// but no answer escaped.
    pub fn crash_after_journal(mut self, epoch: u64) -> Self {
        self.crash_after_journal = Some(epoch);
        self
    }
    /// Hosts proxies and shards as `privapprox-node` child processes
    /// (spawned from `node`) connected over loopback TCP instead of
    /// in-process threads. Everything else — epoch pipeline,
    /// supervision, respawn, results — behaves identically.
    pub fn process_transport(mut self, node: impl Into<PathBuf>) -> Self {
        self.node_binary = Some(node.into());
        self
    }

    /// Injects deterministic network faults (drop / duplicate / delay
    /// / reorder / cut) into every parent→child link. Only meaningful
    /// together with [`ShardedSystemBuilder::process_transport`].
    pub fn transport_faults(mut self, plan: FaultPlan) -> Self {
        self.link_faults = plan;
        self
    }
    /// Sets the client population size.
    pub fn clients(mut self, n: u64) -> Self {
        self.config.clients = n;
        self
    }

    /// Sets the number of proxies / relay threads (≥ 2).
    pub fn proxies(mut self, n: u16) -> Self {
        self.config.proxies = n;
        self
    }

    /// Sets the number of aggregator shards (≥ 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Sets the number of client worker threads (≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Sets the broker partition count (defaults to the shard count;
    /// may exceed it, in which case shards own several partitions
    /// each).
    pub fn partitions(mut self, n: usize) -> Self {
        self.config.partitions = n;
        self
    }

    /// Sets the **pipeline depth**: how many epochs may be in flight
    /// at once through [`ShardedSystem::submit_epoch`] before the
    /// oldest is completed. Depth 1 degenerates to epoch-at-a-time
    /// submission; the default of 2 lets workers populate epoch `k+1`
    /// while the shards drain epoch `k`. [`ShardedSystem::run_epoch`]
    /// always flushes, so its per-call semantics are depth-invariant.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.config.pipeline_depth = depth.max(1);
        self
    }

    /// Bounds every broker partition's backlog to `records` in-flight
    /// records: producers park when a partition is full, and consumed
    /// records are trimmed off the bounded log. This is the
    /// record-granular backpressure under the epoch-granular pipeline
    /// depth: a future epoch's workers cannot flood a shard that is
    /// still draining. Deployment topics are **always** bounded —
    /// `0` (the default) auto-sizes the bound to pipeline-depth + 1
    /// epochs' worth of records per partition.
    pub fn partition_capacity(mut self, records: usize) -> Self {
        self.config.partition_capacity = records;
        self
    }

    /// Declares how many queries the deployment expects to run
    /// concurrently (the multi-tenant schedule width, default 1).
    /// Only the capacity auto-sizing uses it: a scheduled epoch
    /// appends one record per client **per admitted query**, so the
    /// per-partition bound scales accordingly. An explicit
    /// [`ShardedSystemBuilder::partition_capacity`] overrides it.
    pub fn concurrent_queries(mut self, queries: usize) -> Self {
        self.config.concurrent_queries = queries.max(1);
        self
    }

    /// Injects an artificial delay before every epoch close on shard
    /// `shard` — the straggler-shard stress hook: workers run epochs
    /// ahead (up to the pipeline depth) while the straggler lags, and
    /// results must still be byte-identical to the single-threaded
    /// harness.
    pub fn straggler(mut self, shard: usize, delay: Duration) -> Self {
        self.config.straggler = Some((shard, delay));
        self
    }

    /// Sets the **epoch deadline**: how long a shard waits for an
    /// epoch's expected answers before closing with the decodes it
    /// has (a *partial close*). The estimate of a partial close stays
    /// unbiased — [`finalize_window_into`] scales by the answers
    /// actually observed, so losing answers widens the confidence
    /// interval exactly as a smaller sampling fraction would
    /// (degrade-to-sampling). Default 60 s.
    pub fn epoch_deadline(mut self, deadline: Duration) -> Self {
        self.config.epoch_deadline = deadline;
        self
    }

    /// Overrides how long a supervised link waits for ack progress
    /// before proactively resending its unacked window (process
    /// transport only; default 250 ms). The resend is a *loss
    /// suspicion* heuristic: on a healthy but heavily oversubscribed
    /// host (e.g. a single-core CI runner with every node process
    /// competing for the same CPU), acks can lag behind the
    /// scheduler rather than the network, and a larger threshold
    /// avoids redundant — though harmless, MID-deduplicated —
    /// resend traffic.
    pub fn link_resend_after(mut self, after: Duration) -> Self {
        self.config.link_resend_after = Some(after);
        self
    }

    /// Enables or disables automatic respawn of dead threads
    /// (default: enabled). With respawn disabled, a dead thread is
    /// reported as a [`DeployError`] and permanently retired — its
    /// clients/partitions degrade every subsequent epoch.
    pub fn auto_respawn(mut self, enabled: bool) -> Self {
        self.config.auto_respawn = enabled;
        self
    }

    /// Fault injection: worker `worker` panics immediately after
    /// sending its `answers`-th answer (counted across epochs). The
    /// hook does not survive a respawn — the fault fires once.
    pub fn worker_panic_after(mut self, worker: usize, answers: u64) -> Self {
        self.config.worker_panic_after = Some((worker, answers));
        self
    }

    /// Fault injection: shard `shard` panics on its `decodes`-th
    /// decoded answer. The hook does not survive a respawn.
    pub fn shard_panic_after(mut self, shard: usize, decodes: u64) -> Self {
        self.config.shard_panic_after = Some((shard, decodes));
        self
    }

    /// Fault injection: every worker *accounts* answers bound for
    /// shard `shard`'s partitions but never sends their shares — the
    /// deterministic straggler-loss hook behind the partial-close
    /// tests (the epoch's expectation includes the dropped answers,
    /// so the close can only fire on its deadline).
    pub fn drop_shard_traffic(mut self, shard: usize) -> Self {
        self.config.drop_shard_traffic = Some(shard);
        self
    }

    /// Adopts thread/shard counts from a cluster-tier mapping — the
    /// bridge from the simulator's `ClusterSpec`s to the real
    /// runtime.
    pub fn shape(mut self, shape: DeploymentShape) -> Self {
        self.config.proxies = shape.proxies;
        self.config.shards = shape.shards;
        self.config.workers = shape.workers;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the reporting confidence level.
    pub fn confidence(mut self, c: f64) -> Self {
        self.config.confidence = c;
        self
    }

    /// Builds and starts the deployment: creates the (optionally
    /// bounded) topics, spawns the worker, proxy and shard threads
    /// and settles consumer-group membership before any record flows
    /// (so partition assignment is fixed for the run).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; see
    /// [`ShardedSystemBuilder::try_build`] for the typed-error form.
    pub fn build(self) -> ShardedSystem {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ShardedSystemBuilder::build`] reporting an impossible
    /// configuration as [`DeployError::InvalidConfig`] instead of
    /// panicking.
    pub fn try_build(self) -> Result<ShardedSystem, DeployError> {
        let c = self.config;
        let durable_dir = self.durable_dir;
        let snapshot_every = if self.snapshot_every == 0 {
            8
        } else {
            self.snapshot_every
        };
        let journal_segment_bytes = if self.journal_segment_bytes == 0 {
            DEFAULT_SEGMENT_BYTES
        } else {
            self.journal_segment_bytes
        };
        let crash_after_journal = self.crash_after_journal;
        let transport = match self.node_binary {
            Some(node) => TransportMode::Process {
                node,
                faults: self.link_faults,
            },
            None => TransportMode::InProcess,
        };
        let invalid = |m: String| Err(DeployError::InvalidConfig(m));
        if c.clients == 0 {
            return invalid("population must be positive".into());
        }
        if c.proxies < 2 {
            return invalid("PrivApprox requires at least two proxies".into());
        }
        if c.shards < 1 {
            return invalid("need at least one aggregator shard".into());
        }
        if c.workers < 1 {
            return invalid("need at least one client worker".into());
        }
        if let Some((s, _)) = c.straggler {
            if s >= c.shards {
                return invalid(format!("straggler shard {s} out of range"));
            }
        }
        if let Some((w, _)) = c.worker_panic_after {
            if w >= c.workers {
                return invalid(format!("fault-injected worker {w} out of range"));
            }
        }
        if let Some((s, _)) = c.shard_panic_after {
            if s >= c.shards {
                return invalid(format!("fault-injected shard {s} out of range"));
            }
        }
        if let Some(s) = c.drop_shard_traffic {
            if s >= c.shards {
                return invalid(format!("traffic-dropped shard {s} out of range"));
            }
        }
        if c.epoch_deadline.is_zero() {
            return invalid("epoch deadline must be positive".into());
        }
        let partitions = c.effective_partitions();
        let broker = Broker::new(partitions);
        // A producer parked on a full partition gives up (with a
        // typed `Backpressure` fault) on the same horizon the epoch
        // degrades to sampling: a stalled consumer surfaces as an
        // error plus a partial close, never a wedged producer thread.
        broker.set_backpressure_deadline(c.epoch_deadline.max(Duration::from_millis(10)));
        // Every deployment topic is bounded: an explicit capacity, or
        // the auto-bound of pipeline-depth + 1 epochs' worth of
        // records per partition. Bounded partitions give the pipeline
        // its record-granular backpressure AND log trimming — consumed
        // records drop off the front, so the broker's memory (and the
        // allocator's page-fault rate) stays flat however many epochs
        // stream through.
        let capacity = if c.partition_capacity > 0 {
            c.partition_capacity
        } else {
            ((c.pipeline_depth as u64 + 1)
                * c.concurrent_queries.max(1) as u64
                * c.clients.div_ceil(partitions as u64))
            .max(64) as usize
        };
        // Bounded topics must exist (with their capacity) before the
        // proxies/shards auto-create them unbounded.
        for i in 0..c.proxies {
            let id = ProxyId(i);
            broker.create_topic_with_capacity(&inbound_topic(id), partitions, capacity);
            broker.create_topic_with_capacity(&outbound_topic(id), partitions, capacity);
        }
        // The quarantine topic is bounded drop-oldest: poisoned input
        // must never backpressure the healthy pipeline, and a
        // poisoned-input storm must not grow memory without bound —
        // beyond the cap the oldest quarantined records are evicted
        // and counted ([`DeployHealth::dead_letter_dropped`]).
        broker.create_topic_drop_oldest(DEAD_LETTER_TOPIC, partitions, DEAD_LETTER_CAP);

        // Order matters: create every proxy and shard consumer *now*,
        // on this thread, so group membership — and therefore the
        // partition → shard mapping — is complete and deterministic
        // before the first record is produced. (A shard joining the
        // "aggregator" group after a sibling already polled would
        // strand shares across joiners.) The process transport keeps
        // the exact same group names and join order, just with bridge
        // consumers in place of the in-process relay/aggregator ones —
        // that is what pins its partition→shard mapping (and so its
        // results) byte-identical to in-process.
        enum StagePlan {
            InProc {
                proxies: Vec<Proxy>,
                aggs: Vec<Aggregator>,
            },
            Remote {
                proxy_consumers: Vec<Consumer>,
                shard_consumers: Vec<Consumer>,
            },
        }
        let plan = match &transport {
            TransportMode::InProcess => StagePlan::InProc {
                proxies: (0..c.proxies)
                    .map(|i| Proxy::new(ProxyId(i), &broker))
                    .collect(),
                aggs: (0..c.shards)
                    .map(|_| {
                        let mut agg = Aggregator::new(&broker, c.proxies as usize, c.confidence);
                        agg.set_dead_letter(broker.writer(DEAD_LETTER_TOPIC));
                        agg
                    })
                    .collect(),
            },
            TransportMode::Process { .. } => {
                let out_names: Vec<String> = (0..c.proxies)
                    .map(|i| outbound_topic(ProxyId(i)))
                    .collect();
                let out_refs: Vec<&str> = out_names.iter().map(String::as_str).collect();
                StagePlan::Remote {
                    proxy_consumers: (0..c.proxies)
                        .map(|i| {
                            broker.consumer(&format!("proxy-{i}"), &[&inbound_topic(ProxyId(i))])
                        })
                        .collect(),
                    shard_consumers: (0..c.shards)
                        .map(|_| broker.consumer("aggregator", &out_refs))
                        .collect(),
                }
            }
        };

        let crashes: CrashLog = Arc::new(Mutex::new(Vec::new()));
        let ledger = Arc::new(EpochLedger::new());
        let mut watchdog = Watchdog::new();

        let workers = (0..c.workers)
            .map(|w| {
                WorkerHandle::spawn(
                    w,
                    &c,
                    partitions,
                    &broker,
                    Arc::clone(&crashes),
                    watchdog.register(&format!("worker-{w}")),
                )
            })
            .collect();
        let mut link_stats: Vec<Arc<LinkStats>> = Vec::new();
        let mut children: Vec<(String, u32)> = Vec::new();
        let (proxy_threads, shard_threads): (Vec<ProxyHandle>, Vec<ShardHandle>) = match plan {
            StagePlan::InProc { proxies, aggs } => {
                let proxy_threads = proxies
                    .into_iter()
                    .map(|p| {
                        let hb = watchdog.register(&format!("proxy-{}", p.id().0));
                        ProxyHandle::spawn(p, Arc::clone(&crashes), hb, (0, 0, 0))
                    })
                    .collect();
                let shard_threads = aggs
                    .into_iter()
                    .enumerate()
                    .map(|(s, agg)| {
                        let straggle = match c.straggler {
                            Some((idx, delay)) if idx == s => Some(delay),
                            _ => None,
                        };
                        let fuse = match c.shard_panic_after {
                            Some((idx, n)) if idx == s => Some(n),
                            _ => None,
                        };
                        ShardHandle::spawn(ShardSpawn {
                            index: s,
                            agg,
                            straggle,
                            deadline: c.epoch_deadline,
                            fuse,
                            ledger: Arc::clone(&ledger),
                            crashes: Arc::clone(&crashes),
                            heartbeat: watchdog.register(&format!("shard-{s}")),
                            broker: broker.clone(),
                        })
                    })
                    .collect();
                (proxy_threads, shard_threads)
            }
            StagePlan::Remote {
                proxy_consumers,
                shard_consumers,
            } => {
                let (node, faults) = match &transport {
                    TransportMode::Process { node, faults } => (node.clone(), *faults),
                    TransportMode::InProcess => unreachable!("remote plan implies process mode"),
                };
                let mut proxy_threads = Vec::with_capacity(c.proxies as usize);
                for (i, consumer) in proxy_consumers.into_iter().enumerate() {
                    let child = spawn_node_or_invalid(
                        &node,
                        "proxy",
                        i,
                        &proxy_node_args(i, partitions),
                    )?;
                    children.push((format!("proxy-{i}"), child.pid()));
                    let stats = LinkStats::shared();
                    link_stats.push(Arc::clone(&stats));
                    let mut link = remote::node_link(
                        child.addr(),
                        i as u32,
                        faults,
                        Arc::clone(&stats),
                        link_seed(c.seed, "proxy", i),
                    );
                    if let Some(after) = c.link_resend_after {
                        link.set_resend_after(after);
                    }
                    proxy_threads.push(ProxyHandle::spawn_remote(RemoteProxySpawn {
                        index: i,
                        consumer,
                        link,
                        child,
                        crashes: Arc::clone(&crashes),
                        heartbeat: watchdog.register(&format!("proxy-{i}")),
                        broker: broker.clone(),
                        base: (0, 0, 0),
                    }));
                }
                let mut shard_threads = Vec::with_capacity(c.shards);
                for (s, consumer) in shard_consumers.into_iter().enumerate() {
                    let straggle = match c.straggler {
                        Some((idx, delay)) if idx == s => Some(delay),
                        _ => None,
                    };
                    let fuse = match c.shard_panic_after {
                        Some((idx, n)) if idx == s => Some(n),
                        _ => None,
                    };
                    let child = spawn_node_or_invalid(
                        &node,
                        "shard",
                        s,
                        &shard_node_args(s, partitions, c.proxies as usize, c.confidence, fuse),
                    )?;
                    children.push((format!("shard-{s}"), child.pid()));
                    let stats = LinkStats::shared();
                    link_stats.push(Arc::clone(&stats));
                    let mut link = remote::node_link(
                        child.addr(),
                        s as u32,
                        faults,
                        Arc::clone(&stats),
                        link_seed(c.seed, "shard", s),
                    );
                    if let Some(after) = c.link_resend_after {
                        link.set_resend_after(after);
                    }
                    shard_threads.push(ShardHandle::spawn_remote(RemoteShardSpawn {
                        index: s,
                        consumer,
                        link,
                        child,
                        straggle,
                        deadline: c.epoch_deadline,
                        ledger: Arc::clone(&ledger),
                        crashes: Arc::clone(&crashes),
                        heartbeat: watchdog.register(&format!("shard-{s}")),
                    }));
                }
                (proxy_threads, shard_threads)
            }
        };

        let mut system = ShardedSystem {
            config: c,
            transport,
            link_stats,
            partitions,
            broker,
            workers,
            proxies: proxy_threads,
            shards: shard_threads,
            queries: HashMap::new(),
            initializer: Initializer::new(),
            now_ms: 0,
            next_serial: 1,
            in_flight: VecDeque::new(),
            pending: Vec::new(),
            spare_shells: Vec::new(),
            pending_recycle: vec![Vec::new(); c.shards],
            busy: BusyProfile::new(c.workers, c.proxies as usize, c.shards),
            crashes,
            ledger,
            watchdog,
            history: Vec::new(),
            faults: Vec::new(),
            partial_closes: 0,
            lost_answers: 0,
            respawns: 0,
            worker_backpressure: 0,
            children,
            admitted: Vec::new(),
            ledgers: HashMap::new(),
            retired: Vec::new(),
            terminal: Vec::new(),
            feedback: HashMap::new(),
            last_error: HashMap::new(),
            retain_set: Vec::new(),
            batch_scratch: None,
            durable: None,
            recovered: None,
            high_water: HashMap::new(),
            recovered_offsets: Vec::new(),
            recovered_warehouses: HashMap::new(),
            epochs_closed_total: 0,
            epochs_submitted_total: 0,
            crash_after_journal,
        };
        if let Some(dir) = durable_dir {
            let (durable, recovered) =
                DurableState::open(&dir, journal_segment_bytes, snapshot_every).map_err(|e| {
                    DeployError::Persist {
                        detail: e.to_string(),
                    }
                })?;
            system.durable = Some(durable);
            system.recovered = recovered.map(Box::new);
        }
        Ok(system)
    }
}

// ---------------------------------------------------------------------------
// Worker threads: own a slice of the client population.

/// A replayable load: the worker respawn path re-runs the full load
/// log on the replacement thread (creates replace tables, so replay
/// in order is idempotent), rebuilding every owned client's local
/// store.
#[derive(Clone)]
enum LoadCmd {
    Numeric {
        table: String,
        column: String,
        f: Arc<dyn Fn(usize) -> f64 + Send + Sync>,
    },
    Rows {
        table: String,
        schema: Schema,
        f: Arc<dyn Fn(usize) -> Vec<Vec<Value>> + Send + Sync>,
    },
}

/// A replayable worker command, logged by the main thread: the
/// respawn path re-runs the full history on the replacement thread —
/// loads for real, answers **muted** (the clients run the complete
/// answer pipeline, but nothing is sent). The muted replay advances
/// every owned client's RNG stream to exactly where the dead
/// worker's was; without it a respawned client would re-issue its
/// past MIDs, and the aggregator's duplicate defence would silently
/// swallow its next epoch's answers.
#[derive(Clone)]
enum ReplayCmd {
    Load(LoadCmd),
    Answer {
        query: Query,
        params: ExecutionParams,
        ts: Timestamp,
    },
}

enum WorkerCmd {
    Load(LoadCmd),
    Answer {
        query: Query,
        params: ExecutionParams,
        ts: Timestamp,
        /// `false` on a respawn's muted history replay: answer (to
        /// advance the client RNGs), but send and reply nothing.
        live: bool,
    },
    /// Chaos hook: panic on receipt.
    Die,
    Shutdown,
}

enum WorkerReply {
    Loaded,
    Answered {
        /// Messages (participating clients) sent, per partition.
        /// Always present — even on error, the shares sent before the
        /// failing client are in the broker and must be accounted for.
        per_partition: Vec<u64>,
        /// The first client-side error, if any (the worker stops at
        /// the first failing client).
        error: Option<CoreError>,
        busy: Duration,
    },
}

struct WorkerHandle {
    cmd: Sender<WorkerCmd>,
    reply: Receiver<WorkerReply>,
    thread: Option<JoinHandle<()>>,
    /// Replies the previous incarnation owed that will never arrive:
    /// a respawned worker knows nothing of the epochs already
    /// submitted to its predecessor, so the completion loop skips
    /// this many recvs (their answers are part of the epoch's lost
    /// count).
    reply_debt: usize,
    /// Permanently retired (respawn disabled or failed, or the thread
    /// wedged past the deadline and cannot be safely replaced).
    dead: bool,
}

impl WorkerHandle {
    /// Spawns worker `w`, owning clients `{i : i % workers == w}`.
    /// Client identities (id, RNG seed) are exactly
    /// [`System`](crate::System)'s, so per-client streams match the
    /// single-threaded harness seed for seed — including across a
    /// respawn, which reuses the same index.
    fn spawn(
        w: usize,
        c: &ShardedConfig,
        partitions: usize,
        broker: &Broker,
        crashes: CrashLog,
        heartbeat: Heartbeat,
    ) -> WorkerHandle {
        let (cmd_tx, cmd_rx) = channel::<WorkerCmd>();
        let (reply_tx, reply_rx) = channel::<WorkerReply>();
        let broker = broker.clone();
        let (workers, clients, seed, key, n_proxies) = (
            c.workers,
            c.clients,
            c.seed,
            c.analyst_key,
            c.proxies as usize,
        );
        let mut fuse = match c.worker_panic_after {
            Some((idx, n)) if idx == w => Some(n),
            _ => None,
        };
        let drop_hook = c.drop_shard_traffic.map(|s| (s, c.shards));
        let thread = std::thread::Builder::new()
            .name(format!("pa-worker-{w}"))
            .spawn(move || {
                // The reply sender stays owned OUTSIDE the caught
                // closure: a panic is recorded in the crash log
                // before the channel disconnects, so the main
                // thread's recv-error path always finds the message.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut owned: Vec<(usize, Client)> = (0..clients)
                        .filter(|i| (*i as usize) % workers == w)
                        .map(|i| (i as usize, Client::new(ClientId(i), seed, key)))
                        .collect();
                    let mut scratch = ClientScratch::new();
                    // Cached per-topic writers: no topic-name hash per
                    // share, one consumer wakeup per epoch slice (the
                    // blocking polls downstream re-check every ≤10ms, so
                    // forwarding overlaps the answer loop regardless).
                    let writers: Vec<TopicWriter> = (0..n_proxies)
                        .map(|pi| broker.writer(&inbound_topic(ProxyId(pi as u16))))
                        .collect();
                    let mut per_partition = vec![0u64; partitions];
                    // Batched send state, reused across epochs so the
                    // steady state allocates nothing: one pending run
                    // per (proxy topic, partition) — all of a
                    // message's shares enter their runs together, and
                    // a run flushes as ONE all-or-nothing batch
                    // append (one partition lock, one capacity check)
                    // once it reaches the flush grain. Entries hold
                    // refcount clones of the split scratch's payload
                    // slots and a pooled 24-byte query-tagged key
                    // built once per message — no per-share
                    // allocation or copy.
                    let mut batches: Vec<Vec<Vec<BatchEntry>>> = (0..n_proxies)
                        .map(|_| vec![Vec::new(); partitions])
                        .collect();
                    let mut key_pool = SlotPool::new();
                    let flush_run = match writers.first().map(|w| w.capacity()) {
                        Some(cap) if cap > 0 => WORKER_FLUSH_RUN.min(cap),
                        _ => WORKER_FLUSH_RUN,
                    };
                    // Flushes one partition's pending runs across all
                    // proxy topics; returns the number of messages
                    // published. Each topic's run is all-or-nothing;
                    // if topic `j` hits its backpressure deadline,
                    // topics `< j` have already published this run
                    // (those share sets expire at the join, exactly
                    // like the pre-batching failure path) and the
                    // run's messages stay uncounted.
                    // Flushes stay quiet (no condvar signal): the
                    // downstream blocking polls re-check on their park
                    // timeouts, and the single epoch-end notify is the
                    // only forced wakeup — mid-epoch signals measured
                    // strictly slower on oversubscribed machines (each
                    // one preempts the answer loop into a proxy drain
                    // and back, thrashing both stages' caches).
                    let flush_partition = |writers: &[TopicWriter],
                                           batches: &mut [Vec<Vec<BatchEntry>>],
                                           partition: usize|
                     -> Result<u64, CoreError> {
                        let n = batches[0][partition].len() as u64;
                        for (pi, writer) in writers.iter().enumerate() {
                            writer
                                .try_append_batch(partition, &mut batches[pi][partition])
                                .map_err(CoreError::from)?;
                        }
                        Ok(n)
                    };
                    loop {
                        heartbeat.beat();
                        let cmd = match cmd_rx.recv_timeout(WORKER_IDLE_BEAT) {
                            Ok(cmd) => cmd,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        };
                        match cmd {
                            WorkerCmd::Load(LoadCmd::Numeric { table, column, f }) => {
                                for (i, client) in &mut owned {
                                    let db = client.db_mut();
                                    db.create_table(
                                        &table,
                                        Schema::new(vec![
                                            ("ts", ColumnType::Int),
                                            (column.as_str(), ColumnType::Float),
                                        ]),
                                    );
                                    db.insert(&table, vec![Value::Int(0), Value::Float(f(*i))])
                                        .expect("schema arity");
                                }
                                let _ = reply_tx.send(WorkerReply::Loaded);
                            }
                            WorkerCmd::Load(LoadCmd::Rows { table, schema, f }) => {
                                for (i, client) in &mut owned {
                                    let db = client.db_mut();
                                    db.create_table(&table, schema.clone());
                                    for row in f(*i) {
                                        db.insert(&table, row).expect("schema arity");
                                    }
                                }
                                let _ = reply_tx.send(WorkerReply::Loaded);
                            }
                            WorkerCmd::Answer {
                                query,
                                params,
                                ts,
                                live,
                            } => {
                                if !live {
                                    // Muted history replay (respawn
                                    // catch-up): every client runs
                                    // the full answer pipeline so its
                                    // RNG advances exactly as the
                                    // predecessor's did, stopping at
                                    // the first error like the live
                                    // path — but nothing is sent and
                                    // nothing is replied.
                                    if query.verify(key) {
                                        for (_, client) in &mut owned {
                                            if client
                                                .answer_query_into_preverified(
                                                    &query,
                                                    &params,
                                                    n_proxies,
                                                    &mut scratch,
                                                )
                                                .is_err()
                                            {
                                                break;
                                            }
                                        }
                                    }
                                    let _ = ts;
                                    continue;
                                }
                                let t0 = thread_busy_time();
                                let qtag = query.id.to_u64().to_be_bytes();
                                per_partition.iter_mut().for_each(|n| *n = 0);
                                // One signature check for the whole
                                // population: the query is a single
                                // immutable value, so the per-client
                                // verdicts cannot differ, and verify
                                // consumes no RNG — answers stay
                                // byte-identical to per-client
                                // verification. A forgery surfaces
                                // exactly like the first client
                                // failing (zero sent, error reply).
                                let mut failure = if query.verify(key) {
                                    None
                                } else {
                                    Some(CoreError::BadSignature)
                                };
                                'clients: for (i, client) in &mut owned {
                                    if failure.is_some() {
                                        break;
                                    }
                                    match client.answer_query_into_preverified(
                                        &query,
                                        &params,
                                        n_proxies,
                                        &mut scratch,
                                    ) {
                                        Ok(None) => {}
                                        Ok(Some(shares)) => {
                                            let partition = *i % partitions;
                                            let dropped = drop_hook
                                                .is_some_and(|(s, m)| partition % m == s);
                                            if dropped {
                                                // Accounted but never sent —
                                                // the drop-traffic fault.
                                                per_partition[partition] += 1;
                                            } else {
                                                // One pooled 24-byte key per
                                                // message — query tag (u64
                                                // BE) ‖ MID — refcounted
                                                // across its n shares;
                                                // payloads ride by refcount
                                                // from the split scratch's
                                                // slots.
                                                let mut key = key_pool.acquire(24);
                                                let slot = Arc::get_mut(&mut key)
                                                    .expect("acquired key slot is unique");
                                                slot[..8].copy_from_slice(&qtag);
                                                slot[8..].copy_from_slice(
                                                    &shares[0].mid.to_bytes(),
                                                );
                                                for (pi, share) in shares.iter().enumerate()
                                                {
                                                    batches[pi][partition].push((
                                                        Some(Arc::clone(&key)),
                                                        Arc::clone(&share.payload),
                                                        ts,
                                                    ));
                                                }
                                                key_pool.release(key);
                                                if batches[0][partition].len() >= flush_run {
                                                    match flush_partition(
                                                        &writers,
                                                        &mut batches,
                                                        partition,
                                                    ) {
                                                        Ok(n) => per_partition[partition] += n,
                                                        Err(e) => {
                                                            // The run's messages stay
                                                            // unaccounted; any topic
                                                            // already flushed leaves
                                                            // expired joins.
                                                            failure = Some(e);
                                                            break 'clients;
                                                        }
                                                    }
                                                }
                                            }
                                            if let Some(n) = fuse.as_mut() {
                                                if *n <= 1 {
                                                    panic!("injected worker fault");
                                                }
                                                *n -= 1;
                                            }
                                        }
                                        Err(e) => {
                                            failure = Some(e);
                                            break;
                                        }
                                    }
                                }
                                if failure.is_none() {
                                    // Drain the partial runs; a failure here
                                    // surfaces like a mid-epoch one.
                                    for partition in 0..partitions {
                                        if batches[0][partition].is_empty() {
                                            continue;
                                        }
                                        match flush_partition(&writers, &mut batches, partition)
                                        {
                                            Ok(n) => per_partition[partition] += n,
                                            Err(e) => {
                                                failure = Some(e);
                                                break;
                                            }
                                        }
                                    }
                                }
                                // On failure, abandon whatever runs remain:
                                // clearing drops the payload/key refcounts so
                                // the scratch slots recycle, and the next
                                // epoch starts from clean batches.
                                for topic_batches in &mut batches {
                                    for b in topic_batches {
                                        b.clear();
                                    }
                                }
                                for writer in &writers {
                                    writer.notify();
                                }
                                let busy = thread_busy_time().saturating_sub(t0);
                                // Counts always travel with the reply,
                                // error or not: shares sent *before* a
                                // failing client are already in the
                                // broker, and the epoch-tagged close is
                                // what lets a later epoch run from
                                // consistent counts.
                                let _ = reply_tx.send(WorkerReply::Answered {
                                    per_partition: per_partition.clone(),
                                    error: failure,
                                    busy,
                                });
                            }
                            WorkerCmd::Die => panic!("injected worker fault"),
                            WorkerCmd::Shutdown => break,
                        }
                    }
                }));
                if let Err(payload) = outcome {
                    crashes.lock().expect("crash log lock").push(Crash {
                        role: "worker",
                        index: w,
                        message: panic_message(&*payload),
                    });
                }
                // reply_tx (and cmd_rx) drop here — after the crash
                // record is visible.
                drop(reply_tx);
            })
            .expect("spawn worker thread");
        WorkerHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
            reply_debt: 0,
            dead: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Proxy threads: free-running partition-preserving relays.

struct ProxyHandle {
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    busy_ns: Arc<AtomicU64>,
    /// Backpressure deadlines the relay rode out (the batch is
    /// retained and retried, so these are stalls, not losses).
    backpressure: Arc<AtomicU64>,
    in_topic: String,
    thread: Option<JoinHandle<()>>,
    dead: bool,
}

impl ProxyHandle {
    /// Spawns a relay thread that forwards continuously until told to
    /// stop: a proxy holds no epoch state, so it needs no epoch
    /// commands — it parks on the broker's condvar and forwards
    /// whatever lands, whichever epoch it belongs to.
    ///
    /// `base` seeds the `(forwarded, busy_ns, backpressure)` counters
    /// so a respawned relay reports monotone cumulative values.
    fn spawn(
        mut proxy: Proxy,
        crashes: CrashLog,
        heartbeat: Heartbeat,
        base: (u64, u64, u64),
    ) -> ProxyHandle {
        let index = proxy.id().0 as usize;
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(base.0));
        let busy_ns = Arc::new(AtomicU64::new(base.1));
        let backpressure = Arc::new(AtomicU64::new(base.2));
        let in_topic = inbound_topic(proxy.id());
        let (stop2, forwarded2, busy2, bp2) = (
            Arc::clone(&stop),
            Arc::clone(&forwarded),
            Arc::clone(&busy_ns),
            Arc::clone(&backpressure),
        );
        let thread = std::thread::Builder::new()
            .name(format!("pa-proxy-{index}"))
            .spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    while !stop2.load(Ordering::Relaxed) {
                        heartbeat.beat();
                        let t0 = thread_busy_time();
                        let pumped = proxy.try_pump_blocking(PROXY_PARK);
                        let dt = thread_busy_time().saturating_sub(t0);
                        busy2.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                        match pumped {
                            Ok(0) => {}
                            Ok(n) => {
                                forwarded2.fetch_add(n, Ordering::Relaxed);
                            }
                            // A backpressure deadline is a stall
                            // downstream, not a relay fault: the
                            // unforwarded tail stays buffered and the
                            // next pump retries it.
                            Err(_) => {
                                bp2.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Final drain so shutdown leaves no stranded shares.
                    if let Ok(n) = proxy.try_pump() {
                        forwarded2.fetch_add(n, Ordering::Relaxed);
                    }
                }));
                if let Err(payload) = outcome {
                    crashes.lock().expect("crash log lock").push(Crash {
                        role: "proxy",
                        index,
                        message: panic_message(&*payload),
                    });
                }
            })
            .expect("spawn proxy thread");
        ProxyHandle {
            stop,
            forwarded,
            busy_ns,
            backpressure,
            in_topic,
            thread: Some(thread),
            dead: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Shard threads: free-running join ⟂ decode ⟂ window with per-epoch
// in-flight accounting.

/// An epoch close request: "once `expect` answers tagged `epoch` have
/// been decoded, advance the watermark and emit the closed windows".
struct CloseCmd {
    epoch: Timestamp,
    expect: u64,
    watermark: Timestamp,
    /// Estimators coming home from a previous epoch's merge.
    recycle: Vec<BucketEstimator>,
}

enum ShardCmd {
    Register {
        query: Box<Query>,
        params: ExecutionParams,
        population: u64,
        /// Keep this query's decoded answers for batch queries
        /// (historical retention, §3.3.1).
        retain: bool,
    },
    Close(CloseCmd),
    /// Historical fetch: return the retained answers of `query`
    /// within `range`.
    Fetch { query: QueryId, range: Window },
    /// Health-counter snapshot (no watermark movement).
    Probe,
    /// Chaos hook: panic on receipt.
    Die,
    Shutdown,
}

enum ShardReply {
    Registered,
    /// Retained `(timestamp, MID, randomized answer)` triples for a
    /// [`ShardCmd::Fetch`].
    Stored {
        answers: Vec<(u64, u128, BitVec)>,
    },
    Closed {
        /// Answers **this shard** decoded under the closed epoch's
        /// tag. The main thread sums the replies: a total below the
        /// close's global `expect` is a partial close.
        decoded: u64,
        windows: Vec<RawWindow>,
        /// Cumulative CPU time of the shard thread (monotone within
        /// one incarnation; the handle adds the respawn base).
        busy: Duration,
    },
    Health {
        /// `(undecodable, unroutable, duplicates, expired_joins)`.
        quad: (u64, u64, u64, u64),
        /// Records quarantined to the dead-letter topic.
        dead_lettered: u64,
        /// Decoded answers dropped behind the watermark.
        late_answers: u64,
        /// Cumulative CPU time.
        busy: Duration,
    },
}

struct ShardHandle {
    cmd: Sender<ShardCmd>,
    reply: Receiver<ShardReply>,
    thread: Option<JoinHandle<()>>,
    /// CPU time accumulated by dead predecessor incarnations, added
    /// to this incarnation's readings so the busy profile stays
    /// monotone across respawns.
    busy_base: Duration,
    dead: bool,
}

/// Everything a shard thread needs at spawn — grouped because the
/// respawn path rebuilds the full set.
struct ShardSpawn {
    index: usize,
    agg: Aggregator,
    straggle: Option<Duration>,
    deadline: Duration,
    /// Fault injection: panic on the `n`-th decode.
    fuse: Option<u64>,
    ledger: Arc<EpochLedger>,
    crashes: CrashLog,
    heartbeat: Heartbeat,
    broker: Broker,
}

impl ShardHandle {
    fn spawn(spec: ShardSpawn) -> ShardHandle {
        let ShardSpawn {
            index,
            mut agg,
            straggle,
            deadline,
            mut fuse,
            ledger,
            crashes,
            heartbeat,
            broker,
        } = spec;
        let (cmd_tx, cmd_rx) = channel::<ShardCmd>();
        let (reply_tx, reply_rx) = channel::<ShardReply>();
        let thread = std::thread::Builder::new()
            .name(format!("pa-shard-{index}"))
            .spawn(move || {
                // The reply sender stays owned outside the caught
                // closure — crash record before channel disconnect.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Per-epoch in-flight accounting: decoded answers per
                // epoch tag. A bounded scan list, not a map — at most
                // pipeline-depth + 1 epochs are ever live, entries
                // retire when their epoch closes, and the warm list
                // never allocates per message. `published` mirrors
                // what this shard has already reported to the global
                // ledger (bumps are batched per poll, not per
                // record).
                let mut counts: Vec<(Timestamp, u64)> = Vec::new();
                let mut published: Vec<(Timestamp, u64)> = Vec::new();
                // Retained histories for queries registered with
                // `retain`: the §3.3.1 at-rest store (randomized
                // answers only), fetched by the main thread to serve
                // batch queries.
                let mut retained: HashMap<QueryId, Vec<(u64, u128, BitVec)>> = HashMap::new();
                // Close requests queue in epoch order and are
                // satisfied strictly FIFO (watermarks must advance in
                // order); `Instant` tracks the epoch deadline.
                let mut closes: VecDeque<(CloseCmd, Instant)> = VecDeque::new();
                'run: loop {
                    heartbeat.beat();
                    // 1. Absorb all pending control messages.
                    loop {
                        match cmd_rx.try_recv() {
                            Ok(ShardCmd::Register {
                                query,
                                params,
                                population,
                                retain,
                            }) => {
                                if retain {
                                    // Keep whatever is already stored:
                                    // re-registration (a feedback
                                    // retune) must not wipe history.
                                    retained.entry(query.id).or_default();
                                }
                                agg.register_query(&query, params, population);
                                let _ = reply_tx.send(ShardReply::Registered);
                            }
                            Ok(ShardCmd::Fetch { query, range }) => {
                                let answers = retained
                                    .get(&query)
                                    .map(|stored| {
                                        stored
                                            .iter()
                                            .filter(|(ts, _, _)| range.contains(Timestamp(*ts)))
                                            .cloned()
                                            .collect()
                                    })
                                    .unwrap_or_default();
                                let _ = reply_tx.send(ShardReply::Stored { answers });
                            }
                            Ok(ShardCmd::Close(c)) => closes.push_back((c, Instant::now())),
                            Ok(ShardCmd::Probe) => {
                                let _ = reply_tx.send(ShardReply::Health {
                                    quad: (
                                        agg.undecodable(),
                                        agg.unroutable(),
                                        agg.duplicates(),
                                        agg.expired_joins(),
                                    ),
                                    dead_lettered: agg.dead_lettered(),
                                    late_answers: agg.late_events(),
                                    busy: thread_busy_time(),
                                });
                            }
                            Ok(ShardCmd::Die) => panic!("injected shard fault"),
                            Ok(ShardCmd::Shutdown) | Err(TryRecvError::Disconnected) => {
                                break 'run;
                            }
                            Err(TryRecvError::Empty) => break,
                        }
                    }
                    // 2. Satisfy the oldest close once the epoch's
                    //    GLOBAL accounting settles (or its deadline
                    //    fires → partial close).
                    if let Some((front, since)) = closes.front() {
                        let have = counts
                            .iter()
                            .find(|(t, _)| *t == front.epoch)
                            .map(|(_, n)| *n)
                            .unwrap_or(0);
                        let global = ledger.count(front.epoch);
                        if global >= front.expect || since.elapsed() >= deadline {
                            let (c, _) = closes.pop_front().expect("front exists");
                            if let Some(delay) = straggle {
                                std::thread::sleep(delay);
                            }
                            for est in c.recycle {
                                agg.release_estimator(est);
                            }
                            let mut windows = Vec::new();
                            agg.advance_watermark_raw_into(c.watermark, &mut windows);
                            // The epoch's accounting entries retire
                            // with the close.
                            counts.retain(|(t, _)| *t > c.epoch);
                            published.retain(|(t, _)| *t > c.epoch);
                            let _ = reply_tx.send(ShardReply::Closed {
                                decoded: have,
                                windows,
                                busy: thread_busy_time(),
                            });
                            // Kick sibling shards out of their parks:
                            // their own close checks re-read the
                            // ledger at wakeup latency instead of
                            // park-timeout latency.
                            broker.notify_topic(&outbound_topic(ProxyId(0)));
                            continue 'run;
                        }
                    }
                    // 3. Pump, tagging every decode with its epoch.
                    agg.pump_blocking_with(SHARD_PARK, |qid, ts, mid, answer| {
                        match counts.iter_mut().find(|(t, _)| *t == ts) {
                            Some((_, n)) => *n += 1,
                            None => counts.push((ts, 1)),
                        }
                        if let Some(stored) = retained.get_mut(&qid) {
                            stored.push((ts.0, mid.0, answer.clone()));
                        }
                        if let Some(n) = fuse.as_mut() {
                            if *n <= 1 {
                                panic!("injected shard fault");
                            }
                            *n -= 1;
                        }
                    });
                    // 4. Publish this poll's decode deltas to the
                    //    global ledger (one bounded-scan lock per
                    //    poll batch).
                    for (t, n) in &counts {
                        match published.iter_mut().find(|(pt, _)| pt == t) {
                            Some((_, pn)) => {
                                if *n > *pn {
                                    ledger.add(*t, *n - *pn);
                                    *pn = *n;
                                }
                            }
                            None => {
                                ledger.add(*t, *n);
                                published.push((*t, *n));
                            }
                        }
                    }
                }
                }));
                if let Err(payload) = outcome {
                    crashes.lock().expect("crash log lock").push(Crash {
                        role: "shard",
                        index,
                        message: panic_message(&*payload),
                    });
                }
                drop(reply_tx);
            })
            .expect("spawn shard thread");
        ShardHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
            busy_base: Duration::ZERO,
            dead: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Process-transport bridges: each remote proxy/shard slot is a spawned
// `privapprox-node` child plus a bridge thread that speaks the wire
// protocol on one side and the in-process handle protocol (the same
// `ProxyHandle` atomics / `ShardCmd` channels) on the other — so the
// main thread's epoch, supervision and respawn machinery is shared
// verbatim between the two transports.

/// Deterministic per-link jitter seed: deployment seed × role × slot,
/// so backoff schedules are stable run to run and distinct link to
/// link.
fn link_seed(seed: u64, role: &str, index: usize) -> u64 {
    let role_tag = role
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    seed ^ role_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

fn proxy_node_args(index: usize, partitions: usize) -> Vec<String> {
    vec![
        "proxy".into(),
        "--index".into(),
        index.to_string(),
        "--partitions".into(),
        partitions.to_string(),
    ]
}

fn shard_node_args(
    index: usize,
    partitions: usize,
    proxies: usize,
    confidence: f64,
    fuse: Option<u64>,
) -> Vec<String> {
    let mut args = vec![
        "shard".into(),
        "--index".into(),
        index.to_string(),
        "--partitions".into(),
        partitions.to_string(),
        "--proxies".into(),
        proxies.to_string(),
        "--confidence-bits".into(),
        confidence.to_bits().to_string(),
    ];
    if let Some(n) = fuse {
        args.push("--fuse".into());
        args.push(n.to_string());
    }
    args
}

/// Spawns a node child, mapping a spawn/banner failure to the typed
/// build error (a missing or broken node binary is a configuration
/// fault, not a runtime one).
fn spawn_node_or_invalid(
    node: &Path,
    role: &str,
    index: usize,
    args: &[String],
) -> Result<NodeChild, DeployError> {
    remote::spawn_node(node, args)
        .map_err(|e| DeployError::InvalidConfig(format!("spawn {role} node {index}: {e}")))
}

/// Appends one share relayed back by a child to the local broker,
/// riding out backpressure deadlines exactly like the in-process
/// relay: the record is retried, the stall is counted, nothing is
/// dropped.
fn deliver_share(writer: &TopicWriter, m: DataMsg, stalls: &AtomicU64) {
    let key = m.key;
    let value = m.value;
    loop {
        match writer.try_append_quiet(
            m.partition as usize,
            key.clone(),
            Arc::clone(&value),
            Timestamp(m.timestamp),
        ) {
            Ok(_) => return,
            Err(_) => {
                stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Everything a remote proxy bridge needs at spawn (the respawn path
/// rebuilds the full set, like [`ShardSpawn`]).
struct RemoteProxySpawn {
    index: usize,
    /// Bridge consumer on the proxy's inbound topic — same group name
    /// as the in-process relay, joined on the main thread.
    consumer: Consumer,
    link: SupervisedLink,
    child: NodeChild,
    crashes: CrashLog,
    heartbeat: Heartbeat,
    broker: Broker,
    base: (u64, u64, u64),
}

impl ProxyHandle {
    /// Spawns the bridge thread for one remote proxy: polls the
    /// inbound topic into batched data frames toward the child, and
    /// lands the child's relayed shares on the local outbound topic.
    /// Same thread name and crash role as the in-process relay, so
    /// supervision and respawn treat both transports identically. The
    /// bridge owns the child: a panic (including a link whose retry
    /// budget ran out) drops the guard and kills the process.
    fn spawn_remote(spec: RemoteProxySpawn) -> ProxyHandle {
        let RemoteProxySpawn {
            index,
            consumer,
            mut link,
            child,
            crashes,
            heartbeat,
            broker,
            base,
        } = spec;
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(base.0));
        let busy_ns = Arc::new(AtomicU64::new(base.1));
        let backpressure = Arc::new(AtomicU64::new(base.2));
        let in_topic = inbound_topic(ProxyId(index as u16));
        let (stop2, forwarded2, busy2, bp2) = (
            Arc::clone(&stop),
            Arc::clone(&forwarded),
            Arc::clone(&busy_ns),
            Arc::clone(&backpressure),
        );
        let thread = std::thread::Builder::new()
            .name(format!("pa-proxy-{index}"))
            .spawn(move || {
                let _child = child;
                let out_writer = broker.writer(&outbound_topic(ProxyId(index as u16)));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut batch: Vec<(u32, u32, Record)> = Vec::new();
                    let mut msgs: Vec<DataMsg> = Vec::new();
                    let mut inbound: Vec<DataMsg> = Vec::new();
                    loop {
                        // Read the flag before the final round so one
                        // last poll + drain runs after it is raised.
                        let stopping = stop2.load(Ordering::Relaxed);
                        heartbeat.beat();
                        let t0 = thread_busy_time();
                        // 1. Ship produced shares to the child.
                        loop {
                            if consumer.poll_into(remote::BATCH_RECORDS, &mut batch) == 0 {
                                break;
                            }
                            msgs.clear();
                            for (stream, partition, rec) in batch.drain(..) {
                                msgs.push(remote::record_to_msg(stream, partition, &rec));
                            }
                            if let Err(e) = remote::send_batched(&mut link, &msgs) {
                                panic!("proxy {index} link: {e}");
                            }
                        }
                        // 2. Land relayed shares coming back. The
                        //    socket read poll doubles as the idle
                        //    park.
                        loop {
                            match link.recv() {
                                Ok(Some(f)) if f.kind == FrameKind::Data => {
                                    inbound.clear();
                                    if let Err(e) = decode_data_batch(&f.payload, &mut inbound) {
                                        panic!("proxy {index} link: {e}");
                                    }
                                    let n = inbound.len() as u64;
                                    for m in inbound.drain(..) {
                                        deliver_share(&out_writer, m, &bp2);
                                    }
                                    out_writer.notify();
                                    forwarded2.fetch_add(n, Ordering::Relaxed);
                                }
                                Ok(Some(_)) => {}
                                Ok(None) => break,
                                Err(e) => panic!("proxy {index} link: {e}"),
                            }
                        }
                        if let Err(e) = link.maybe_resend() {
                            panic!("proxy {index} link: {e}");
                        }
                        let dt = thread_busy_time().saturating_sub(t0);
                        busy2.fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                        if stopping {
                            // Best-effort goodbye; the child guard
                            // kills the process regardless.
                            let _ = link.send(Frame::bare(FrameKind::Shutdown));
                            let _ = link.flush();
                            break;
                        }
                    }
                }));
                if let Err(payload) = outcome {
                    crashes.lock().expect("crash log lock").push(Crash {
                        role: "proxy",
                        index,
                        message: panic_message(&*payload),
                    });
                }
            })
            .expect("spawn proxy bridge thread");
        ProxyHandle {
            stop,
            forwarded,
            busy_ns,
            backpressure,
            in_topic,
            thread: Some(thread),
            dead: false,
        }
    }
}

/// Everything a remote shard bridge needs at spawn.
struct RemoteShardSpawn {
    index: usize,
    /// Bridge consumer over every proxy's outbound topic — same
    /// `"aggregator"` group as the in-process shards, joined on the
    /// main thread in shard order.
    consumer: Consumer,
    link: SupervisedLink,
    child: NodeChild,
    straggle: Option<Duration>,
    deadline: Duration,
    ledger: Arc<EpochLedger>,
    crashes: CrashLog,
    heartbeat: Heartbeat,
}

impl ShardHandle {
    /// Spawns the bridge (translator) thread for one remote shard: it
    /// speaks `ShardCmd`/`ShardReply` with the main thread and the
    /// control-frame protocol with the child. The close condition —
    /// global ledger count reaches the epoch's expectation, or the
    /// epoch deadline fires — is evaluated *here*, against the shared
    /// ledger fed by every child's `Progress` frames, so partial-close
    /// degradation under faults is identical to in-process.
    fn spawn_remote(spec: RemoteShardSpawn) -> ShardHandle {
        let RemoteShardSpawn {
            index,
            consumer,
            mut link,
            child,
            straggle,
            deadline,
            ledger,
            crashes,
            heartbeat,
        } = spec;
        let (cmd_tx, cmd_rx) = channel::<ShardCmd>();
        let (reply_tx, reply_rx) = channel::<ShardReply>();
        let thread = std::thread::Builder::new()
            .name(format!("pa-shard-{index}"))
            .spawn(move || {
                let _child = child;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut batch: Vec<(u32, u32, Record)> = Vec::new();
                    let mut msgs: Vec<DataMsg> = Vec::new();
                    let mut closes: VecDeque<(CloseCmd, Instant)> = VecDeque::new();
                    // The epoch whose `Finish` is outstanding: further
                    // closes are held until the child's reply so
                    // watermarks advance strictly in order.
                    let mut awaiting: Option<u64> = None;
                    let send_ctrl = |link: &mut SupervisedLink, payload: Vec<u8>| {
                        let sent = link
                            .send(Frame::new(FrameKind::Ctrl, payload))
                            .and_then(|_| link.flush());
                        if let Err(e) = sent {
                            panic!("shard {index} link: {e}");
                        }
                    };
                    'run: loop {
                        heartbeat.beat();
                        // 1. Absorb control commands.
                        loop {
                            match cmd_rx.try_recv() {
                                Ok(ShardCmd::Register {
                                    query,
                                    params,
                                    population,
                                    // Retention is rejected for process
                                    // transport before any command is
                                    // sent, so the flag is never set
                                    // here.
                                    retain: _,
                                }) => send_ctrl(
                                    &mut link,
                                    remote::encode_register(&query, params, population),
                                ),
                                Ok(ShardCmd::Fetch { .. }) => {
                                    // Unreachable by construction (see
                                    // `retain` above); reply empty so a
                                    // misdirected fetch cannot wedge the
                                    // caller.
                                    let _ = reply_tx.send(ShardReply::Stored {
                                        answers: Vec::new(),
                                    });
                                }
                                Ok(ShardCmd::Close(c)) => closes.push_back((c, Instant::now())),
                                Ok(ShardCmd::Probe) => {
                                    send_ctrl(&mut link, remote::encode_probe())
                                }
                                Ok(ShardCmd::Die) => panic!("injected shard fault"),
                                Ok(ShardCmd::Shutdown) | Err(TryRecvError::Disconnected) => {
                                    break 'run;
                                }
                                Err(TryRecvError::Empty) => break,
                            }
                        }
                        // 2. Issue the oldest close once its global
                        //    accounting settles or its deadline fires.
                        if awaiting.is_none() {
                            if let Some((front, since)) = closes.front() {
                                let global = ledger.count(front.epoch);
                                if global >= front.expect || since.elapsed() >= deadline {
                                    let (c, _) = closes.pop_front().expect("front exists");
                                    if let Some(delay) = straggle {
                                        std::thread::sleep(delay);
                                    }
                                    // Recycled estimators have no home
                                    // here — the child owns its own
                                    // pool — so they are dropped.
                                    drop(c.recycle);
                                    send_ctrl(
                                        &mut link,
                                        remote::encode_finish(c.epoch.0, c.watermark.0),
                                    );
                                    awaiting = Some(c.epoch.0);
                                }
                            }
                        }
                        // 3. Forward relayed shares to the child.
                        loop {
                            if consumer.poll_into(remote::BATCH_RECORDS, &mut batch) == 0 {
                                break;
                            }
                            msgs.clear();
                            for (stream, partition, rec) in batch.drain(..) {
                                msgs.push(remote::record_to_msg(stream, partition, &rec));
                            }
                            if let Err(e) = remote::send_batched(&mut link, &msgs) {
                                panic!("shard {index} link: {e}");
                            }
                        }
                        // 4. Drain the child's frames (the socket read
                        //    poll doubles as the idle park).
                        loop {
                            match link.recv() {
                                Ok(Some(f)) => match f.kind {
                                    FrameKind::Progress => match decode_progress(&f.payload) {
                                        Ok((epoch, delta)) => ledger.add(Timestamp(epoch), delta),
                                        Err(e) => panic!("shard {index} link: {e}"),
                                    },
                                    FrameKind::CtrlReply => {
                                        match remote::decode_reply(&f.payload) {
                                            Ok(remote::NodeReply::Registered) => {
                                                let _ = reply_tx.send(ShardReply::Registered);
                                            }
                                            Ok(remote::NodeReply::Closed {
                                                epoch,
                                                decoded,
                                                busy,
                                                windows,
                                            }) => {
                                                assert_eq!(
                                                    awaiting.take(),
                                                    Some(epoch),
                                                    "shard {index}: close reply out of order"
                                                );
                                                let _ = reply_tx.send(ShardReply::Closed {
                                                    decoded,
                                                    windows,
                                                    busy,
                                                });
                                            }
                                            Ok(remote::NodeReply::Health {
                                                quad,
                                                dead_lettered,
                                                late_answers,
                                                busy,
                                            }) => {
                                                let _ = reply_tx.send(ShardReply::Health {
                                                    quad,
                                                    dead_lettered,
                                                    late_answers,
                                                    busy,
                                                });
                                            }
                                            Err(e) => panic!("shard {index} link: {e}"),
                                        }
                                    }
                                    _ => {}
                                },
                                Ok(None) => break,
                                Err(e) => panic!("shard {index} link: {e}"),
                            }
                        }
                        if let Err(e) = link.maybe_resend() {
                            panic!("shard {index} link: {e}");
                        }
                    }
                    // Best-effort goodbye so the child exits cleanly
                    // before the guard kills it.
                    let _ = link.send(Frame::bare(FrameKind::Shutdown));
                    let _ = link.flush();
                }));
                if let Err(payload) = outcome {
                    crashes.lock().expect("crash log lock").push(Crash {
                        role: "shard",
                        index,
                        message: panic_message(&*payload),
                    });
                }
                drop(reply_tx);
            })
            .expect("spawn shard bridge thread");
        ShardHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
            busy_base: Duration::ZERO,
            dead: false,
        }
    }
}

// ---------------------------------------------------------------------------
// The deployment.

/// Accumulated per-thread CPU time over a deployment's lifetime —
/// the instrumentation behind machine-level throughput reporting
/// (see [`thread_busy_time`]).
#[derive(Debug, Clone)]
pub struct BusyProfile {
    /// Per client-worker CPU time in the answer stage.
    pub workers: Vec<Duration>,
    /// Per proxy-thread CPU time (forwarding plus the free-running
    /// poll loop).
    pub proxies: Vec<Duration>,
    /// Per shard-thread CPU time (drain/close plus the free-running
    /// poll loop).
    pub shards: Vec<Duration>,
}

impl BusyProfile {
    fn new(workers: usize, proxies: usize, shards: usize) -> BusyProfile {
        BusyProfile {
            workers: vec![Duration::ZERO; workers],
            proxies: vec![Duration::ZERO; proxies],
            shards: vec![Duration::ZERO; shards],
        }
    }

    /// The critical path of a *barrier-synchronized* pass:
    /// `max(workers) + max(proxies) + max(shards)` — what an epoch
    /// costs when the stages run one after another (the BENCH_4
    /// methodology, kept for like-for-like comparisons).
    pub fn critical_path(&self) -> Duration {
        let max = |v: &[Duration]| v.iter().copied().max().unwrap_or(Duration::ZERO);
        max(&self.workers) + max(&self.proxies) + max(&self.shards)
    }

    /// The busiest single thread — the critical resource of the
    /// **overlapped** pipeline: with one core per thread and the
    /// stages running concurrently, steady-state wall time converges
    /// to this, so `messages / bottleneck()` is the pipelined machine
    /// rate (the BENCH_5 methodology).
    pub fn bottleneck(&self) -> Duration {
        self.workers
            .iter()
            .chain(&self.proxies)
            .chain(&self.shards)
            .copied()
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// One submitted, not-yet-completed epoch.
struct InFlightEpoch {
    /// The epoch tag: the event timestamp every answer of this epoch
    /// carries.
    epoch: Timestamp,
    /// The watermark closing the epoch's windows.
    watermark: Timestamp,
    /// Worker commands issued for this epoch — one per scheduled
    /// query — so completion knows how many `Answered` replies each
    /// worker owes.
    cmds: usize,
    /// Journal index of this epoch's first record (charge or
    /// submitted). A snapshot taken while the epoch is open must not
    /// prune below this: recovery rebuilds open epochs from exactly
    /// these records. `0` when the deployment is not durable.
    journal_mark: u64,
}

/// A threaded, sharded in-process PrivApprox deployment with
/// overlapped-epoch pipelining (see the module docs for topology,
/// the pipeline protocol and guarantees). Drives the same query-epoch
/// surface as [`System`](crate::System) — `analyst()`, `load_*`,
/// `run_epoch`, `drain_results` — and produces byte-identical
/// results; [`ShardedSystem::submit_epoch`]/[`ShardedSystem::flush_epochs`]
/// expose the pipelined form.
pub struct ShardedSystem {
    config: ShardedConfig,
    /// How proxies and shards are hosted: in-process threads or
    /// spawned `privapprox-node` children behind supervised sockets.
    transport: TransportMode,
    /// Per-link supervision counters (one entry per proxy/shard link
    /// ever dialed, including respawn replacements). Empty in
    /// in-process mode.
    link_stats: Vec<Arc<LinkStats>>,
    partitions: usize,
    broker: Broker,
    workers: Vec<WorkerHandle>,
    proxies: Vec<ProxyHandle>,
    shards: Vec<ShardHandle>,
    queries: HashMap<QueryId, (Query, ExecutionParams)>,
    initializer: Initializer,
    /// The shared event clock, advanced exactly like `System`'s.
    now_ms: u64,
    next_serial: u32,
    /// Submitted epochs not yet completed, oldest first.
    in_flight: VecDeque<InFlightEpoch>,
    /// Closed, merged windows not yet returned.
    pending: Vec<QueryResult>,
    /// Recycled result shells for the merge step.
    spare_shells: Vec<QueryResult>,
    /// Estimators consumed by the last merge, owed back to each shard
    /// with its next close command.
    pending_recycle: Vec<Vec<BucketEstimator>>,
    /// Cumulative per-thread busy time (workers accumulate deltas;
    /// shard slots hold the latest cumulative reading; proxy times
    /// live in the handles' atomics).
    busy: BusyProfile,
    /// Panic records from supervised threads, drained as faults are
    /// reported.
    crashes: CrashLog,
    /// Global per-epoch decode accounting shared with every shard.
    ledger: Arc<EpochLedger>,
    /// Liveness registry: every thread beats a heartbeat here.
    watchdog: Watchdog,
    /// Every load and answer command ever issued, for worker-respawn
    /// replay (loads re-applied, answers muted; see [`ReplayCmd`]).
    history: Vec<ReplayCmd>,
    /// Deployment faults observed so far (panics, wedges, respawn
    /// failures), oldest first.
    faults: Vec<DeployError>,
    /// Epochs that closed with fewer answers than expected.
    partial_closes: u64,
    /// Answers expected but never accounted across all partial
    /// closes.
    lost_answers: u64,
    /// Threads respawned so far.
    respawns: u64,
    /// Worker batch flushes that hit the backpressure deadline (the
    /// proxies' stalls live in their handles' atomics; workers report
    /// theirs through epoch replies, tallied here).
    worker_backpressure: u64,
    /// Every `privapprox-node` child ever spawned (label, OS pid),
    /// including respawn replacements. Empty in in-process mode; used
    /// by [`ShardedSystem::child_cpu`].
    children: Vec<(String, u32)>,
    /// Multi-tenant schedule: queries admitted to
    /// [`ShardedSystem::submit_epoch_all`], in admission order.
    admitted: Vec<QueryId>,
    /// Per-query privacy-budget spend ledgers (unbounded unless
    /// [`ShardedSystem::set_budget`] assigned a cap).
    ledgers: HashMap<QueryId, BudgetLedger>,
    /// Typed terminal results of budget-retired queries, each
    /// reported exactly once via [`ShardedSystem::drain_retired`].
    retired: Vec<Retirement>,
    /// Every query ever retired (permanent — draining the terminal
    /// results must not let a spent query back into the schedule).
    terminal: Vec<QueryId>,
    /// Per-query feedback controllers (opt-in).
    feedback: HashMap<QueryId, FeedbackController>,
    /// Worst relative CI bound of each query's most recently
    /// finalized window — the feedback signal.
    last_error: HashMap<QueryId, f64>,
    /// Queries whose shards retain decoded answers for batch queries.
    retain_set: Vec<QueryId>,
    /// Recycled estimator for the batch-query path (the pooled
    /// estimator lifecycle the historical regression suite pins).
    batch_scratch: Option<BucketEstimator>,
    /// The durable store (journal + snapshots), when enabled.
    durable: Option<DurableState>,
    /// State reconstructed from the store at build time, consumed by
    /// [`ShardedSystem::resume`].
    recovered: Option<Box<RecoveredState>>,
    /// Per-(query, shard) window high-water marks: the largest window
    /// end each shard has contributed for each query, checkpointed in
    /// every close record.
    high_water: HashMap<(QueryId, usize), u64>,
    /// Committed `"aggregator"`-group offsets checkpointed by the
    /// crashed incarnation's last close. A restart rebuilds the broker
    /// log, so these are the *pre-crash* floors for audit/rebasing,
    /// not live positions; see [`ShardedSystem::recovered_offsets`].
    recovered_offsets: Vec<(String, usize, u64)>,
    /// Retained-warehouse contents recovered from the last snapshot,
    /// merged into [`ShardedSystem::batch_query`] answers (the shards'
    /// in-memory stores die with the crash).
    recovered_warehouses: HashMap<QueryId, Vec<(u64, u128, BitVec)>>,
    /// Lifetime epoch closes (snapshot meta; survives restarts).
    epochs_closed_total: u64,
    /// Lifetime submitted epochs (drives the crash-injection hook).
    epochs_submitted_total: u64,
    /// Test hook: abort after this submitted epoch's journal fsync.
    crash_after_journal: Option<u64>,
}

/// The typed terminal result of a query retired mid-stream by budget
/// exhaustion: its ledger rejected an epoch's `ε_zk` debit, so the
/// query left the schedule having sent nothing that epoch. Reported
/// exactly once via [`ShardedSystem::drain_retired`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retirement {
    /// The retired query.
    pub query: QueryId,
    /// Total ε spent across the query's lifetime (≤ `allocated`).
    pub spent: f64,
    /// The lifetime allowance the ledger enforced.
    pub allocated: f64,
    /// Epochs the query answered before exhaustion.
    pub epochs: u64,
}

/// A deployment-wide health snapshot: the aggregator quad plus the
/// quarantine, degradation and supervision counters. See
/// [`ShardedSystem::deploy_health`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeployHealth {
    /// Records that failed decode (malformed / corrupt shares).
    pub undecodable: u64,
    /// Decoded answers for unregistered queries.
    pub unroutable: u64,
    /// Duplicate shares dropped by the joiner.
    pub duplicates: u64,
    /// Joins evicted incomplete after the join timeout.
    pub expired_joins: u64,
    /// Poisoned records preserved on the dead-letter topic.
    pub dead_lettered: u64,
    /// Decoded answers dropped behind the watermark (e.g. records
    /// arriving after their epoch partially closed).
    pub late_answers: u64,
    /// Epochs that closed on their deadline with fewer answers than
    /// expected (each one degraded to a smaller effective sample).
    pub partial_closes: u64,
    /// Answers expected but never accounted across partial closes.
    pub lost_answers: u64,
    /// Worker threads that panicked or wedged.
    pub worker_panics: u64,
    /// Shard threads that panicked or wedged.
    pub shard_panics: u64,
    /// Proxy threads that panicked.
    pub proxy_panics: u64,
    /// Threads respawned.
    pub respawns: u64,
    /// Backpressure deadlines hit by producers: relay retries plus
    /// worker batch flushes that gave up at the deadline.
    pub backpressure_stalls: u64,
    /// Socket links re-dialed after a severed connection (process
    /// transport; always zero in-process).
    pub reconnects: u64,
    /// Frames bounced by a node's admission control (`Overloaded` /
    /// `RateLimited` rejections observed by the parent's links).
    pub rejections: u64,
    /// Unacknowledged frames retransmitted after a resend stall.
    pub retries: u64,
    /// Poisoned records evicted from the bounded dead-letter topic to
    /// admit newer ones (drop-oldest overflow).
    pub dead_letter_dropped: u64,
    /// Successful crash recoveries of the durable store directory
    /// (persisted in snapshot meta, so it survives further restarts).
    /// Zero when the deployment is not durable.
    pub recoveries: u64,
    /// On-disk bytes of the recovery journal: live WAL segments plus
    /// the unsynced append buffer. Bounded to O(snapshot interval) by
    /// segment pruning at each snapshot.
    pub journal_bytes: u64,
    /// Snapshot files currently retained on disk (the newest plus one
    /// predecessor kept as a fallback).
    pub snapshot_count: u64,
}

impl ShardedSystem {
    /// Starts building a deployment.
    pub fn builder() -> ShardedSystemBuilder {
        ShardedSystemBuilder::default()
    }

    /// The configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Replaces the initializer (e.g. to set a privacy ceiling).
    pub fn set_initializer(&mut self, init: Initializer) {
        self.initializer = init;
    }

    /// The partition a client is pinned to: `c mod partitions`.
    pub fn partition_of(&self, client: u64) -> usize {
        (client % self.partitions as u64) as usize
    }

    /// The shard owning a partition under the group assignment
    /// (`p mod shards` — shards joined the group in order, so rank
    /// equals shard index).
    pub fn shard_of_partition(&self, partition: usize) -> usize {
        partition % self.config.shards
    }

    /// Number of epochs currently in flight (submitted, not yet
    /// completed).
    pub fn in_flight_epochs(&self) -> usize {
        self.in_flight.len()
    }

    /// Populates every client with a one-row table holding a numeric
    /// column, exactly like
    /// [`System::load_numeric_column`](crate::System::load_numeric_column).
    /// Completes any in-flight epochs first: loads must not reorder
    /// around pending answer commands. The load is appended to the
    /// replay log, so respawned workers rebuild it.
    pub fn load_numeric_column<F>(&mut self, table: &str, column: &str, f: F) -> Result<(), CoreError>
    where
        F: Fn(usize) -> f64 + Send + Sync + 'static,
    {
        self.apply_load(LoadCmd::Numeric {
            table: table.to_string(),
            column: column.to_string(),
            f: Arc::new(f),
        })
    }

    /// Populates every client with arbitrary rows, exactly like
    /// [`System::load_rows`](crate::System::load_rows). Completes any
    /// in-flight epochs first; appended to the replay log.
    pub fn load_rows<F>(&mut self, table: &str, schema: Schema, f: F) -> Result<(), CoreError>
    where
        F: Fn(usize) -> Vec<Vec<Value>> + Send + Sync + 'static,
    {
        self.apply_load(LoadCmd::Rows {
            table: table.to_string(),
            schema,
            f: Arc::new(f),
        })
    }

    /// Sends a load to every live worker and waits for the acks. A
    /// worker dying mid-load is respawned — and the respawn replays
    /// the full load log, which already includes this load, so the
    /// replacement comes back fully populated.
    fn apply_load(&mut self, load: LoadCmd) -> Result<(), CoreError> {
        let _ = self.flush_epochs();
        self.repair();
        // Log before sending: a respawn triggered below must replay
        // this load too.
        self.history.push(ReplayCmd::Load(load.clone()));
        for w in &self.workers {
            if w.dead {
                continue;
            }
            let _ = w.cmd.send(WorkerCmd::Load(load.clone()));
        }
        let mut result = Ok(());
        for wi in 0..self.workers.len() {
            if self.workers[wi].dead {
                continue;
            }
            match self.workers[wi].reply.recv_timeout(self.control_wait()) {
                Ok(WorkerReply::Loaded) => {}
                Ok(WorkerReply::Answered { .. }) => unreachable!("load expects Loaded"),
                Err(err) => {
                    let fault = self.worker_down(wi, err);
                    if result.is_ok() {
                        result = Err(fault.into());
                    }
                    // A successful respawn replayed the log (this
                    // load included), so the deployment is whole
                    // again even though the fault is reported.
                    if self.respawn_worker(wi).is_ok() {
                        result = Ok(());
                    }
                }
            }
        }
        result
    }

    /// Opens an analyst session for query submission.
    pub fn analyst(&mut self) -> ShardedAnalystSession<'_> {
        ShardedAnalystSession {
            system: self,
            sql: String::new(),
            buckets: None,
            budget: Budget::default_accuracy(),
            window: None,
            explicit_params: None,
        }
    }

    /// The execution parameters currently assigned to a query.
    pub fn params(&self, id: QueryId) -> Option<ExecutionParams> {
        self.queries.get(&id).map(|(_, p)| *p)
    }

    /// Registers a signed query with explicit parameters on every
    /// shard (the lower-level path under
    /// [`ShardedAnalystSession::submit`]). Completes any in-flight
    /// epochs first so registration cannot interleave with pending
    /// closes. A shard dying mid-registration is respawned
    /// pre-registered (respawns register every known query), so the
    /// deployment never runs with a query known to some shards only.
    pub fn register(&mut self, query: Query, params: ExecutionParams) -> Result<(), CoreError> {
        let _ = self.flush_epochs();
        self.repair();
        // Record before sending: a respawn triggered below registers
        // from this map, covering the in-flight registration.
        self.queries.insert(query.id, (query.clone(), params));
        // Journal before the shard sends: a crash mid-registration
        // recovers the query (re-registration appends a fresh record;
        // the latest wins at replay).
        if self.durable.is_some() {
            let rec = persist::rec_registered(
                &query,
                params,
                self.retain_set.contains(&query.id),
                self.next_serial as u64,
            );
            self.journal(persist::K_REGISTERED, rec)?;
            self.journal_sync()?;
        }
        for shard in &self.shards {
            if shard.dead {
                continue;
            }
            let _ = shard.cmd.send(ShardCmd::Register {
                query: Box::new(query.clone()),
                params,
                population: self.config.clients,
                retain: self.retain_set.contains(&query.id),
            });
        }
        self.wake_shards();
        let mut result = Ok(());
        for s in 0..self.shards.len() {
            if self.shards[s].dead {
                continue;
            }
            match self.shards[s].reply.recv_timeout(self.control_wait()) {
                Ok(ShardReply::Registered) => {}
                Ok(_) => unreachable!("register expects Registered"),
                Err(err) => {
                    let fault = self.shard_down(s, err);
                    if result.is_ok() {
                        result = Err(fault.into());
                    }
                    if self.respawn_shard(s).is_ok() {
                        result = Ok(());
                    }
                }
            }
        }
        result
    }

    /// Submits one epoch of a query into the pipeline: the workers
    /// start answering immediately, while proxies forward and shards
    /// drain whatever earlier epochs are still in flight. If the
    /// pipeline is at [depth](ShardedSystemBuilder::pipeline_depth),
    /// the oldest epoch is completed first (its windows land in the
    /// [`ShardedSystem::drain_results`] buffer, and its client error —
    /// if any — is returned here).
    pub fn submit_epoch(&mut self, query: &Query) -> Result<(), CoreError> {
        let (_, params) = *self.queries.get(&query.id).ok_or(CoreError::UnknownQuery)?;
        let depth = self.config.pipeline_depth.max(1);
        let mut result = Ok(());
        while self.in_flight.len() >= depth {
            let r = self.complete_oldest(false);
            if result.is_ok() {
                result = r;
            }
        }
        let window_size = query.window.size;
        let epoch_start = self.now_ms.div_ceil(window_size) * window_size;
        let ts = Timestamp(epoch_start + window_size / 2);
        let watermark = Timestamp(epoch_start + window_size);
        self.now_ms = watermark.0;
        // Durable barrier: the epoch's `Submitted` record is fsynced
        // before the first worker send, so a crash can never lose an
        // epoch whose shares escaped.
        let journal_mark = self.durable.as_ref().map_or(0, |d| d.wal.next_index());
        if self.durable.is_some() {
            let rec =
                persist::rec_submitted(ts, watermark, std::slice::from_ref(&(query.clone(), params)));
            self.journal(persist::K_SUBMITTED, rec)?;
            self.journal_sync()?;
        }
        self.crash_hook();
        for wi in 0..self.workers.len() {
            if self.workers[wi].dead {
                continue;
            }
            let cmd = WorkerCmd::Answer {
                query: query.clone(),
                params,
                ts,
                live: true,
            };
            if self.workers[wi].cmd.send(cmd).is_ok() {
                continue;
            }
            // The command channel disconnected: the worker died since
            // its last reply. Report, respawn, and re-send this
            // epoch's command to the replacement (which replayed the
            // history, so its clients answer identically). This
            // epoch enters the history only below, after the send
            // loop — the replacement must receive it live, not as a
            // muted replay.
            let fault = self.worker_down(wi, RecvTimeoutError::Disconnected);
            if result.is_ok() {
                result = Err(fault.into());
            }
            if self.respawn_worker(wi).is_ok() {
                let resend = WorkerCmd::Answer {
                    query: query.clone(),
                    params,
                    ts,
                    live: true,
                };
                if self.workers[wi].cmd.send(resend).is_ok() {
                    result = Ok(());
                }
            }
        }
        self.history.push(ReplayCmd::Answer {
            query: query.clone(),
            params,
            ts,
        });
        self.in_flight.push_back(InFlightEpoch {
            epoch: ts,
            watermark,
            cmds: 1,
            journal_mark,
        });
        result
    }

    /// Completes every in-flight epoch, oldest first: collects worker
    /// replies, issues the epoch-tagged closes, merges shard windows
    /// and finalizes results into the
    /// [`ShardedSystem::drain_results`] buffer. Returns the first
    /// client error encountered (later epochs still complete — the
    /// cleanup guarantee).
    pub fn flush_epochs(&mut self) -> Result<(), CoreError> {
        let mut result = Ok(());
        while !self.in_flight.is_empty() {
            let r = self.complete_oldest(false);
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// Runs one epoch of a query through the overlapped pipeline and
    /// waits for it: submit + flush. Within the epoch the stages
    /// still stream concurrently (workers feed proxies feed shards);
    /// across epochs, use [`ShardedSystem::submit_epoch`] to keep the
    /// pipeline full.
    ///
    /// Returns the epoch's windowed result — byte-identical to what
    /// [`System::run_epoch`](crate::System::run_epoch) returns for
    /// the same configuration and seed, at any pipeline depth.
    pub fn run_epoch(&mut self, query: &Query) -> Result<QueryResult, CoreError> {
        let mut outcome = self.submit_epoch(query);
        let flushed = self.flush_epochs();
        if outcome.is_ok() {
            outcome = flushed;
        }
        outcome?;
        let idx = self
            .pending
            .iter()
            .rposition(|r| r.query == query.id)
            .ok_or(CoreError::UnknownQuery)?;
        Ok(self.pending.remove(idx))
    }

    // ----- multi-tenant schedule ------------------------------------

    /// Admits a registered query to the multi-tenant schedule:
    /// [`ShardedSystem::submit_epoch_all`] answers every admitted
    /// query each epoch, sharing the worker pool. Queries on one
    /// schedule must agree on window size (one shared event clock
    /// tags each epoch). Re-admitting is a no-op; a budget-retired
    /// query cannot come back (its allowance is spent).
    pub fn admit(&mut self, query: QueryId) -> Result<(), CoreError> {
        let (q, _) = self.queries.get(&query).ok_or(CoreError::UnknownQuery)?;
        if self.terminal.contains(&query) {
            return Err(CoreError::Deploy(DeployError::InvalidConfig(format!(
                "query {query:?} was retired: its privacy budget is spent"
            ))));
        }
        if self.admitted.contains(&query) {
            return Ok(());
        }
        if let Some(first) = self.admitted.first() {
            let shared = self.queries[first].0.window.size;
            if q.window.size != shared {
                return Err(CoreError::Deploy(DeployError::InvalidConfig(format!(
                    "scheduled queries must share a window size: {} != {}",
                    q.window.size, shared
                ))));
            }
        }
        self.admitted.push(query);
        if self.durable.is_some() {
            self.journal(persist::K_ADMITTED, persist::rec_query_only(query))?;
            self.journal_sync()?;
        }
        Ok(())
    }

    /// The queries currently admitted to the epoch schedule, in
    /// admission order.
    pub fn admitted(&self) -> &[QueryId] {
        &self.admitted
    }

    /// Withdraws a query from the schedule without retiring it: the
    /// ledger keeps its spend and the query may be re-admitted.
    pub fn withdraw(&mut self, query: QueryId) {
        self.admitted.retain(|q| *q != query);
        // Buffered append only: the withdrawal becomes durable with
        // the next epoch's sync. Losing it re-admits the query on
        // recovery — a scheduling hiccup, never a privacy leak (every
        // epoch still charges before sending).
        if self.durable.is_some() {
            if let Err(CoreError::Deploy(fault)) =
                self.journal(persist::K_WITHDRAWN, persist::rec_query_only(query))
            {
                self.faults.push(fault);
            }
        }
    }

    /// Assigns a lifetime privacy budget to a query, replacing its
    /// ledger. Every scheduled epoch debits `ε_zk(s, p, q)` — the
    /// zero-knowledge privacy spend of one answer under sampling and
    /// randomized response (paper Equation 9). Once a debit would
    /// overdraw, the query is retired mid-stream: it answers no
    /// further epochs and its typed terminal [`Retirement`] surfaces
    /// via [`ShardedSystem::drain_retired`].
    pub fn set_budget(&mut self, query: QueryId, budget: PrivacyBudget) -> Result<(), CoreError> {
        if !self.queries.contains_key(&query) {
            return Err(CoreError::UnknownQuery);
        }
        let ledger = BudgetLedger::new(budget);
        let allocated = ledger.allocated();
        self.ledgers.insert(query, ledger);
        if self.durable.is_some() {
            self.journal(persist::K_BUDGET, persist::rec_budget(query, allocated))?;
            self.journal_sync()?;
        }
        Ok(())
    }

    /// The query's spend ledger, if one exists (assigned by
    /// [`ShardedSystem::set_budget`] or created unbounded on its
    /// first scheduled epoch).
    pub fn budget_ledger(&self, query: QueryId) -> Option<&BudgetLedger> {
        self.ledgers.get(&query)
    }

    /// Terminal results of queries retired by budget exhaustion since
    /// the last drain, in retirement order. Each retirement is
    /// reported exactly once.
    pub fn drain_retired(&mut self) -> Vec<Retirement> {
        std::mem::take(&mut self.retired)
    }

    /// Attaches a StreamApprox-style feedback controller: each
    /// [`ShardedSystem::apply_feedback`] re-tunes the query's
    /// execution parameters from the previous window's observed
    /// error.
    pub fn enable_feedback(
        &mut self,
        query: QueryId,
        controller: FeedbackController,
    ) -> Result<(), CoreError> {
        if !self.queries.contains_key(&query) {
            return Err(CoreError::UnknownQuery);
        }
        self.feedback.insert(query, controller);
        Ok(())
    }

    /// The worst relative CI bound observed in the query's most
    /// recently finalized window — the feedback signal.
    pub fn last_observed_error(&self, query: QueryId) -> Option<f64> {
        self.last_error.get(&query).copied()
    }

    /// Flushes the pipeline, then re-tunes every admitted query that
    /// has a controller and an observed error, re-registering changed
    /// parameters on every shard. Flushing first keeps the pipelined
    /// schedule equivalent to an isolated run: the retune takes
    /// effect at exactly the same epoch boundary in both.
    pub fn apply_feedback(&mut self) -> Result<(), CoreError> {
        let mut result = self.flush_epochs();
        let mut retunes = Vec::new();
        for qid in &self.admitted {
            let (Some(ctrl), Some(err)) = (self.feedback.get(qid), self.last_error.get(qid))
            else {
                continue;
            };
            let params = self.queries[qid].1;
            let (next, changed) = ctrl.retune(params, *err);
            if changed {
                retunes.push((*qid, next));
            }
        }
        for (qid, next) in retunes {
            let query = self.queries[&qid].0.clone();
            let r = self.register(query, next);
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    /// Submits one multi-tenant epoch: every admitted query is
    /// answered by every client under ONE shared epoch timestamp —
    /// one participation flip, randomization, split and send per
    /// (client, query), batched through the zero-copy `append_batch`
    /// path — after charging each query's budget ledger for the
    /// epoch. A query whose ledger cannot cover the `ε_zk` debit is
    /// retired *before* any command is sent (exactly one
    /// [`Retirement`], zero shares this epoch) and the epoch proceeds
    /// with the survivors; with no survivors, nothing is submitted.
    pub fn submit_epoch_all(&mut self) -> Result<(), CoreError> {
        // Budget pass first: charging happens strictly before any
        // worker command, so an exhausted query contributes nothing
        // to the epoch it was retired in.
        let schedule = std::mem::take(&mut self.admitted);
        let mut batch: Vec<(Query, ExecutionParams)> = Vec::with_capacity(schedule.len());
        // Journal material gathered during the pass: each successful
        // debit's *absolute* post-charge state (idempotent at replay)
        // and each retirement. The charge records themselves are
        // appended below, once the epoch timestamp is known.
        let mut charged: Vec<(QueryId, f64, f64, u64)> = Vec::new();
        let mut retire_recs: Vec<Vec<u8>> = Vec::new();
        let durable_on = self.durable.is_some();
        for qid in schedule {
            let (query, params) = self
                .queries
                .get(&qid)
                .expect("admitted queries are registered")
                .clone();
            let eps = epsilon_zk(params.s, params.p, params.q);
            let ledger = self
                .ledgers
                .entry(qid)
                .or_insert_with(|| BudgetLedger::new(PrivacyBudget::unbounded()));
            match ledger.try_charge(eps) {
                Ok(()) => {
                    if durable_on {
                        charged.push((qid, eps, ledger.spent(), ledger.epochs()));
                    }
                    self.admitted.push(qid);
                    batch.push((query, params));
                }
                Err(exhausted) => {
                    let retirement = Retirement {
                        query: qid,
                        spent: exhausted.spent,
                        allocated: exhausted.allocated,
                        epochs: exhausted.epochs,
                    };
                    if durable_on {
                        retire_recs.push(persist::rec_retired(&retirement));
                    }
                    self.terminal.push(qid);
                    self.retired.push(retirement);
                }
            }
        }
        for rec in retire_recs {
            self.journal(persist::K_RETIRED, rec)?;
        }
        if batch.is_empty() {
            // No epoch sync will follow: make any retirements durable
            // now.
            self.journal_sync()?;
            return Ok(());
        }
        let depth = self.config.pipeline_depth.max(1);
        let mut result = Ok(());
        while self.in_flight.len() >= depth {
            let r = self.complete_oldest(false);
            if result.is_ok() {
                result = r;
            }
        }
        // One shared clock step for the whole schedule (`admit`
        // validated the equal window sizes).
        let window_size = batch[0].0.window.size;
        let epoch_start = self.now_ms.div_ceil(window_size) * window_size;
        let ts = Timestamp(epoch_start + window_size / 2);
        let watermark = Timestamp(epoch_start + window_size);
        self.now_ms = watermark.0;
        // Durable barrier: every ledger debit plus the epoch's
        // `Submitted` record land under ONE fsync, strictly before the
        // first worker send. A crash after the sync re-runs the epoch
        // without re-charging; a crash before it leaves (at worst)
        // orphan charges that reconstruction drops — the recovered
        // spend can only under-report, never over-spend ε.
        let journal_mark = self.durable.as_ref().map_or(0, |d| d.wal.next_index());
        if durable_on {
            for (qid, eps, spent_after, epochs_after) in &charged {
                let rec = persist::rec_charge(*qid, ts, *eps, *spent_after, *epochs_after);
                self.journal(persist::K_CHARGE, rec)?;
            }
            let rec = persist::rec_submitted(ts, watermark, &batch);
            self.journal(persist::K_SUBMITTED, rec)?;
            self.journal_sync()?;
        }
        self.crash_hook();
        for wi in 0..self.workers.len() {
            if self.workers[wi].dead {
                continue;
            }
            let mut sent = 0;
            while sent < batch.len() {
                let (query, params) = &batch[sent];
                let cmd = WorkerCmd::Answer {
                    query: query.clone(),
                    params: *params,
                    ts,
                    live: true,
                };
                if self.workers[wi].cmd.send(cmd).is_ok() {
                    sent += 1;
                    continue;
                }
                // Dead since its last reply: report, respawn (the
                // replacement replays prior history muted), then
                // replay this epoch's batch live from the top — the
                // dead channel swallowed the commands already sent.
                let fault = self.worker_down(wi, RecvTimeoutError::Disconnected);
                if result.is_ok() {
                    result = Err(fault.into());
                }
                if self.respawn_worker(wi).is_err() {
                    break;
                }
                sent = 0;
                result = Ok(());
            }
        }
        for (query, params) in &batch {
            self.history.push(ReplayCmd::Answer {
                query: query.clone(),
                params: *params,
                ts,
            });
        }
        self.in_flight.push_back(InFlightEpoch {
            epoch: ts,
            watermark,
            cmds: batch.len(),
            journal_mark,
        });
        result
    }

    /// Runs one multi-tenant epoch to completion: submit + flush.
    /// Every admitted query's windows land in
    /// [`ShardedSystem::drain_results`], sorted by window start then
    /// query id; retirements surface via
    /// [`ShardedSystem::drain_retired`].
    pub fn run_epoch_all(&mut self) -> Result<(), CoreError> {
        let mut outcome = self.submit_epoch_all();
        let flushed = self.flush_epochs();
        if outcome.is_ok() {
            outcome = flushed;
        }
        outcome
    }

    /// Turns on historical retention for a registered query: every
    /// shard keeps the decoded randomized answers it routes to the
    /// query, and [`ShardedSystem::batch_query`] answers batch
    /// queries over the retained stream (paper §3.3.1). In-process
    /// transport only — a remote shard child holds no fetchable
    /// store.
    pub fn retain_history(&mut self, query: QueryId) -> Result<(), CoreError> {
        if !matches!(self.transport, TransportMode::InProcess) {
            return Err(CoreError::Deploy(DeployError::InvalidConfig(
                "historical retention requires in-process shards".into(),
            )));
        }
        if self.retain_set.contains(&query) {
            return Ok(());
        }
        let (q, params) = self
            .queries
            .get(&query)
            .ok_or(CoreError::UnknownQuery)?
            .clone();
        self.retain_set.push(query);
        // Re-register with the retain flag; `register` flushes
        // in-flight epochs first, so retention starts at an epoch
        // boundary.
        self.register(q, params)
    }

    /// Answers a historical/batch query over the retained stream:
    /// the shards' stored answers for `query` within `range` are
    /// merged in canonical `(timestamp, MID)` order — threaded
    /// arrival interleavings cannot show — and re-sampled down to
    /// `batch_budget` answers (the §3.3.1 second sampling round)
    /// with an RNG derived deterministically from the deployment
    /// seed, the query and the range.
    pub fn batch_query(
        &mut self,
        query: QueryId,
        range: Window,
        batch_budget: usize,
    ) -> Result<QueryResult, CoreError> {
        if !self.retain_set.contains(&query) {
            return Err(CoreError::Deploy(DeployError::InvalidConfig(
                "historical retention is not enabled for this query".into(),
            )));
        }
        let mut first_error = self.flush_epochs().err();
        self.repair();
        let (q, params) = self
            .queries
            .get(&query)
            .ok_or(CoreError::UnknownQuery)?
            .clone();
        for shard in &self.shards {
            if shard.dead {
                continue;
            }
            let _ = shard.cmd.send(ShardCmd::Fetch { query, range });
        }
        self.wake_shards();
        let mut warehouse = Warehouse::new(query, q.answer.len(), params, self.config.clients);
        let wait = self.control_wait();
        for s in 0..self.shards.len() {
            if self.shards[s].dead {
                continue;
            }
            match self.shards[s].reply.recv_timeout(wait) {
                Ok(ShardReply::Stored { answers }) => {
                    for (ts, mid, answer) in answers {
                        warehouse.append(Timestamp(ts), MessageId(mid), answer);
                    }
                }
                Ok(_) => unreachable!("fetch expects Stored"),
                Err(err) => {
                    // The dead shard's retained history died with it:
                    // the batch answer degrades to the surviving
                    // stores, and the fault is reported.
                    let fault = self.shard_down(s, err);
                    first_error = first_error.or(Some(fault.into()));
                    let _ = self.respawn_shard(s);
                }
            }
        }
        // Answers retained before a crash live in the recovered
        // snapshot, not in the restarted shards' stores; the
        // warehouse's `(timestamp, MID)` keying dedups any overlap
        // with post-restart retention.
        if let Some(prev) = self.recovered_warehouses.get(&query) {
            for (ts, mid, answer) in prev {
                if range.contains(Timestamp(*ts)) {
                    warehouse.append(Timestamp(*ts), MessageId(*mid), answer.clone());
                }
            }
        }
        // Deterministic batch sampling: the same seed, query and
        // range always draw the same reservoir, so concurrent and
        // isolated runs agree byte for byte.
        let mut rng = StdRng::seed_from_u64(
            self.config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ query.to_u64().rotate_left(17)
                ^ range.start.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
                ^ range.end.0,
        );
        // The estimator comes from the recycled scratch slot — the
        // pooled lifecycle the historical regression suite pins (a
        // dirty estimator must never leak a prior query's counts).
        let mut est = self
            .batch_scratch
            .take()
            .unwrap_or_else(|| BucketEstimator::new(q.answer.len(), params.p.min(1.0), params.q));
        let result =
            warehouse.batch_query_with(&mut est, range, batch_budget, self.config.confidence, &mut rng);
        self.batch_scratch = Some(est);
        match first_error {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// Wakes shard threads parked in their blocking polls so a
    /// control message is observed at wakeup latency (shards park on
    /// their first subscribed topic's condvar).
    fn wake_shards(&self) {
        self.broker.notify_topic(&outbound_topic(ProxyId(0)));
    }

    /// Completes the oldest in-flight epoch. `lenient` (drop path)
    /// tolerates dead threads and incomplete drains without reporting
    /// faults or respawning.
    ///
    /// This is the supervised heart of the runtime: every wait is
    /// deadlined, a worker or shard that died mid-epoch surfaces as a
    /// typed [`DeployError`] (and is respawned), and an epoch whose
    /// global accounting cannot settle closes **partially** — the
    /// shards emit the decodes they have, the estimate scales by the
    /// observed sample (degrade-to-sampling), and the loss is counted
    /// in [`DeployHealth`].
    fn complete_oldest(&mut self, lenient: bool) -> Result<(), CoreError> {
        let Some(ep) = self.in_flight.pop_front() else {
            return Ok(());
        };
        // Worker replies arrive strictly in command order per worker,
        // so the oldest pending Answered on each channel is this
        // epoch's. A respawned worker skips the replies its dead
        // predecessor still owed (`reply_debt`).
        let wait = self.control_wait();
        let mut per_partition = vec![0u64; self.partitions];
        let mut first_error: Option<CoreError> = None;
        for wi in 0..self.workers.len() {
            // A multi-tenant epoch issued one Answer per scheduled
            // query; each worker owes that many replies.
            'replies: for _ in 0..ep.cmds {
                if self.workers[wi].dead {
                    break 'replies;
                }
                if self.workers[wi].reply_debt > 0 {
                    self.workers[wi].reply_debt -= 1;
                    continue;
                }
                let reply = match self.workers[wi].reply.recv_timeout(wait) {
                    Ok(r) => r,
                    Err(err) => {
                        if lenient {
                            self.workers[wi].dead = true;
                        } else {
                            let fault = self.worker_down(wi, err);
                            first_error = first_error.or(Some(fault.into()));
                            let _ = self.respawn_worker(wi);
                        }
                        // The dead worker's remaining replies for this
                        // epoch died with it; a successful respawn owes
                        // replies only for the *later* in-flight epochs.
                        break 'replies;
                    }
                };
                match reply {
                    WorkerReply::Answered {
                        per_partition: counts,
                        error,
                        busy,
                    } => {
                        self.busy.workers[wi] += busy;
                        for (total, n) in per_partition.iter_mut().zip(&counts) {
                            *total += n;
                        }
                        if let Some(e) = error {
                            if matches!(e, CoreError::Deploy(DeployError::Backpressure { .. })) {
                                self.worker_backpressure += 1;
                            }
                            first_error = first_error.or(Some(e));
                        }
                    }
                    WorkerReply::Loaded => unreachable!("answer expects Answered"),
                }
            }
        }
        // Sweep dead relays before waiting on the closes: a dead
        // proxy strands shares on its inbound topic, and respawning
        // it now lets the close drain instead of deadlining.
        if !lenient {
            self.check_proxies();
        }
        // Even when a client errored, the epoch still closes: the
        // shares sent before the failure are in the broker, and the
        // epoch-tagged close (with the exact partial count) is what
        // lets later — possibly already in-flight — epochs proceed
        // from consistent accounting. The partial window surfaces via
        // `drain_results`, mirroring `System`. The error is returned
        // after cleanup.
        //
        // The close carries the epoch's *total* expectation — every
        // shard closes against the global ledger, which stays correct
        // when a respawn reshuffles the partition → shard assignment.
        let expect: u64 = per_partition.iter().sum();
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.dead {
                continue;
            }
            let _ = shard.cmd.send(ShardCmd::Close(CloseCmd {
                epoch: ep.epoch,
                expect,
                watermark: ep.watermark,
                recycle: std::mem::take(&mut self.pending_recycle[s]),
            }));
        }
        self.wake_shards();
        // A live shard replies within the epoch deadline by
        // construction (the deadline fires the close even when the
        // accounting cannot settle); the slack on top only covers
        // scheduling, so a miss means the thread is gone.
        let shard_wait = self.config.epoch_deadline + wait;
        let mut merged: Vec<(QueryId, Window, BucketEstimator, usize)> = Vec::new();
        let mut total_decoded = 0u64;
        for s in 0..self.shards.len() {
            if self.shards[s].dead {
                continue;
            }
            let mut retried = false;
            loop {
                match self.shards[s].reply.recv_timeout(shard_wait) {
                    Ok(ShardReply::Closed {
                        decoded,
                        windows,
                        busy,
                    }) => {
                        self.busy.shards[s] = self.shards[s].busy_base + busy;
                        total_decoded += decoded;
                        for rw in windows {
                            match merged
                                .iter_mut()
                                .find(|(q, w, _, _)| *q == rw.query && *w == rw.window)
                            {
                                Some((_, _, est, _)) => {
                                    est.merge(&rw.estimator);
                                    self.pending_recycle[s].push(rw.estimator);
                                }
                                None => merged.push((rw.query, rw.window, rw.estimator, s)),
                            }
                        }
                        break;
                    }
                    Ok(_) => unreachable!("close expects Closed"),
                    Err(err) => {
                        if lenient {
                            self.shards[s].dead = true;
                            break;
                        }
                        let fault = self.shard_down(s, err);
                        first_error = first_error.or(Some(fault.into()));
                        if retried || self.respawn_shard(s).is_err() {
                            break;
                        }
                        // Re-issue the close to the replacement: the
                        // windows the dead shard held are lost (the
                        // close goes partial), but the watermark
                        // still advances on every shard — in order.
                        retried = true;
                        let _ = self.shards[s].cmd.send(ShardCmd::Close(CloseCmd {
                            epoch: ep.epoch,
                            expect,
                            watermark: ep.watermark,
                            recycle: Vec::new(),
                        }));
                        self.wake_shards();
                    }
                }
            }
        }
        // Fewer decodes accounted than answers sent: the epoch closed
        // partially (deadline fired, or a shard died with decodes in
        // its windows). More is also possible — a dead worker's
        // pre-crash shares decode without a reply to expect them —
        // and is not a degradation.
        if !lenient && total_decoded < expect {
            self.partial_closes += 1;
            self.lost_answers += expect - total_decoded;
        }
        self.ledger.retire(ep.epoch);
        merged.sort_unstable_by_key(|(q, w, _, _)| (w.start, q.to_u64()));
        let pending_base = self.pending.len();
        for (qid, window, mut est, src) in merged {
            if self.durable.is_some() {
                // Per-(query, shard) window high-water mark: the
                // largest window end this shard has contributed,
                // checkpointed in the close record below.
                let hw = self.high_water.entry((qid, src)).or_insert(0);
                *hw = (*hw).max(window.end.0);
            }
            let (_, qparams) = self.queries.get(&qid).expect("registered query");
            let mut shell = self.spare_shells.pop().unwrap_or_else(QueryResult::shell);
            finalize_window_into(
                &mut shell,
                qid,
                window,
                &mut est,
                *qparams,
                self.config.clients,
                self.config.confidence,
            );
            // Feedback signal: the most recent window's worst relative
            // CI bound (windows are sorted by start, so the newest
            // observation wins).
            self.last_error.insert(qid, shell.worst_relative_bound());
            self.pending.push(shell);
            self.pending_recycle[src].push(est);
        }
        // Checkpoint the close: finalized results, the shard group's
        // committed offsets and the window high-water marks, fsynced
        // before the results can be drained. The lenient (drop) path
        // never journals — an epoch abandoned at drop stays open in
        // the journal and is re-run on recovery (at-least-once).
        if !lenient && self.durable.is_some() {
            let offsets = self.broker.committed_offsets("aggregator");
            let mut marks: Vec<(QueryId, usize, u64)> = self
                .high_water
                .iter()
                .map(|(&(q, s), &hw)| (q, s, hw))
                .collect();
            marks.sort_unstable_by_key(|&(q, s, _)| (q.to_u64(), s));
            let rec = persist::rec_closed(&CloseRecord {
                epoch: ep.epoch,
                watermark: ep.watermark,
                partial: total_decoded < expect,
                lost: expect.saturating_sub(total_decoded),
                results: &self.pending[pending_base..],
                offsets: &offsets,
                marks: &marks,
            });
            let journaled = self
                .journal(persist::K_CLOSED, rec)
                .and_then(|()| self.journal_sync());
            if let Err(e) = journaled {
                first_error = first_error.or(Some(e));
            }
            self.epochs_closed_total += 1;
            let due = {
                let d = self.durable.as_mut().expect("durable checked above");
                d.closes_since_snapshot += 1;
                d.closes_since_snapshot >= d.snapshot_every
            };
            if due {
                if let Err(e) = self.write_snapshot_now() {
                    first_error = first_error.or(Some(e));
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drains any additional closed windows (sliding-window queries
    /// emit several per epoch; pipelined submissions park every
    /// completed epoch's results here).
    pub fn drain_results(&mut self) -> Vec<QueryResult> {
        std::mem::take(&mut self.pending)
    }

    /// Returns consumed results to the merge step's shell pool.
    pub fn recycle_results(&mut self, consumed: &mut Vec<QueryResult>) {
        self.spare_shells.append(consumed);
    }

    /// Broker traffic counters.
    pub fn broker_stats(&self) -> BrokerStats {
        self.broker.stats()
    }

    /// The deployment's broker, for tests and external taps that
    /// attach extra consumers (e.g. mirroring a topic, or wedging a
    /// partition's committed floor to exercise backpressure).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Aggregated shard health counters: `(undecodable, unroutable,
    /// duplicates, expired_joins)` summed across shards. Completes
    /// any in-flight epochs first, so the snapshot covers everything
    /// submitted so far.
    pub fn aggregator_health(&mut self) -> (u64, u64, u64, u64) {
        let t = self.probe_shards();
        (t.0, t.1, t.2, t.3)
    }

    /// Probes every live shard for its cumulative counters:
    /// `(undecodable, unroutable, duplicates, expired_joins,
    /// dead_lettered, late_answers)` summed across shards.
    fn probe_shards(&mut self) -> (u64, u64, u64, u64, u64, u64) {
        let _ = self.flush_epochs();
        self.repair();
        let mut totals = (0, 0, 0, 0, 0, 0);
        for shard in &self.shards {
            if shard.dead {
                continue;
            }
            let _ = shard.cmd.send(ShardCmd::Probe);
        }
        self.wake_shards();
        for s in 0..self.shards.len() {
            if self.shards[s].dead {
                continue;
            }
            match self.shards[s].reply.recv_timeout(self.control_wait()) {
                Ok(ShardReply::Health {
                    quad,
                    dead_lettered,
                    late_answers,
                    busy,
                }) => {
                    self.busy.shards[s] = self.shards[s].busy_base + busy;
                    totals.0 += quad.0;
                    totals.1 += quad.1;
                    totals.2 += quad.2;
                    totals.3 += quad.3;
                    totals.4 += dead_lettered;
                    totals.5 += late_answers;
                }
                Ok(_) => unreachable!("probe expects Health"),
                Err(err) => {
                    // A shard that died since its last close: its
                    // counters are lost with it (the respawn restarts
                    // them at zero).
                    let _ = self.shard_down(s, err);
                    let _ = self.respawn_shard(s);
                }
            }
        }
        totals
    }

    /// The deployment-wide health snapshot: data-plane quarantine and
    /// degradation counters plus the supervision record. Completes
    /// in-flight epochs and repairs dead threads first.
    pub fn deploy_health(&mut self) -> DeployHealth {
        let t = self.probe_shards();
        let mut health = DeployHealth {
            undecodable: t.0,
            unroutable: t.1,
            duplicates: t.2,
            expired_joins: t.3,
            dead_lettered: t.4,
            late_answers: t.5,
            partial_closes: self.partial_closes,
            lost_answers: self.lost_answers,
            respawns: self.respawns,
            backpressure_stalls: self.worker_backpressure
                + self
                    .proxies
                    .iter()
                    .map(|p| p.backpressure.load(Ordering::Relaxed))
                    .sum::<u64>(),
            reconnects: self
                .link_stats
                .iter()
                .map(|l| l.reconnects.load(Ordering::Relaxed))
                .sum(),
            rejections: self
                .link_stats
                .iter()
                .map(|l| l.rejections.load(Ordering::Relaxed))
                .sum(),
            retries: self
                .link_stats
                .iter()
                .map(|l| l.resends.load(Ordering::Relaxed))
                .sum(),
            dead_letter_dropped: self.broker.topic_dropped(DEAD_LETTER_TOPIC),
            recoveries: self.durable.as_ref().map_or(0, |d| d.recoveries),
            journal_bytes: self.durable.as_ref().map_or(0, |d| d.journal_bytes()),
            snapshot_count: self.durable.as_ref().map_or(0, |d| d.snapshot_count()),
            ..DeployHealth::default()
        };
        for fault in &self.faults {
            match fault {
                DeployError::WorkerPanic { .. } => health.worker_panics += 1,
                DeployError::ShardPanic { .. } => health.shard_panics += 1,
                DeployError::ProxyPanic { .. } => health.proxy_panics += 1,
                _ => {}
            }
        }
        health
    }

    /// Every deployment fault observed so far (panics, wedges,
    /// respawn failures), oldest first. Faults are also returned from
    /// the epoch API as they happen; this is the cumulative record.
    pub fn faults(&self) -> &[DeployError] {
        &self.faults
    }

    /// Liveness snapshot of every supervised thread from the
    /// heartbeat registry: `(thread name, status)`, stale when the
    /// thread has not beaten within `stale_after`. Workers beat at
    /// least every [`WORKER_IDLE_BEAT`](ShardedSystemBuilder) while
    /// idle; proxies and shards beat once per park interval — pass a
    /// `stale_after` comfortably above ~250 ms.
    pub fn thread_health(&self, stale_after: Duration) -> Vec<(String, HeartbeatStatus)> {
        self.watchdog.statuses(stale_after)
    }

    /// Records quarantined on the dead-letter topic and not yet
    /// consumed by an operator (poisoned input is preserved verbatim
    /// for offline inspection, never silently dropped).
    pub fn dead_letter_backlog(&self) -> u64 {
        self.broker.topic_len(DEAD_LETTER_TOPIC)
    }

    /// Chaos hook: makes worker `w` panic on its next command poll.
    /// Waits for the thread to finish unwinding before returning, so
    /// the fault lands at a deterministic point: a command sent after
    /// this call fails fast (dead channel → respawn + live replay)
    /// instead of racing the unwind and being accepted-then-lost —
    /// the equivalence suites inject between epochs and need both
    /// runs of a pair on the same side of that race.
    pub fn inject_worker_panic(&mut self, w: usize) {
        let _ = self.workers[w].cmd.send(WorkerCmd::Die);
        while self.workers[w]
            .thread
            .as_ref()
            .is_some_and(|t| !t.is_finished())
        {
            std::thread::yield_now();
        }
    }

    /// Chaos hook: makes shard `s` panic on its next control check.
    pub fn inject_shard_panic(&mut self, s: usize) {
        let _ = self.shards[s].cmd.send(ShardCmd::Die);
        self.wake_shards();
    }

    // -- durability --------------------------------------------------------

    /// Buffers one journal record when the deployment is durable
    /// (no-op otherwise, and while a recovery replay is muted).
    fn journal(&mut self, kind: u8, payload: Vec<u8>) -> Result<(), CoreError> {
        match self.durable.as_mut() {
            Some(d) => d.append(kind, &payload).map_err(persist_err),
            None => Ok(()),
        }
    }

    /// Fsyncs every buffered journal record — the durability barrier
    /// the submit paths cross before their first worker send.
    fn journal_sync(&mut self) -> Result<(), CoreError> {
        match self.durable.as_mut() {
            Some(d) => d.sync().map_err(persist_err),
            None => Ok(()),
        }
    }

    /// Counts a submitted epoch and fires the
    /// [`crash_after_journal`](ShardedSystemBuilder::crash_after_journal)
    /// hook: `abort()` exactly *after* the chosen epoch's journal
    /// fsync and *before* any of its worker sends — the widest gap
    /// the recovery contract must close.
    fn crash_hook(&mut self) {
        let n = self.epochs_submitted_total;
        self.epochs_submitted_total += 1;
        if self.crash_after_journal == Some(n) {
            std::process::abort();
        }
    }

    /// True when the store directory held a previous incarnation's
    /// state at build time; call [`ShardedSystem::resume`] (after
    /// re-issuing loads) to adopt it.
    pub fn needs_recovery(&self) -> bool {
        self.recovered.is_some()
    }

    /// The `"aggregator"` consumer group's committed offsets as
    /// checkpointed by the crashed incarnation's last close:
    /// `(topic, partition, next offset)`. A restart rebuilds the
    /// broker log from its origin, so these are reported as the
    /// pre-crash floors (everything below them was consumed by
    /// closed, journaled epochs) rather than force-restored — the
    /// rebuilt log's origin *is* the rebased floor, and re-run open
    /// epochs must be consumable above it.
    pub fn recovered_offsets(&self) -> &[(String, usize, u64)] {
        &self.recovered_offsets
    }

    /// Adopts the state recovered from the durable store: queries are
    /// re-registered on every shard, budget ledgers restored to their
    /// journaled spend, the schedule and retirement set rebuilt, the
    /// muted command history replayed into every worker (advancing
    /// client RNG streams to exactly where the crashed deployment's
    /// were — the same mechanism as a worker respawn), pending results
    /// and retained warehouses restored, and every submitted-but-
    /// unclosed epoch re-run live **without re-charging** (its debits
    /// are already in the restored ledgers). Returns the recovered
    /// queries, oldest first.
    ///
    /// Call order matters: loads hold closures the store cannot
    /// serialize, so the caller re-issues
    /// [`load_numeric_column`](ShardedSystem::load_numeric_column) /
    /// [`load_rows`](ShardedSystem::load_rows) *before* `resume` —
    /// the replayed answers need the tables in place. With nothing to
    /// recover this is a no-op returning an empty list.
    pub fn resume(&mut self) -> Result<Vec<Query>, CoreError> {
        let Some(rec) = self.recovered.take() else {
            return Ok(Vec::new());
        };
        let rec = *rec;
        // Everything restored below *came from* the journal:
        // re-journaling it would duplicate records, so appends are
        // muted until the live re-submissions at the end.
        if let Some(d) = self.durable.as_mut() {
            d.muted = true;
        }
        self.now_ms = self.now_ms.max(rec.now_ms);
        self.next_serial = self.next_serial.max(rec.next_serial as u32);
        self.partial_closes = rec.partial_closes;
        self.lost_answers = rec.lost_answers;
        self.epochs_closed_total = rec.epochs_closed;
        self.terminal = rec.terminal;
        self.recovered_offsets = rec.offsets;
        for (qid, shard, hw) in rec.marks {
            self.high_water.insert((qid, shard), hw);
        }
        for (qid, entries) in rec.warehouses {
            self.recovered_warehouses.insert(qid, entries);
        }
        self.pending.extend(rec.pending);
        // Retention flags first: `register` reads them to re-enable
        // shard-side retention for recovered queries.
        for rq in &rec.queries {
            if rq.retain && !self.retain_set.contains(&rq.query.id) {
                self.retain_set.push(rq.query.id);
            }
        }
        let mut result = Ok(());
        let mut queries = Vec::with_capacity(rec.queries.len());
        for rq in rec.queries {
            let r = self.register(rq.query.clone(), rq.params);
            if result.is_ok() {
                result = r;
            }
            if let Some(ledger) = rq.ledger {
                self.ledgers.insert(rq.query.id, ledger);
            }
            queries.push(rq.query);
        }
        for qid in rec.admitted {
            if self.queries.contains_key(&qid)
                && !self.terminal.contains(&qid)
                && !self.admitted.contains(&qid)
            {
                self.admitted.push(qid);
            }
        }
        // Muted replay of the closed-epoch history: every live worker
        // advances its clients' RNG streams without sending a share
        // (muted answers reply nothing, so there is nothing to wait
        // for — FIFO channels order any live command after these).
        for (qid, params, ts) in rec.history {
            let Some((query, _)) = self.queries.get(&qid).cloned() else {
                continue;
            };
            for w in &self.workers {
                if w.dead {
                    continue;
                }
                let _ = w.cmd.send(WorkerCmd::Answer {
                    query: query.clone(),
                    params,
                    ts,
                    live: false,
                });
            }
            self.history.push(ReplayCmd::Answer { query, params, ts });
        }
        if let Some(d) = self.durable.as_mut() {
            d.muted = false;
            d.recoveries += 1;
        }
        // Checkpoint the adopted state before re-running the open
        // epochs: their fresh `Submitted` records land *after* this
        // snapshot's floor, so a second crash — even mid-recovery —
        // reconstructs from here plus the journal suffix.
        let snap = self.write_snapshot_now();
        if result.is_ok() {
            result = snap;
        }
        for ep in rec.open_epochs {
            let r = self.resubmit_open_epoch(ep);
            if result.is_ok() {
                result = r;
            }
        }
        result.map(|()| queries)
    }

    /// Re-runs one submitted-but-unclosed epoch recovered from the
    /// journal: a fresh `Submitted` record is journaled and fsynced
    /// (NO charge records — the epoch's debits are already in the
    /// restored ledgers), then the batch is sent live under its
    /// original epoch timestamp. The replayed history left every
    /// client's RNG stream exactly where the crashed run's was when
    /// this epoch first went out, so the re-run produces the same
    /// shares the crash may or may not have let escape.
    fn resubmit_open_epoch(&mut self, ep: OpenEpoch) -> Result<(), CoreError> {
        let mut batch: Vec<(Query, ExecutionParams)> = Vec::with_capacity(ep.entries.len());
        for (qid, params) in &ep.entries {
            let Some((query, _)) = self.queries.get(qid) else {
                continue;
            };
            batch.push((query.clone(), *params));
        }
        if batch.is_empty() {
            return Ok(());
        }
        let ts = ep.ts;
        let watermark = ep.watermark;
        self.now_ms = self.now_ms.max(watermark.0);
        let journal_mark = self.durable.as_ref().map_or(0, |d| d.wal.next_index());
        if self.durable.is_some() {
            let rec = persist::rec_submitted(ts, watermark, &batch);
            self.journal(persist::K_SUBMITTED, rec)?;
            self.journal_sync()?;
        }
        self.crash_hook();
        let mut result = Ok(());
        for wi in 0..self.workers.len() {
            if self.workers[wi].dead {
                continue;
            }
            let mut sent = 0;
            while sent < batch.len() {
                let (query, params) = &batch[sent];
                let cmd = WorkerCmd::Answer {
                    query: query.clone(),
                    params: *params,
                    ts,
                    live: true,
                };
                if self.workers[wi].cmd.send(cmd).is_ok() {
                    sent += 1;
                    continue;
                }
                let fault = self.worker_down(wi, RecvTimeoutError::Disconnected);
                if result.is_ok() {
                    result = Err(fault.into());
                }
                if self.respawn_worker(wi).is_err() {
                    break;
                }
                sent = 0;
                result = Ok(());
            }
        }
        for (query, params) in &batch {
            self.history.push(ReplayCmd::Answer {
                query: query.clone(),
                params: *params,
                ts,
            });
        }
        self.in_flight.push_back(InFlightEpoch {
            epoch: ts,
            watermark,
            cmds: batch.len(),
            journal_mark,
        });
        result
    }

    /// Captures every retained query's warehouse for the snapshot:
    /// the shards' in-memory stores (in-process transport) merged
    /// with anything recovered from the previous snapshot, deduped by
    /// `(timestamp, MID)` in canonical order.
    fn capture_warehouses(&mut self) -> Vec<(QueryId, Vec<(u64, u128, BitVec)>)> {
        let retained = self.retain_set.clone();
        let mut out = Vec::with_capacity(retained.len());
        for qid in retained {
            let mut merged: BTreeMap<(u64, u128), BitVec> = BTreeMap::new();
            if let Some(prev) = self.recovered_warehouses.get(&qid) {
                for (ts, mid, answer) in prev {
                    merged.insert((*ts, *mid), answer.clone());
                }
            }
            if matches!(self.transport, TransportMode::InProcess) {
                for shard in &self.shards {
                    if shard.dead {
                        continue;
                    }
                    let _ = shard.cmd.send(ShardCmd::Fetch {
                        query: qid,
                        range: Window {
                            start: Timestamp(0),
                            end: Timestamp(u64::MAX),
                        },
                    });
                }
                self.wake_shards();
                let wait = self.control_wait();
                for s in 0..self.shards.len() {
                    if self.shards[s].dead {
                        continue;
                    }
                    match self.shards[s].reply.recv_timeout(wait) {
                        Ok(ShardReply::Stored { answers }) => {
                            for (ts, mid, answer) in answers {
                                merged.insert((ts, mid), answer);
                            }
                        }
                        Ok(_) => unreachable!("fetch expects Stored"),
                        Err(err) => {
                            let _ = self.shard_down(s, err);
                            let _ = self.respawn_shard(s);
                        }
                    }
                }
            }
            out.push((
                qid,
                merged
                    .into_iter()
                    .map(|((ts, mid), answer)| (ts, mid, answer))
                    .collect(),
            ));
        }
        out
    }

    /// Writes a full snapshot now and prunes the journal beneath it,
    /// bounding disk to O(snapshot interval). The prune floor is
    /// capped at the lowest open epoch's journal mark: open epochs
    /// are rebuilt from their journal records, never from snapshots.
    fn write_snapshot_now(&mut self) -> Result<(), CoreError> {
        if self.durable.is_none() {
            return Ok(());
        }
        let warehouses = self.capture_warehouses();
        let offsets = self.broker.committed_offsets("aggregator");
        let mut marks: Vec<(QueryId, usize, u64)> = self
            .high_water
            .iter()
            .map(|(&(q, s), &hw)| (q, s, hw))
            .collect();
        marks.sort_unstable_by_key(|&(q, s, _)| (q.to_u64(), s));
        let history: Vec<(QueryId, ExecutionParams, Timestamp)> = self
            .history
            .iter()
            .filter_map(|cmd| match cmd {
                ReplayCmd::Answer { query, params, ts } => Some((query.id, *params, *ts)),
                ReplayCmd::Load(_) => None,
            })
            .collect();
        let mut queries: Vec<(&Query, ExecutionParams, bool, Option<&BudgetLedger>)> = self
            .queries
            .values()
            .map(|(q, p)| {
                (
                    q,
                    *p,
                    self.retain_set.contains(&q.id),
                    self.ledgers.get(&q.id),
                )
            })
            .collect();
        queries.sort_unstable_by_key(|(q, _, _, _)| q.id.to_u64());
        let mut durable = self.durable.take().expect("durable checked above");
        let contents = SnapshotContents {
            now_ms: self.now_ms,
            next_serial: self.next_serial as u64,
            recoveries: durable.recoveries,
            partial_closes: self.partial_closes,
            lost_answers: self.lost_answers,
            epochs_closed: self.epochs_closed_total,
            queries,
            admitted: &self.admitted,
            terminal: &self.terminal,
            history: &history,
            pending: &self.pending,
            offsets: &offsets,
            marks: &marks,
            warehouses: &warehouses,
        };
        let floor_cap = self
            .in_flight
            .iter()
            .map(|e| e.journal_mark)
            .min()
            .unwrap_or(u64::MAX);
        let outcome = durable
            .snapshot(&contents, floor_cap)
            .map(|_| ())
            .map_err(persist_err);
        self.durable = Some(durable);
        outcome
    }

    /// Simulates a hard crash (the in-process analogue of `kill -9`):
    /// the journal's unsynced append buffer is discarded — nothing
    /// else touches disk — and the deployment is torn down without
    /// journaling its shutdown. A store directory left by `crash()`
    /// recovers exactly like one left by a real SIGKILL: from the
    /// last fsync barrier.
    pub fn crash(mut self) {
        if let Some(d) = self.durable.take() {
            d.wal.simulate_crash();
        }
        self.recovered = None;
        // Implicit Drop: lenient pipeline teardown, journaling off.
    }

    // -- supervision internals ---------------------------------------------

    /// How long a control wait (load ack, registration ack, worker
    /// epoch reply) may block before the peer is declared dead: the
    /// epoch deadline, floored at the default so short-deadline
    /// configurations (partial-close tests) don't misread a healthy
    /// but slow thread as dead.
    fn control_wait(&self) -> Duration {
        self.config.epoch_deadline.max(DEFAULT_EPOCH_DEADLINE)
    }

    /// Declares worker `wi` dead after a failed wait and returns the
    /// typed fault. Distinguishes a *wedge* (deadline elapsed, thread
    /// still running — retired but never respawned, because a live
    /// predecessor could double-send shares) from real death (thread
    /// gone; the crash log holds the panic message).
    fn worker_down(&mut self, wi: usize, err: RecvTimeoutError) -> DeployError {
        let wedged = err == RecvTimeoutError::Timeout
            && self.workers[wi]
                .thread
                .as_ref()
                .is_some_and(|t| !t.is_finished());
        let message = if wedged {
            // The handle keeps the JoinHandle: its presence is what
            // marks the slot non-respawnable.
            "wedged: no reply within the control deadline".to_string()
        } else {
            if let Some(t) = self.workers[wi].thread.take() {
                let _ = t.join();
            }
            take_crash(&self.crashes, "worker", wi)
                .unwrap_or_else(|| "thread exited without a panic record".to_string())
        };
        self.workers[wi].dead = true;
        let fault = DeployError::WorkerPanic {
            worker: wi,
            message,
        };
        self.faults.push(fault.clone());
        fault
    }

    /// Declares shard `s` dead after a failed wait; see
    /// [`ShardedSystem::worker_down`] for the wedge distinction.
    fn shard_down(&mut self, s: usize, err: RecvTimeoutError) -> DeployError {
        let wedged = err == RecvTimeoutError::Timeout
            && self.shards[s]
                .thread
                .as_ref()
                .is_some_and(|t| !t.is_finished());
        let message = if wedged {
            "wedged: no reply within the control deadline".to_string()
        } else {
            if let Some(t) = self.shards[s].thread.take() {
                let _ = t.join();
            }
            take_crash(&self.crashes, "shard", s)
                .unwrap_or_else(|| "thread exited without a panic record".to_string())
        };
        self.shards[s].dead = true;
        let fault = DeployError::ShardPanic { shard: s, message };
        self.faults.push(fault.clone());
        fault
    }

    /// Sweeps the relay threads for silent deaths (proxies have no
    /// reply channel, so death shows as a finished thread) and
    /// respawns them.
    fn check_proxies(&mut self) {
        for i in 0..self.proxies.len() {
            if self.proxies[i].dead {
                continue;
            }
            let finished = self.proxies[i]
                .thread
                .as_ref()
                .is_some_and(|t| t.is_finished());
            if !finished {
                continue;
            }
            if let Some(t) = self.proxies[i].thread.take() {
                let _ = t.join();
            }
            self.proxies[i].dead = true;
            let message = take_crash(&self.crashes, "proxy", i)
                .unwrap_or_else(|| "thread exited unexpectedly".to_string());
            self.faults.push(DeployError::ProxyPanic { proxy: i, message });
            let _ = self.respawn_proxy(i);
        }
    }

    /// Respawns every dead-but-respawnable thread — the control-path
    /// repair pass run before loads, registrations and probes.
    fn repair(&mut self) {
        self.check_proxies();
        for wi in 0..self.workers.len() {
            if self.workers[wi].dead && self.workers[wi].thread.is_none() && self.config.auto_respawn
            {
                let _ = self.respawn_worker(wi);
            }
        }
        for s in 0..self.shards.len() {
            if self.shards[s].dead && self.shards[s].thread.is_none() && self.config.auto_respawn {
                let _ = self.respawn_shard(s);
            }
        }
    }

    /// Respawns worker `wi` under the same index — same client ids
    /// and RNG seeds — and replays the command history: loads for
    /// real (rebuilding the clients' tables), past answers muted
    /// (advancing each client's RNG to exactly where the dead
    /// worker's was, so the replacement's future MIDs and coin flips
    /// are byte-identical to what the dead worker would have
    /// produced). Injected fault hooks do not survive the respawn.
    fn respawn_worker(&mut self, wi: usize) -> Result<(), DeployError> {
        if !self.config.auto_respawn || self.workers[wi].thread.is_some() {
            let fault = DeployError::RespawnFailed {
                role: "worker",
                index: wi,
            };
            self.faults.push(fault.clone());
            return Err(fault);
        }
        let mut cfg = self.config;
        cfg.worker_panic_after = None;
        let heartbeat = self.watchdog.register(&format!("worker-{wi}"));
        let handle = WorkerHandle::spawn(
            wi,
            &cfg,
            self.partitions,
            &self.broker,
            Arc::clone(&self.crashes),
            heartbeat,
        );
        let mut loads = 0usize;
        for cmd in &self.history {
            let msg = match cmd {
                ReplayCmd::Load(load) => {
                    loads += 1;
                    WorkerCmd::Load(load.clone())
                }
                ReplayCmd::Answer { query, params, ts } => WorkerCmd::Answer {
                    query: query.clone(),
                    params: *params,
                    ts: *ts,
                    live: false,
                },
            };
            let _ = handle.cmd.send(msg);
        }
        // Only the loads ack (muted answers reply nothing); commands
        // are FIFO per channel, so once the last load acks, any live
        // command sent next runs after the whole replay.
        let wait = self.control_wait();
        for _ in 0..loads {
            match handle.reply.recv_timeout(wait) {
                Ok(WorkerReply::Loaded) => {}
                _ => {
                    let fault = DeployError::RespawnFailed {
                        role: "worker",
                        index: wi,
                    };
                    self.faults.push(fault.clone());
                    return Err(fault);
                }
            }
        }
        self.workers[wi] = handle;
        // Answer commands sent to the dead predecessor will never be
        // replied to (and any replies it queued died with its
        // channel): the completion loop skips that many waits.
        self.workers[wi].reply_debt = self.in_flight.iter().map(|e| e.cmds).sum();
        self.respawns += 1;
        Ok(())
    }

    /// Respawns shard `s`: a fresh [`Aggregator`] rejoins the
    /// `"aggregator"` consumer group (committed offsets persist, so
    /// the replacement resumes exactly where the group left off) and
    /// is registered with every live query before the slot goes back
    /// into service. Decodes held in the dead shard's open windows
    /// are lost — the affected epochs close partially.
    fn respawn_shard(&mut self, s: usize) -> Result<(), DeployError> {
        let failed = |faults: &mut Vec<DeployError>| {
            let fault = DeployError::RespawnFailed {
                role: "shard",
                index: s,
            };
            faults.push(fault.clone());
            Err(fault)
        };
        if !self.config.auto_respawn || self.shards[s].thread.is_some() {
            return failed(&mut self.faults);
        }
        let straggle = match self.config.straggler {
            Some((idx, delay)) if idx == s => Some(delay),
            _ => None,
        };
        let busy_base = self.busy.shards[s];
        let remote_cfg = match &self.transport {
            TransportMode::Process { node, faults } => Some((node.clone(), *faults)),
            TransportMode::InProcess => None,
        };
        let handle = match remote_cfg {
            None => {
                let mut agg =
                    Aggregator::new(&self.broker, self.config.proxies as usize, self.config.confidence);
                agg.set_dead_letter(self.broker.writer(DEAD_LETTER_TOPIC));
                ShardHandle::spawn(ShardSpawn {
                    index: s,
                    agg,
                    straggle,
                    deadline: self.config.epoch_deadline,
                    // Injected fault hooks fire once; never re-armed.
                    fuse: None,
                    ledger: Arc::clone(&self.ledger),
                    crashes: Arc::clone(&self.crashes),
                    heartbeat: self.watchdog.register(&format!("shard-{s}")),
                    broker: self.broker.clone(),
                })
            }
            Some((node, faults)) => {
                // A fresh child plus a fresh bridge. The dead bridge's
                // consumer left the `"aggregator"` group when its
                // thread unwound; the replacement rejoins here and
                // resumes from the group's committed offsets.
                let out_names: Vec<String> = (0..self.config.proxies)
                    .map(|i| outbound_topic(ProxyId(i)))
                    .collect();
                let out_refs: Vec<&str> = out_names.iter().map(String::as_str).collect();
                let consumer = self.broker.consumer("aggregator", &out_refs);
                let args = shard_node_args(
                    s,
                    self.partitions,
                    self.config.proxies as usize,
                    self.config.confidence,
                    // Injected fault hooks fire once; never re-armed.
                    None,
                );
                let child = match spawn_node_or_invalid(&node, "shard", s, &args) {
                    Ok(c) => c,
                    Err(_) => return failed(&mut self.faults),
                };
                self.children.push((format!("shard-{s}"), child.pid()));
                let stats = LinkStats::shared();
                self.link_stats.push(Arc::clone(&stats));
                let mut link = remote::node_link(
                    child.addr(),
                    s as u32,
                    faults,
                    stats,
                    link_seed(self.config.seed, "shard-respawn", s),
                );
                if let Some(after) = self.config.link_resend_after {
                    link.set_resend_after(after);
                }
                ShardHandle::spawn_remote(RemoteShardSpawn {
                    index: s,
                    consumer,
                    link,
                    child,
                    straggle,
                    deadline: self.config.epoch_deadline,
                    ledger: Arc::clone(&self.ledger),
                    crashes: Arc::clone(&self.crashes),
                    heartbeat: self.watchdog.register(&format!("shard-{s}")),
                })
            }
        };
        for (query, params) in self.queries.values() {
            let _ = handle.cmd.send(ShardCmd::Register {
                query: Box::new(query.clone()),
                params: *params,
                population: self.config.clients,
                // The dead shard's retained store died with it;
                // re-enabling retention lets later epochs accumulate
                // again (the batch answer degrades, reported as the
                // respawn fault).
                retain: self.retain_set.contains(&query.id),
            });
        }
        self.wake_shards();
        let wait = self.control_wait();
        for _ in 0..self.queries.len() {
            match handle.reply.recv_timeout(wait) {
                Ok(ShardReply::Registered) => {}
                _ => return failed(&mut self.faults),
            }
        }
        self.shards[s] = handle;
        self.shards[s].busy_base = busy_base;
        self.respawns += 1;
        Ok(())
    }

    /// Respawns relay `i` onto its (single-member) consumer group; it
    /// resumes from the committed offset, and shares produced while
    /// it was dead are still on the topic — a dead relay delays
    /// forwarding, it never loses records.
    fn respawn_proxy(&mut self, i: usize) -> Result<(), DeployError> {
        if !self.config.auto_respawn {
            let fault = DeployError::RespawnFailed {
                role: "proxy",
                index: i,
            };
            self.faults.push(fault.clone());
            return Err(fault);
        }
        let base = (
            self.proxies[i].forwarded.load(Ordering::Relaxed),
            self.proxies[i].busy_ns.load(Ordering::Relaxed),
            self.proxies[i].backpressure.load(Ordering::Relaxed),
        );
        let remote_cfg = match &self.transport {
            TransportMode::Process { node, faults } => Some((node.clone(), *faults)),
            TransportMode::InProcess => None,
        };
        self.proxies[i] = match remote_cfg {
            None => {
                let proxy = Proxy::new(ProxyId(i as u16), &self.broker);
                let heartbeat = self.watchdog.register(&format!("proxy-{i}"));
                ProxyHandle::spawn(proxy, Arc::clone(&self.crashes), heartbeat, base)
            }
            Some((node, faults)) => {
                // Fresh child + bridge; the single-member group rejoin
                // resumes the inbound topic at its committed offset.
                // Shares that reached the dead child but were not yet
                // relayed back died with its private broker — the
                // epoch ledger accounts them as a partial close.
                let consumer = self
                    .broker
                    .consumer(&format!("proxy-{i}"), &[&inbound_topic(ProxyId(i as u16))]);
                let child =
                    match spawn_node_or_invalid(&node, "proxy", i, &proxy_node_args(i, self.partitions))
                    {
                        Ok(c) => c,
                        Err(_) => {
                            let fault = DeployError::RespawnFailed {
                                role: "proxy",
                                index: i,
                            };
                            self.faults.push(fault.clone());
                            return Err(fault);
                        }
                    };
                self.children.push((format!("proxy-{i}"), child.pid()));
                let stats = LinkStats::shared();
                self.link_stats.push(Arc::clone(&stats));
                let mut link = remote::node_link(
                    child.addr(),
                    i as u32,
                    faults,
                    stats,
                    link_seed(self.config.seed, "proxy-respawn", i),
                );
                if let Some(after) = self.config.link_resend_after {
                    link.set_resend_after(after);
                }
                ProxyHandle::spawn_remote(RemoteProxySpawn {
                    index: i,
                    consumer,
                    link,
                    child,
                    crashes: Arc::clone(&self.crashes),
                    heartbeat: self.watchdog.register(&format!("proxy-{i}")),
                    broker: self.broker.clone(),
                    base,
                })
            }
        };
        self.respawns += 1;
        Ok(())
    }

    /// Cumulative on-CPU time of every live `privapprox-node` child
    /// process, labelled `proxy-<i>` / `shard-<s>`. Empty in
    /// in-process mode and on platforms without `/proc`; children
    /// that already exited (e.g. a pre-respawn casualty) are skipped.
    /// The bench harness folds these into the machine-rate bottleneck
    /// so a child process counts as a pipeline stage exactly like a
    /// parent thread does under the dedicated-core convention.
    /// `(label, OS pid)` of every `privapprox-node` child ever
    /// spawned (`proxy-<i>` / `shard-<s>`, including respawn
    /// replacements, oldest first). Empty in in-process mode. The
    /// kill-9 recovery harness uses this to SIGKILL specific children
    /// mid-epoch.
    pub fn children(&self) -> &[(String, u32)] {
        &self.children
    }

    pub fn child_cpu(&self) -> Vec<(String, Duration)> {
        self.children
            .iter()
            .filter_map(|(label, pid)| {
                remote::process_cpu(*pid).map(|cpu| (label.clone(), cpu))
            })
            .collect()
    }

    /// Snapshot of cumulative per-thread CPU time per stage (the
    /// machine-level throughput instrumentation; see
    /// [`thread_busy_time`] and [`BusyProfile::bottleneck`]).
    pub fn busy_profile(&self) -> BusyProfile {
        let mut profile = self.busy.clone();
        for (i, p) in self.proxies.iter().enumerate() {
            profile.proxies[i] = Duration::from_nanos(p.busy_ns.load(Ordering::Relaxed));
        }
        profile
    }

    /// Total shares forwarded by the relay threads so far.
    pub fn forwarded_shares(&self) -> u64 {
        self.proxies
            .iter()
            .map(|p| p.forwarded.load(Ordering::Relaxed))
            .sum()
    }
}

impl Drop for ShardedSystem {
    fn drop(&mut self) {
        // Leniently complete whatever the caller left in flight: an
        // abandoned overlapped epoch leaves answer commands, broker
        // records and epoch-tagged closes in the pipeline, and the
        // worker/shard threads must observe their shutdowns *after*
        // those — not interleaved with them.
        while !self.in_flight.is_empty() {
            let _ = self.complete_oldest(true);
        }
        for w in &self.workers {
            let _ = w.cmd.send(WorkerCmd::Shutdown);
        }
        for s in &self.shards {
            let _ = s.cmd.send(ShardCmd::Shutdown);
        }
        for p in &self.proxies {
            p.stop.store(true, Ordering::Relaxed);
        }
        // Pop parked threads out of their condvar waits.
        for p in &self.proxies {
            self.broker.notify_topic(&p.in_topic);
        }
        self.wake_shards();
        // A wedged thread (dead flag up, thread never finished) is
        // skipped: its command channel just disconnected, so it exits
        // on its own, and joining it could hang the drop.
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                if !w.dead || t.is_finished() {
                    let _ = t.join();
                }
            }
        }
        for p in &mut self.proxies {
            if let Some(t) = p.thread.take() {
                let _ = t.join();
            }
        }
        for s in &mut self.shards {
            if let Some(t) = s.thread.take() {
                if !s.dead || t.is_finished() {
                    let _ = t.join();
                }
            }
        }
    }
}

/// A fluent analyst session against a [`ShardedSystem`] — the same
/// SQL → buckets → budget → submit surface as
/// [`AnalystSession`](crate::system::AnalystSession), registering the
/// query on every shard.
pub struct ShardedAnalystSession<'a> {
    system: &'a mut ShardedSystem,
    sql: String,
    buckets: Option<AnswerSpec>,
    budget: Budget,
    window: Option<(u64, u64)>,
    explicit_params: Option<ExecutionParams>,
}

impl<'a> ShardedAnalystSession<'a> {
    /// Sets the SQL text.
    pub fn query(mut self, sql: impl Into<String>) -> Self {
        self.sql = sql.into();
        self
    }

    /// Sets the answer format `A[n]`.
    pub fn buckets(mut self, spec: AnswerSpec) -> Self {
        self.buckets = Some(spec);
        self
    }

    /// Sets the execution budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets sliding-window parameters `(w, δ)` in milliseconds.
    pub fn window(mut self, size: u64, slide: u64) -> Self {
        self.window = Some((size, slide));
        self
    }

    /// Bypasses the initializer with explicit `(s, p, q)`.
    pub fn params(mut self, params: ExecutionParams) -> Self {
        self.explicit_params = Some(params);
        self
    }

    /// Signs, registers (on every shard) and distributes the query;
    /// returns it. Serial assignment matches
    /// [`System`](crate::System) so the same submission order yields
    /// the same `QueryId`s.
    pub fn submit(self) -> Result<Query, CoreError> {
        let spec = self.buckets.ok_or_else(|| {
            CoreError::InfeasibleBudget("query needs an answer bucket spec".into())
        })?;
        let (w, d) = self.window.unwrap_or((60_000, 60_000));
        let sys = self.system;
        let id = QueryId::new(AnalystId(1), sys.next_serial);
        sys.next_serial += 1;
        let query = QueryBuilder::new(id, self.sql)
            .answer(spec)
            .window(w, d)
            .sign_and_build(sys.config.analyst_key);
        let params = match self.explicit_params {
            Some(p) => p,
            None => sys.initializer.derive(&self.budget, sys.config.clients)?,
        };
        sys.register(query.clone(), params)?;
        Ok(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed_spec() -> AnswerSpec {
        AnswerSpec::ranges_with_overflow(0.0, 110.0, 11)
    }

    #[test]
    fn sharded_end_to_end_exact_mode() {
        let mut system = ShardedSystem::builder()
            .clients(200)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(1)
            .build();
        system.load_numeric_column("vehicle", "speed", |i| (i % 110) as f64).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 200);
        assert_eq!(result.population, 200);
        let total: f64 = result.buckets.iter().map(|b| b.estimate).sum();
        assert_eq!(total, 200.0);
        for b in 0..9 {
            assert_eq!(result.buckets[b].estimate, 20.0, "bucket {b}");
        }
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_epochs_advance_windows() {
        let mut system = ShardedSystem::builder()
            .clients(60)
            .proxies(2)
            .shards(4)
            .workers(3)
            .seed(4)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let r1 = system.run_epoch(&query).unwrap();
        let r2 = system.run_epoch(&query).unwrap();
        assert!(r2.window.start > r1.window.start);
        assert_eq!(r1.sample_size, 60);
        assert_eq!(r2.sample_size, 60);
        // Threads did real work on every stage.
        let busy = system.busy_profile();
        assert!(busy.workers.iter().any(|d| !d.is_zero()));
        assert!(busy.critical_path() > Duration::ZERO);
        assert!(busy.bottleneck() <= busy.critical_path());
    }

    /// Pipelined submission: epochs overlap up to the configured
    /// depth, results arrive in epoch order via `drain_results`, and
    /// every epoch is exact.
    #[test]
    fn sharded_pipelined_epochs_overlap_and_drain_in_order() {
        let mut system = ShardedSystem::builder()
            .clients(90)
            .proxies(2)
            .shards(3)
            .workers(3)
            .pipeline_depth(3)
            .seed(6)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        for _ in 0..5 {
            system.submit_epoch(&query).unwrap();
            assert!(system.in_flight_epochs() <= 3, "depth respected");
        }
        system.flush_epochs().unwrap();
        assert_eq!(system.in_flight_epochs(), 0);
        let results = system.drain_results();
        assert_eq!(results.len(), 5);
        for (e, r) in results.iter().enumerate() {
            assert_eq!(r.sample_size, 90, "epoch {e}");
            assert_eq!(r.buckets[1].estimate, 90.0, "epoch {e}");
            if e > 0 {
                assert!(r.window.start > results[e - 1].window.start, "epoch order");
            }
        }
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    #[test]
    fn sharded_single_shard_degenerates_to_plain_pipeline() {
        let mut system = ShardedSystem::builder()
            .clients(50)
            .proxies(3)
            .shards(1)
            .workers(1)
            .seed(9)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 50);
        assert_eq!(result.buckets[1].estimate, 50.0);
    }

    #[test]
    fn sharded_partition_affinity_is_total() {
        let system = ShardedSystem::builder()
            .clients(10)
            .proxies(2)
            .shards(3)
            .partitions(6)
            .build();
        // Every client maps to a partition, every partition to a
        // shard, and the shard set is exhaustive.
        let mut shards_seen = std::collections::HashSet::new();
        for c in 0..10 {
            let p = system.partition_of(c);
            assert!(p < 6);
            shards_seen.insert(system.shard_of_partition(p));
        }
        assert_eq!(shards_seen.len(), 3);
    }

    #[test]
    fn sharded_shape_adopts_cluster_tiers() {
        let shape = DeploymentShape::single_node(2, 4);
        let system = ShardedSystem::builder().clients(10).shape(shape).build();
        assert_eq!(system.config().proxies, 2);
        assert_eq!(system.config().shards, 4);
        assert_eq!(system.config().workers, 4);
    }

    /// A failed epoch (one client errors mid-population) must not
    /// poison the pipeline: the epoch still closes with its exact
    /// partial count, so the next epoch runs from consistent
    /// accounting instead of tripping the close asserts on stale
    /// records.
    #[test]
    fn sharded_failed_epoch_cleans_up_for_the_next() {
        let mut system = ShardedSystem::builder()
            .clients(40)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(3)
            .build();
        // Client 25 holds an unbucketizable (negative) speed.
        system.load_numeric_column("vehicle", "speed", |i| if i == 25 { -5.0 } else { 15.0 }).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        assert!(matches!(
            system.run_epoch(&query),
            Err(CoreError::Unbucketizable(_))
        ));
        // The failure epoch's partial window surfaces via drain, not
        // silently: some clients answered before the bad one.
        let partial = system.drain_results();
        assert_eq!(partial.len(), 1);
        assert!(partial[0].sample_size < 40);
        // Repair the data; the next epoch is exact and complete.
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 40);
        assert_eq!(result.buckets[1].estimate, 40.0);
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    /// A client error in epoch k+1 while epoch k is still in flight
    /// must not corrupt epoch k's windows: each overlapped epoch
    /// closes under its own tag with its own exact (possibly partial)
    /// count.
    #[test]
    fn sharded_error_in_overlapped_epoch_isolates_to_its_windows() {
        let mut system = ShardedSystem::builder()
            .clients(40)
            .proxies(2)
            .shards(2)
            .workers(2)
            .pipeline_depth(3)
            .seed(8)
            .build();
        // Client 25 fails every epoch — so both in-flight epochs
        // error, each mid-population.
        system.load_numeric_column("vehicle", "speed", |i| if i == 25 { -5.0 } else { 15.0 }).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        // Two epochs enter the pipeline back to back; neither has
        // completed when the second is submitted.
        system.submit_epoch(&query).unwrap();
        assert!(system.submit_epoch(&query).is_ok(), "depth not yet hit");
        assert_eq!(system.in_flight_epochs(), 2);
        assert!(matches!(
            system.flush_epochs(),
            Err(CoreError::Unbucketizable(_))
        ));
        let partials = system.drain_results();
        assert_eq!(partials.len(), 2, "both epochs closed their windows");
        assert_eq!(
            partials[0].sample_size, partials[1].sample_size,
            "identical partial populations → identical counts per epoch"
        );
        assert!(partials[0].sample_size < 40);
        assert!(partials[1].window.start > partials[0].window.start);
        // Repair and verify the pipeline is clean.
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 40);
        assert_eq!(system.aggregator_health(), (0, 0, 0, 0));
    }

    /// Dropping a system with epochs still in flight (an aborted
    /// overlapped run) must drain the epoch-tagged control messages
    /// and shut down cleanly instead of interleaving shutdowns with
    /// pending answers/closes.
    #[test]
    fn sharded_drop_with_in_flight_epochs_shuts_down_cleanly() {
        let mut system = ShardedSystem::builder()
            .clients(30)
            .proxies(2)
            .shards(2)
            .workers(2)
            .pipeline_depth(3)
            .seed(12)
            .build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        system.submit_epoch(&query).unwrap();
        system.submit_epoch(&query).unwrap();
        assert_eq!(system.in_flight_epochs(), 2);
        drop(system); // must not hang or panic
    }

    #[test]
    fn try_build_rejects_impossible_configs() {
        let invalid = |b: ShardedSystemBuilder| {
            matches!(b.try_build(), Err(DeployError::InvalidConfig(_)))
        };
        assert!(invalid(ShardedSystem::builder().clients(0)));
        assert!(invalid(ShardedSystem::builder().clients(10).proxies(1)));
        assert!(invalid(ShardedSystem::builder().clients(10).shards(0)));
        assert!(invalid(ShardedSystem::builder().clients(10).workers(0)));
        assert!(invalid(
            ShardedSystem::builder()
                .clients(10)
                .epoch_deadline(Duration::ZERO)
        ));
        assert!(invalid(
            ShardedSystem::builder().clients(10).worker_panic_after(9, 1)
        ));
        assert!(invalid(
            ShardedSystem::builder().clients(10).shard_panic_after(9, 1)
        ));
        assert!(invalid(
            ShardedSystem::builder().clients(10).drop_shard_traffic(9)
        ));
        assert!(invalid(
            ShardedSystem::builder()
                .clients(10)
                .straggler(9, Duration::from_millis(1))
        ));
    }

    #[test]
    fn thread_health_reports_every_supervised_thread() {
        let system = ShardedSystem::builder()
            .clients(10)
            .proxies(2)
            .shards(2)
            .workers(2)
            .build();
        let statuses = system.thread_health(Duration::from_secs(5));
        assert_eq!(statuses.len(), 6, "2 workers + 2 proxies + 2 shards");
        assert!(statuses.iter().all(|(_, s)| s.is_alive()));
    }

    /// Poisoned input (malformed key) is quarantined to the
    /// dead-letter topic and counted — never silently dropped, never
    /// blocking the healthy stream.
    #[test]
    fn poisoned_records_are_dead_lettered() {
        let mut system = ShardedSystem::builder()
            .clients(20)
            .proxies(2)
            .shards(2)
            .workers(2)
            .seed(5)
            .build();
        system
            .load_numeric_column("vehicle", "speed", |_| 15.0)
            .unwrap();
        let query = system
            .analyst()
            .query("SELECT speed FROM vehicle")
            .buckets(speed_spec())
            .params(ExecutionParams::checked(1.0, 1.0, 0.5))
            .submit()
            .unwrap();
        // A key of the wrong width, injected straight onto a shard
        // inbound topic.
        system.broker.producer().send(
            "proxy-0-out",
            Some(vec![9; 5]),
            vec![1, 2, 3],
            Timestamp(0),
        );
        let result = system.run_epoch(&query).unwrap();
        assert_eq!(result.sample_size, 20, "healthy stream unaffected");
        let health = system.deploy_health();
        assert_eq!(health.dead_lettered, 1);
        assert_eq!(system.dead_letter_backlog(), 1);
        assert_eq!(health.partial_closes, 0);
        assert_eq!(health.respawns, 0);
    }

    #[test]
    fn sharded_unknown_query_is_rejected() {
        let mut system = ShardedSystem::builder().clients(10).build();
        system.load_numeric_column("vehicle", "speed", |_| 15.0).unwrap();
        let foreign =
            QueryBuilder::new(QueryId::new(AnalystId(1), 999), "SELECT speed FROM vehicle")
                .answer(speed_spec())
                .sign_and_build(system.config().analyst_key);
        assert_eq!(
            system.run_epoch(&foreign).unwrap_err(),
            CoreError::UnknownQuery
        );
        assert_eq!(
            system.submit_epoch(&foreign).unwrap_err(),
            CoreError::UnknownQuery
        );
    }
}

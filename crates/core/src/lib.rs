//! The PrivApprox system: clients, proxies, aggregator, analyst
//! sessions, and the SplitX baseline.
//!
//! This crate wires the substrates (SQL engine, sampling, randomized
//! response, XOR crypto, stream broker, windowed dataflow) into the
//! end-to-end architecture of the paper's Figures 1 and 3:
//!
//! ```text
//! analyst ──query+budget──► initializer ──(s,p,q)+query──► clients
//! clients ──sample→answer→randomize→split──► proxies (n ≥ 2)
//! proxies ──forward only──► aggregator ──join→decode→window→estimate──► analyst
//! ```
//!
//! * [`client`] — local store, participation coin, query answering,
//!   randomization, share splitting (§3.2.1–§3.2.3);
//! * [`proxy`] — forwarding relays over broker topics (§3.2.3);
//! * [`aggregator`] — share join, decode, sliding-window aggregation,
//!   Equation 5 inversion, Equation 2 scaling, error bounds (§3.2.4);
//! * [`initializer`] — budget → `(s, p, q)` conversion (§3.1);
//! * [`feedback`] — the adaptive re-tuning loop (§5);
//! * [`historical`] — the batch-analytics warehouse with second-round
//!   sampling (§3.3.1);
//! * [`splitx`] — the synchronized-proxy baseline of Figure 6;
//! * [`system`] — an in-process deployment harness used by examples,
//!   integration tests and benchmarks.

pub mod aggregator;
pub mod client;
pub mod error;
pub mod feedback;
pub mod historical;
pub mod initializer;
pub mod proxy;
pub mod splitx;
pub mod system;

pub use aggregator::{Aggregator, BucketResult, QueryResult};
pub use client::{Client, ClientAnswer, ClientScratch};
pub use error::CoreError;
pub use feedback::FeedbackController;
pub use historical::Warehouse;
pub use initializer::Initializer;
pub use proxy::Proxy;
pub use system::{System, SystemBuilder, SystemConfig};

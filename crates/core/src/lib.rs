//! The PrivApprox system: clients, proxies, aggregator, analyst
//! sessions, and the SplitX baseline.
//!
//! This crate wires the substrates (SQL engine, sampling, randomized
//! response, XOR crypto, stream broker, windowed dataflow) into the
//! end-to-end architecture of the paper's Figures 1 and 3:
//!
//! ```text
//! analyst ──query+budget──► initializer ──(s,p,q)+query──► clients
//! clients ──sample→answer→randomize→split──► proxies (n ≥ 2)
//! proxies ──forward only──► aggregator ──join→decode→window→estimate──► analyst
//! ```
//!
//! * [`client`] — local store, participation coin, query answering,
//!   randomization, share splitting (§3.2.1–§3.2.3);
//! * [`proxy`] — forwarding relays over broker topics (§3.2.3);
//! * [`aggregator`] — share join, decode, sliding-window aggregation,
//!   Equation 5 inversion, Equation 2 scaling, error bounds (§3.2.4);
//! * [`initializer`] — budget → `(s, p, q)` conversion (§3.1);
//! * [`feedback`] — the adaptive re-tuning loop (§5);
//! * [`historical`] — the batch-analytics warehouse with second-round
//!   sampling (§3.3.1);
//! * [`splitx`] — the synchronized-proxy baseline of Figure 6;
//! * [`system`] — an in-process deployment harness used by examples,
//!   integration tests and benchmarks;
//! * [`deploy`] — the *threaded, sharded* deployment runtime
//!   ([`ShardedSystem`]): N proxy threads + M aggregator shards over
//!   partitioned broker topics, byte-identical to [`System`] seed for
//!   seed.
//!
//! # Hot-path buffer conventions (`*_into`)
//!
//! The steady-state pipeline is allocation-free end to end, proven by
//! the counting-allocator test in `tests/alloc_steady_state.rs`. The
//! convention that makes this auditable: any function named `*_into`
//! writes through a caller-owned buffer, and the *caller* keeps that
//! buffer alive across calls so its capacity is reused.
//!
//! * Client side: [`Client::answer_query_into`] drives the whole
//!   epoch (prepared SQL → bucketize → randomize → encode → split)
//!   through one [`ClientScratch`]; the returned shares borrow from
//!   it. The SQL stage hits the client's internal plan cache
//!   (`privapprox_sql::PlanCache`) — the plan compiles on the first
//!   epoch and is reused until the SQL or the local catalog changes.
//! * Aggregator side: `pump` decodes into an internal scratch
//!   `BitVec` and folds it by reference;
//!   [`Aggregator::advance_watermark_into`] appends closed windows
//!   into the caller's `Vec<QueryResult>` using recycled result
//!   shells and pooled estimators, and
//!   [`Aggregator::recycle_results`] returns consumed shells for the
//!   next close.
//!
//! Buffer ownership, in one sentence: scratch lives with whoever
//! loops — the client owns its `ClientScratch` epoch loop, the
//! aggregator owns its decode scratch and pools, and the analyst-side
//! caller owns the results vector it drains and recycles.

pub mod aggregator;
pub mod client;
pub mod deploy;
pub mod error;
pub mod feedback;
pub mod historical;
pub mod initializer;
pub mod persist;
pub mod proxy;
pub mod remote;
pub mod splitx;
pub mod system;

pub use aggregator::{Aggregator, BucketResult, QueryResult};
pub use client::{Client, ClientAnswer, ClientScratch};
pub use deploy::{DeployHealth, Retirement, ShardedConfig, ShardedSystem, ShardedSystemBuilder};
pub use error::{CoreError, DeployError};
pub use feedback::FeedbackController;
pub use historical::Warehouse;
pub use initializer::Initializer;
pub use proxy::Proxy;
pub use system::{System, SystemBuilder, SystemConfig};

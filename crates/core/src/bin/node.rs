//! The `privapprox-node` child-process entry point: one proxy or one
//! aggregator shard behind a loopback front door, driven by a parent
//! `ShardedSystem` in process-transport mode (see
//! `privapprox_core::remote`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(privapprox_core::remote::node_main(&args));
}

//! The initializer: budget → system parameters (paper §3.1, §5).
//!
//! "Once receiving the pair of the query and query budget from the
//! analyst, the aggregator first converts the query budget into system
//! parameters for sampling (s) and randomization (p, q)." Three budget
//! flavors are supported (§2.1): latency SLAs, accuracy targets, and
//! resource caps. Randomization parameters may additionally be pinned
//! by a privacy target (a maximum ε_zk).

use crate::error::CoreError;
use privapprox_rr::privacy::{epsilon_zk, p_for_epsilon, s_for_epsilon_zk};
use privapprox_sampling::planner::sampling_fraction_for;
use privapprox_types::{Budget, ExecutionParams};

/// Default first-coin bias when no privacy target pins it.
pub const DEFAULT_P: f64 = 0.9;
/// Default second-coin bias (the paper's most common choice).
pub const DEFAULT_Q: f64 = 0.6;
/// Sampling fraction floor: below this the CLT-based error machinery
/// stops being meaningful for realistic populations.
pub const MIN_S: f64 = 0.01;

/// Capacity model for latency budgets: how fast the deployment chews
/// through answers, measured by the bench harness.
#[derive(Debug, Clone, Copy)]
pub struct CapacityModel {
    /// Aggregate end-to-end throughput in answers per second.
    pub answers_per_sec: f64,
}

impl Default for CapacityModel {
    fn default() -> Self {
        // A conservative single-node figure; benches recalibrate it.
        CapacityModel {
            answers_per_sec: 200_000.0,
        }
    }
}

/// Converts analyst budgets into execution parameters.
#[derive(Debug, Clone)]
pub struct Initializer {
    capacity: CapacityModel,
    /// Optional privacy ceiling: the derived parameters must satisfy
    /// `ε_zk(s, p, q) ≤ max_epsilon_zk`.
    max_epsilon_zk: Option<f64>,
    /// Anticipated truthful-yes rate used by accuracy planning.
    yes_rate_hint: f64,
}

impl Default for Initializer {
    fn default() -> Self {
        Initializer {
            capacity: CapacityModel::default(),
            max_epsilon_zk: None,
            yes_rate_hint: 0.5,
        }
    }
}

impl Initializer {
    /// Creates an initializer with the default capacity model.
    pub fn new() -> Initializer {
        Initializer::default()
    }

    /// Overrides the capacity model (benches feed measured values).
    pub fn with_capacity(mut self, capacity: CapacityModel) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets a privacy ceiling on the derived parameters.
    pub fn with_max_epsilon_zk(mut self, eps: f64) -> Self {
        assert!(eps > 0.0, "privacy ceiling must be positive");
        self.max_epsilon_zk = Some(eps);
        self
    }

    /// Sets the anticipated truthful-yes rate for accuracy planning.
    pub fn with_yes_rate_hint(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.yes_rate_hint = rate;
        self
    }

    /// Converts a budget for a query over `population` clients into
    /// `(s, p, q)`.
    pub fn derive(&self, budget: &Budget, population: u64) -> Result<ExecutionParams, CoreError> {
        let s = match budget {
            Budget::Accuracy {
                target_error,
                confidence,
            } => {
                if !(*target_error > 0.0) || !(*confidence > 0.0 && *confidence < 1.0) {
                    return Err(CoreError::InfeasibleBudget(format!(
                        "bad accuracy budget: error {target_error}, confidence {confidence}"
                    )));
                }
                sampling_fraction_for(population, self.yes_rate_hint, *target_error, *confidence)
            }
            Budget::LatencySla(ms) => {
                // Process s·U answers within the SLA at the modeled
                // capacity: s = capacity·t / U.
                let budget_answers = self.capacity.answers_per_sec * (*ms as f64) / 1_000.0;
                if budget_answers < 1.0 {
                    return Err(CoreError::InfeasibleBudget(format!(
                        "latency SLA of {ms} ms admits no answers at \
                         {} answers/sec",
                        self.capacity.answers_per_sec
                    )));
                }
                (budget_answers / population as f64).min(1.0)
            }
            Budget::Resources {
                max_answers_per_window,
            } => {
                if *max_answers_per_window == 0 {
                    return Err(CoreError::InfeasibleBudget(
                        "resource budget of zero answers".into(),
                    ));
                }
                (*max_answers_per_window as f64 / population as f64).min(1.0)
            }
        };
        let s = s.clamp(MIN_S, 1.0);

        // Randomization parameters: defaults, tightened by the privacy
        // ceiling when present.
        let (mut p, q) = (DEFAULT_P, DEFAULT_Q);
        if let Some(ceiling) = self.max_epsilon_zk {
            if epsilon_zk(s, p, q) > ceiling {
                // First try lowering p at the given s.
                // ε_zk(s, p, q) ≤ ceiling ⇔ ε_rr(p, q) ≤ the value
                // whose amplification equals the ceiling.
                let target_rr = ((ceiling.exp() - 1.0) / s + 1.0).ln();
                p = p_for_epsilon(target_rr, q).min(DEFAULT_P);
                if epsilon_zk(s, p, q) > ceiling + 1e-9 {
                    return Err(CoreError::InfeasibleBudget(format!(
                        "privacy ceiling ε_zk ≤ {ceiling} unreachable at s = {s}"
                    )));
                }
            }
        }
        Ok(ExecutionParams::new(s, p, q)?)
    }

    /// The sampling fraction meeting a privacy target with the default
    /// `(p, q)` — used when the analyst trades latency for privacy.
    pub fn sampling_for_privacy(&self, eps_zk: f64) -> Option<f64> {
        s_for_epsilon_zk(eps_zk, DEFAULT_P, DEFAULT_Q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_budget_tightens_with_error_target() {
        let init = Initializer::new();
        let loose = init
            .derive(
                &Budget::Accuracy {
                    target_error: 0.1,
                    confidence: 0.95,
                },
                100_000,
            )
            .unwrap();
        let tight = init
            .derive(
                &Budget::Accuracy {
                    target_error: 0.01,
                    confidence: 0.95,
                },
                100_000,
            )
            .unwrap();
        assert!(tight.s > loose.s, "tight {} loose {}", tight.s, loose.s);
    }

    #[test]
    fn latency_budget_scales_with_sla() {
        let init = Initializer::new().with_capacity(CapacityModel {
            answers_per_sec: 10_000.0,
        });
        let fast = init.derive(&Budget::LatencySla(100), 100_000).unwrap();
        let slow = init.derive(&Budget::LatencySla(5_000), 100_000).unwrap();
        // 100 ms at 10k answers/s → 1000 answers → s = 0.01.
        assert!((fast.s - 0.01).abs() < 1e-9, "fast s = {}", fast.s);
        // 5 s → 50k answers → s = 0.5.
        assert!((slow.s - 0.5).abs() < 1e-9, "slow s = {}", slow.s);
    }

    #[test]
    fn resource_budget_is_a_direct_ratio() {
        let init = Initializer::new();
        let p = init
            .derive(
                &Budget::Resources {
                    max_answers_per_window: 25_000,
                },
                100_000,
            )
            .unwrap();
        assert!((p.s - 0.25).abs() < 1e-9);
        // Caps at 1 when the budget exceeds the population.
        let p = init
            .derive(
                &Budget::Resources {
                    max_answers_per_window: 1_000_000,
                },
                100,
            )
            .unwrap();
        assert_eq!(p.s, 1.0);
    }

    #[test]
    fn infeasible_budgets_error() {
        let init = Initializer::new().with_capacity(CapacityModel {
            answers_per_sec: 1.0,
        });
        assert!(matches!(
            init.derive(&Budget::LatencySla(1), 1_000),
            Err(CoreError::InfeasibleBudget(_))
        ));
        assert!(matches!(
            init.derive(
                &Budget::Resources {
                    max_answers_per_window: 0
                },
                1_000
            ),
            Err(CoreError::InfeasibleBudget(_))
        ));
        assert!(matches!(
            init.derive(
                &Budget::Accuracy {
                    target_error: 0.0,
                    confidence: 0.95
                },
                1_000
            ),
            Err(CoreError::InfeasibleBudget(_))
        ));
    }

    #[test]
    fn privacy_ceiling_lowers_p() {
        // A resource budget at the full population forces s = 1, where
        // ε_zk(1, 0.9, 0.6) = ln 16 ≈ 2.77 > 1 — p must come down.
        let init = Initializer::new().with_max_epsilon_zk(1.0);
        let params = init
            .derive(
                &Budget::Resources {
                    max_answers_per_window: 100_000,
                },
                100_000,
            )
            .unwrap();
        assert_eq!(params.s, 1.0);
        assert!(params.p < DEFAULT_P, "p lowered to meet ε_zk ≤ 1");
        assert!(epsilon_zk(params.s, params.p, params.q) <= 1.0 + 1e-9);
    }

    #[test]
    fn accuracy_budget_with_small_s_keeps_default_p() {
        // The default accuracy budget samples ~1.5 % of 100k clients;
        // amplification already beats an ε_zk ceiling of 1.
        let init = Initializer::new().with_max_epsilon_zk(1.0);
        let params = init.derive(&Budget::default_accuracy(), 100_000).unwrap();
        assert_eq!(params.p, DEFAULT_P);
        assert!(epsilon_zk(params.s, params.p, params.q) <= 1.0);
    }

    #[test]
    fn generous_privacy_ceiling_keeps_defaults() {
        let init = Initializer::new().with_max_epsilon_zk(50.0);
        let params = init.derive(&Budget::default_accuracy(), 100_000).unwrap();
        assert_eq!(params.p, DEFAULT_P);
        assert_eq!(params.q, DEFAULT_Q);
    }

    #[test]
    fn sampling_for_privacy_round_trips() {
        let init = Initializer::new();
        let s = init.sampling_for_privacy(1.5).expect("reachable");
        assert!((epsilon_zk(s, DEFAULT_P, DEFAULT_Q) - 1.5).abs() < 1e-9);
    }
}

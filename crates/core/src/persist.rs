//! Durable persistence for the sharded runtime: the journal schema,
//! snapshot sections and crash-recovery reconstruction over the
//! `privapprox-store` WAL.
//!
//! # What is journaled, and when
//!
//! The deployment's *control-plane decisions* are journaled; the
//! data plane (client shares in broker partitions) is not — shares
//! are reproducible byte-for-byte from the seed plus the command
//! history, which is exactly what the journal captures.
//!
//! The one ordering that carries the privacy guarantee: **budget
//! charges are journaled and fsynced strictly before the first
//! debit-gated worker send of the epoch**. A crash can therefore only
//! leave the journal *ahead* of the wire — recovered ledgers have
//! spent at least as much as any answer that escaped, so replaying a
//! crash can under-spend ε (a charged epoch whose sends never
//! happened is re-run without re-charging) but never over-spend.
//!
//! Charge records are *gated* on the epoch's `Submitted` record at
//! reconstruction: both are appended under one `sync`, so a torn tail
//! can persist trailing charges without their `Submitted`. Such
//! orphans prove no send happened (sends come only after the sync
//! returns), and reconstruction ignores them — the ledger ends
//! exactly equal to an uninterrupted run's.
//!
//! # Snapshots
//!
//! Every [`snapshot_every`](crate::ShardedSystemBuilder::snapshot_every)
//! epoch closes, the full supervisor state is written as an atomic
//! temp-file-rename snapshot and the journal is pruned below the
//! snapshot's record floor, bounding disk usage to O(snapshot
//! interval). The snapshot embeds the muted-replay command history
//! (answers only — loads hold closures and must be re-issued by the
//! caller before [`resume`](crate::ShardedSystem::resume)), so a
//! recovered worker's client RNG streams advance to exactly where the
//! crashed deployment's were.

use crate::aggregator::{BucketResult, QueryResult};
use crate::error::{CoreError, DeployError};
use crate::remote;
use privapprox_rr::privacy::PrivacyReport;
use privapprox_stats::estimate::ConfidenceInterval;
use privapprox_store::codec::{Reader, Writer};
use privapprox_store::snapshot::{load_latest, prune_snapshots, write_snapshot};
use privapprox_store::wal::{dir_bytes, Wal, WalRecord};
use privapprox_store::StoreError;
use privapprox_types::{
    BitVec, BudgetLedger, ExecutionParams, Query, QueryId, Timestamp, Window,
};
use std::path::{Path, PathBuf};

// ----- journal record kinds (WAL kind bytes; 0 is reserved) --------

/// A query (re-)registered on every shard, with its parameters and
/// retention flag. Re-registration (feedback retune, retention
/// enable) appends a fresh record; the latest wins.
pub(crate) const K_REGISTERED: u8 = 1;
/// A lifetime privacy budget assigned, replacing the query's ledger.
pub(crate) const K_BUDGET: u8 = 2;
/// A query admitted to the multi-tenant schedule.
pub(crate) const K_ADMITTED: u8 = 3;
/// A query withdrawn from the schedule (ledger kept).
pub(crate) const K_WITHDRAWN: u8 = 4;
/// A query retired by budget exhaustion (terminal).
pub(crate) const K_RETIRED: u8 = 5;
/// One epoch's ε_zk debit against a query's ledger. Carries the
/// *absolute* post-charge spend so replay is idempotent. Applied at
/// reconstruction only when the epoch's `K_SUBMITTED` follows.
pub(crate) const K_CHARGE: u8 = 6;
/// An epoch handed to the workers: timestamp, watermark and the
/// (query, params) entries answered. The fsync barrier between this
/// record and the first worker send is the recovery contract.
pub(crate) const K_SUBMITTED: u8 = 7;
/// An epoch fully closed: its finalized results, the shard group's
/// committed offsets, and per-(query, shard) window high-water marks.
pub(crate) const K_CLOSED: u8 = 8;

// ----- snapshot section kinds (0 is reserved for the header) -------

const S_META: u8 = 1;
const S_QUERIES: u8 = 2;
const S_SCHED: u8 = 3;
const S_HISTORY: u8 = 4;
const S_PENDING: u8 = 5;
const S_OFFSETS: u8 = 6;
const S_MARKS: u8 = 7;
const S_WAREHOUSES: u8 = 8;

/// Converts a store fault into the deployment's typed error.
pub(crate) fn persist_err(e: StoreError) -> CoreError {
    CoreError::Deploy(DeployError::Persist {
        detail: e.to_string(),
    })
}

fn bad(what: &'static str, detail: String) -> StoreError {
    StoreError::BadRecord { what, detail }
}

// ----- record payload encoders -------------------------------------

fn put_query(w: &mut Writer, query: &Query, params: ExecutionParams) {
    let json = remote::render(&remote::query_to_value(query));
    w.bytes(&json);
    w.f64(params.s).f64(params.p).f64(params.q);
}

fn get_query(r: &mut Reader<'_>, what: &'static str) -> Result<(Query, ExecutionParams), StoreError> {
    let json = r.bytes()?.to_vec();
    let value = remote::parse(&json).map_err(|e| bad(what, format!("query json: {e}")))?;
    let query =
        remote::query_from_value(&value).map_err(|e| bad(what, format!("query decode: {e}")))?;
    let (s, p, q) = (r.f64()?, r.f64()?, r.f64()?);
    if !(s.is_finite() && p.is_finite() && q.is_finite()) {
        return Err(bad(what, format!("non-finite params ({s}, {p}, {q})")));
    }
    Ok((query, ExecutionParams::checked(s, p, q)))
}

pub(crate) fn rec_registered(
    query: &Query,
    params: ExecutionParams,
    retain: bool,
    next_serial: u64,
) -> Vec<u8> {
    let mut w = Writer::new();
    put_query(&mut w, query, params);
    w.u8(retain as u8).u64(next_serial);
    w.finish()
}

pub(crate) fn rec_budget(query: QueryId, allocated: f64) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(query.to_u64()).f64(allocated);
    w.finish()
}

pub(crate) fn rec_query_only(query: QueryId) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(query.to_u64());
    w.finish()
}

pub(crate) fn rec_retired(r: &crate::deploy::Retirement) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(r.query.to_u64())
        .f64(r.spent)
        .f64(r.allocated)
        .u64(r.epochs);
    w.finish()
}

pub(crate) fn rec_charge(
    query: QueryId,
    epoch: Timestamp,
    eps: f64,
    spent_after: f64,
    epochs_after: u64,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(query.to_u64())
        .u64(epoch.0)
        .f64(eps)
        .f64(spent_after)
        .u64(epochs_after);
    w.finish()
}

pub(crate) fn rec_submitted(
    ts: Timestamp,
    watermark: Timestamp,
    entries: &[(Query, ExecutionParams)],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(ts.0).u64(watermark.0).u64(entries.len() as u64);
    for (q, p) in entries {
        w.u64(q.id.to_u64()).f64(p.s).f64(p.p).f64(p.q);
    }
    w.finish()
}

/// Everything a close persists, gathered by the supervisor.
pub(crate) struct CloseRecord<'a> {
    pub epoch: Timestamp,
    pub watermark: Timestamp,
    pub partial: bool,
    pub lost: u64,
    pub results: &'a [QueryResult],
    pub offsets: &'a [(String, usize, u64)],
    pub marks: &'a [(QueryId, usize, u64)],
}

pub(crate) fn rec_closed(c: &CloseRecord<'_>) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(c.epoch.0)
        .u64(c.watermark.0)
        .u8(c.partial as u8)
        .u64(c.lost);
    w.u64(c.results.len() as u64);
    for r in c.results {
        put_result(&mut w, r);
    }
    w.u64(c.offsets.len() as u64);
    for (topic, partition, next) in c.offsets {
        w.str(topic).u32(*partition as u32).u64(*next);
    }
    w.u64(c.marks.len() as u64);
    for (qid, shard, hw) in c.marks {
        w.u64(qid.to_u64()).u32(*shard as u32).u64(*hw);
    }
    w.finish()
}

// ----- QueryResult codec (bit-exact: floats as raw bits) -----------

fn put_result(w: &mut Writer, r: &QueryResult) {
    w.u64(r.query.to_u64())
        .u64(r.window.start.0)
        .u64(r.window.end.0)
        .u64(r.sample_size)
        .u64(r.population);
    w.u64(r.buckets.len() as u64);
    for b in &r.buckets {
        w.u64(b.raw_yes)
            .f64(b.estimate_sample)
            .f64(b.estimate)
            .f64(b.ci.estimate)
            .f64(b.ci.bound)
            .f64(b.ci.confidence)
            .f64(b.sampling_error)
            .f64(b.rr_error);
    }
    w.f64(r.privacy.eps_rr).f64(r.privacy.eps_dp).f64(r.privacy.eps_zk);
}

fn get_result(r: &mut Reader<'_>) -> Result<QueryResult, StoreError> {
    let query = QueryId::from_u64(r.u64()?);
    let window = Window {
        start: Timestamp(r.u64()?),
        end: Timestamp(r.u64()?),
    };
    let sample_size = r.u64()?;
    let population = r.u64()?;
    let nb = r.count(64)?;
    let mut buckets = Vec::with_capacity(nb);
    for _ in 0..nb {
        buckets.push(BucketResult {
            raw_yes: r.u64()?,
            estimate_sample: r.f64()?,
            estimate: r.f64()?,
            ci: ConfidenceInterval {
                estimate: r.f64()?,
                bound: r.f64()?,
                confidence: r.f64()?,
            },
            sampling_error: r.f64()?,
            rr_error: r.f64()?,
        });
    }
    let privacy = PrivacyReport {
        eps_rr: r.f64()?,
        eps_dp: r.f64()?,
        eps_zk: r.f64()?,
    };
    Ok(QueryResult {
        query,
        window,
        sample_size,
        population,
        buckets,
        privacy,
    })
}

// ----- recovered state ---------------------------------------------

/// A query reconstructed from the store, with its latest parameters.
pub(crate) struct RecoveredQuery {
    pub query: Query,
    pub params: ExecutionParams,
    pub retain: bool,
    pub ledger: Option<BudgetLedger>,
}

/// An epoch that was durably submitted but never closed: its sends
/// may or may not have escaped before the crash, so recovery re-runs
/// it live — **without** re-charging (the charges are already in the
/// reconstructed ledgers).
pub(crate) struct OpenEpoch {
    pub ts: Timestamp,
    pub watermark: Timestamp,
    pub entries: Vec<(QueryId, ExecutionParams)>,
}

/// Supervisor state reconstructed from snapshot + journal suffix.
#[derive(Default)]
pub(crate) struct RecoveredState {
    pub queries: Vec<RecoveredQuery>,
    /// Multi-tenant schedule, in admission order.
    pub admitted: Vec<QueryId>,
    /// Budget-retired queries (terminal).
    pub terminal: Vec<QueryId>,
    pub now_ms: u64,
    pub next_serial: u64,
    pub recoveries: u64,
    pub partial_closes: u64,
    pub lost_answers: u64,
    pub epochs_closed: u64,
    /// Closed-epoch answer commands for the muted replay, in
    /// submission order: `(query, params, epoch timestamp)`.
    pub history: Vec<(QueryId, ExecutionParams, Timestamp)>,
    /// Submitted-but-unclosed epochs, oldest first.
    pub open_epochs: Vec<OpenEpoch>,
    /// Results closed but possibly not yet drained (at-least-once:
    /// a result drained after the last snapshot is re-emitted).
    pub pending: Vec<QueryResult>,
    /// Last checkpointed committed offsets of the `"aggregator"`
    /// group: `(topic, partition, next offset)`. A whole-system
    /// restart rebuilds the broker log, so these floors are reported
    /// (not force-restored): the rebuilt log's origin *is* the
    /// rebased floor — everything below it was consumed by closed,
    /// journaled epochs.
    pub offsets: Vec<(String, usize, u64)>,
    /// Per-(query, shard) window high-water marks: the largest
    /// window end each shard contributed for each query.
    pub marks: Vec<(QueryId, usize, u64)>,
    /// Retained warehouses captured by the last snapshot:
    /// `(query, [(ts, mid, answer)])`.
    pub warehouses: Vec<(QueryId, Vec<(u64, u128, BitVec)>)>,
    /// Whether the journal ended in a torn (crash-truncated) frame.
    pub torn_tail: bool,
}

impl RecoveredState {
    fn upsert_query(&mut self, q: Query, params: ExecutionParams, retain: bool) {
        match self.queries.iter_mut().find(|rq| rq.query.id == q.id) {
            Some(rq) => {
                rq.query = q;
                rq.params = params;
                rq.retain = retain;
            }
            None => self.queries.push(RecoveredQuery {
                query: q,
                params,
                retain,
                ledger: None,
            }),
        }
    }

    fn ledger_mut(&mut self, qid: QueryId) -> Option<&mut Option<BudgetLedger>> {
        self.queries
            .iter_mut()
            .find(|rq| rq.query.id == qid)
            .map(|rq| &mut rq.ledger)
    }
}

// ----- snapshot assembly -------------------------------------------

/// Everything the supervisor hands the snapshot writer.
pub(crate) struct SnapshotContents<'a> {
    pub now_ms: u64,
    pub next_serial: u64,
    pub recoveries: u64,
    pub partial_closes: u64,
    pub lost_answers: u64,
    pub epochs_closed: u64,
    /// `(query, params, retain, ledger)` for every registered query.
    pub queries: Vec<(&'a Query, ExecutionParams, bool, Option<&'a BudgetLedger>)>,
    pub admitted: &'a [QueryId],
    pub terminal: &'a [QueryId],
    pub history: &'a [(QueryId, ExecutionParams, Timestamp)],
    pub pending: &'a [QueryResult],
    pub offsets: &'a [(String, usize, u64)],
    pub marks: &'a [(QueryId, usize, u64)],
    pub warehouses: &'a [(QueryId, Vec<(u64, u128, BitVec)>)],
}

fn build_sections(c: &SnapshotContents<'_>) -> Vec<(u8, Vec<u8>)> {
    let mut meta = Writer::new();
    meta.u64(c.now_ms)
        .u64(c.next_serial)
        .u64(c.recoveries)
        .u64(c.partial_closes)
        .u64(c.lost_answers)
        .u64(c.epochs_closed);

    let mut queries = Writer::new();
    queries.u64(c.queries.len() as u64);
    for (q, params, retain, ledger) in &c.queries {
        put_query(&mut queries, q, *params);
        queries.u8(*retain as u8);
        match ledger {
            Some(l) => {
                queries.u8(1).f64(l.allocated()).f64(l.spent()).u64(l.epochs());
            }
            None => {
                queries.u8(0);
            }
        }
    }

    let mut sched = Writer::new();
    sched.u64(c.admitted.len() as u64);
    for qid in c.admitted {
        sched.u64(qid.to_u64());
    }
    sched.u64(c.terminal.len() as u64);
    for qid in c.terminal {
        sched.u64(qid.to_u64());
    }

    let mut history = Writer::new();
    history.u64(c.history.len() as u64);
    for (qid, params, ts) in c.history {
        history
            .u64(qid.to_u64())
            .f64(params.s)
            .f64(params.p)
            .f64(params.q)
            .u64(ts.0);
    }

    let mut pending = Writer::new();
    pending.u64(c.pending.len() as u64);
    for r in c.pending {
        put_result(&mut pending, r);
    }

    let mut offsets = Writer::new();
    offsets.u64(c.offsets.len() as u64);
    for (topic, partition, next) in c.offsets {
        offsets.str(topic).u32(*partition as u32).u64(*next);
    }

    let mut marks = Writer::new();
    marks.u64(c.marks.len() as u64);
    for (qid, shard, hw) in c.marks {
        marks.u64(qid.to_u64()).u32(*shard as u32).u64(*hw);
    }

    let mut wh = Writer::new();
    wh.u64(c.warehouses.len() as u64);
    for (qid, entries) in c.warehouses {
        wh.u64(qid.to_u64()).u64(entries.len() as u64);
        for (ts, mid, answer) in entries {
            wh.u64(*ts).u128(*mid).u64(answer.len() as u64);
            wh.bytes(&answer.to_bytes());
        }
    }

    vec![
        (S_META, meta.finish()),
        (S_QUERIES, queries.finish()),
        (S_SCHED, sched.finish()),
        (S_HISTORY, history.finish()),
        (S_PENDING, pending.finish()),
        (S_OFFSETS, offsets.finish()),
        (S_MARKS, marks.finish()),
        (S_WAREHOUSES, wh.finish()),
    ]
}

fn apply_snapshot(state: &mut RecoveredState, sections: &[(u8, Vec<u8>)]) -> Result<(), StoreError> {
    for (kind, payload) in sections {
        match *kind {
            S_META => {
                let mut r = Reader::new(payload, "snapshot meta");
                state.now_ms = r.u64()?;
                state.next_serial = r.u64()?;
                state.recoveries = r.u64()?;
                state.partial_closes = r.u64()?;
                state.lost_answers = r.u64()?;
                state.epochs_closed = r.u64()?;
                r.done()?;
            }
            S_QUERIES => {
                let mut r = Reader::new(payload, "snapshot queries");
                let n = r.count(32)?;
                for _ in 0..n {
                    let (q, params) = get_query(&mut r, "snapshot queries")?;
                    let qid = q.id;
                    let retain = r.u8()? != 0;
                    let ledger = if r.u8()? != 0 {
                        let (alloc, spent) = (r.f64()?, r.f64()?);
                        let epochs = r.u64()?;
                        Some(BudgetLedger::restore(alloc, spent, epochs))
                    } else {
                        None
                    };
                    state.upsert_query(q, params, retain);
                    if ledger.is_some() {
                        if let Some(slot) = state.ledger_mut(qid) {
                            *slot = ledger;
                        }
                    }
                }
                r.done()?;
            }
            S_SCHED => {
                let mut r = Reader::new(payload, "snapshot schedule");
                let na = r.count(8)?;
                for _ in 0..na {
                    state.admitted.push(QueryId::from_u64(r.u64()?));
                }
                let nt = r.count(8)?;
                for _ in 0..nt {
                    state.terminal.push(QueryId::from_u64(r.u64()?));
                }
                r.done()?;
            }
            S_HISTORY => {
                let mut r = Reader::new(payload, "snapshot history");
                let n = r.count(40)?;
                for _ in 0..n {
                    let qid = QueryId::from_u64(r.u64()?);
                    let (s, p, q) = (r.f64()?, r.f64()?, r.f64()?);
                    let ts = Timestamp(r.u64()?);
                    state
                        .history
                        .push((qid, ExecutionParams::checked(s, p, q), ts));
                }
                r.done()?;
            }
            S_PENDING => {
                let mut r = Reader::new(payload, "snapshot pending");
                let n = r.count(64)?;
                for _ in 0..n {
                    state.pending.push(get_result(&mut r)?);
                }
                r.done()?;
            }
            S_OFFSETS => {
                let mut r = Reader::new(payload, "snapshot offsets");
                let n = r.count(20)?;
                state.offsets.clear();
                for _ in 0..n {
                    let topic = r.str()?.to_string();
                    let partition = r.u32()? as usize;
                    let next = r.u64()?;
                    state.offsets.push((topic, partition, next));
                }
                r.done()?;
            }
            S_MARKS => {
                let mut r = Reader::new(payload, "snapshot marks");
                let n = r.count(20)?;
                for _ in 0..n {
                    let qid = QueryId::from_u64(r.u64()?);
                    let shard = r.u32()? as usize;
                    let hw = r.u64()?;
                    state.marks.push((qid, shard, hw));
                }
                r.done()?;
            }
            S_WAREHOUSES => {
                let mut r = Reader::new(payload, "snapshot warehouses");
                let nq = r.count(16)?;
                for _ in 0..nq {
                    let qid = QueryId::from_u64(r.u64()?);
                    let ne = r.count(32)?;
                    let mut entries = Vec::with_capacity(ne);
                    for _ in 0..ne {
                        let ts = r.u64()?;
                        let mid = r.u128()?;
                        let bits = r.u64()? as usize;
                        let raw = r.bytes()?;
                        let answer = BitVec::from_bytes(bits, raw).ok_or_else(|| {
                            bad(
                                "snapshot warehouses",
                                format!("bit vector of {bits} bits does not fit {} bytes", raw.len()),
                            )
                        })?;
                        entries.push((ts, mid, answer));
                    }
                    state.warehouses.push((qid, entries));
                }
                r.done()?;
            }
            other => {
                return Err(bad("snapshot", format!("unknown section kind {other}")));
            }
        }
    }
    Ok(())
}

// ----- journal replay ----------------------------------------------

fn apply_records(state: &mut RecoveredState, records: &[WalRecord]) -> Result<(), StoreError> {
    // Charges buffered until their epoch's `Submitted` proves the
    // sync barrier was crossed; orphans at the journal tail mean no
    // send escaped and are dropped.
    let mut pending_charges: Vec<(QueryId, u64, f64, u64)> = Vec::new();
    for rec in records {
        match rec.kind {
            K_REGISTERED => {
                let mut r = Reader::new(&rec.payload, "registered");
                let (q, params) = get_query(&mut r, "registered")?;
                let retain = r.u8()? != 0;
                let next_serial = r.u64()?;
                r.done()?;
                state.upsert_query(q, params, retain);
                state.next_serial = state.next_serial.max(next_serial);
            }
            K_BUDGET => {
                let mut r = Reader::new(&rec.payload, "budget");
                let qid = QueryId::from_u64(r.u64()?);
                let allocated = r.f64()?;
                r.done()?;
                if let Some(slot) = state.ledger_mut(qid) {
                    *slot = Some(BudgetLedger::restore(allocated, 0.0, 0));
                }
            }
            K_ADMITTED => {
                let mut r = Reader::new(&rec.payload, "admitted");
                let qid = QueryId::from_u64(r.u64()?);
                r.done()?;
                if !state.admitted.contains(&qid) {
                    state.admitted.push(qid);
                }
            }
            K_WITHDRAWN => {
                let mut r = Reader::new(&rec.payload, "withdrawn");
                let qid = QueryId::from_u64(r.u64()?);
                r.done()?;
                state.admitted.retain(|q| *q != qid);
            }
            K_RETIRED => {
                let mut r = Reader::new(&rec.payload, "retired");
                let qid = QueryId::from_u64(r.u64()?);
                let _spent = r.f64()?;
                let _allocated = r.f64()?;
                let _epochs = r.u64()?;
                r.done()?;
                state.admitted.retain(|q| *q != qid);
                if !state.terminal.contains(&qid) {
                    state.terminal.push(qid);
                }
            }
            K_CHARGE => {
                let mut r = Reader::new(&rec.payload, "charge");
                let qid = QueryId::from_u64(r.u64()?);
                let epoch = r.u64()?;
                let _eps = r.f64()?;
                let spent_after = r.f64()?;
                let epochs_after = r.u64()?;
                r.done()?;
                pending_charges.push((qid, epoch, spent_after, epochs_after));
            }
            K_SUBMITTED => {
                let mut r = Reader::new(&rec.payload, "submitted");
                let ts = Timestamp(r.u64()?);
                let watermark = Timestamp(r.u64()?);
                let n = r.count(32)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let qid = QueryId::from_u64(r.u64()?);
                    let (s, p, q) = (r.f64()?, r.f64()?, r.f64()?);
                    entries.push((qid, ExecutionParams::checked(s, p, q)));
                }
                r.done()?;
                // The sync barrier was crossed: this epoch's charges
                // are live. Absolute values make re-application after
                // a snapshot idempotent.
                for (qid, epoch, spent_after, epochs_after) in pending_charges.drain(..) {
                    if epoch != ts.0 {
                        continue;
                    }
                    let alloc = state
                        .ledger_mut(qid)
                        .and_then(|slot| slot.as_ref().map(|l| l.allocated()));
                    if let (Some(alloc), Some(slot)) = (alloc, state.ledger_mut(qid)) {
                        *slot = Some(BudgetLedger::restore(alloc, spent_after, epochs_after));
                    } else if let Some(slot) = state.ledger_mut(qid) {
                        // Charge against an implicitly-created
                        // unbounded ledger.
                        *slot = Some(BudgetLedger::restore(
                            f64::INFINITY,
                            spent_after,
                            epochs_after,
                        ));
                    }
                }
                state.now_ms = state.now_ms.max(watermark.0);
                state.open_epochs.push(OpenEpoch {
                    ts,
                    watermark,
                    entries,
                });
            }
            K_CLOSED => {
                let mut r = Reader::new(&rec.payload, "closed");
                let ts = Timestamp(r.u64()?);
                let _watermark = Timestamp(r.u64()?);
                let partial = r.u8()? != 0;
                let lost = r.u64()?;
                let nr = r.count(64)?;
                for _ in 0..nr {
                    state.pending.push(get_result(&mut r)?);
                }
                let no = r.count(20)?;
                let mut offsets = Vec::with_capacity(no);
                for _ in 0..no {
                    let topic = r.str()?.to_string();
                    let partition = r.u32()? as usize;
                    let next = r.u64()?;
                    offsets.push((topic, partition, next));
                }
                let nm = r.count(20)?;
                let mut marks = Vec::with_capacity(nm);
                for _ in 0..nm {
                    let qid = QueryId::from_u64(r.u64()?);
                    let shard = r.u32()? as usize;
                    let hw = r.u64()?;
                    marks.push((qid, shard, hw));
                }
                r.done()?;
                state.offsets = offsets;
                state.marks = marks;
                state.epochs_closed += 1;
                if partial {
                    state.partial_closes += 1;
                }
                state.lost_answers += lost;
                // Move the closed epoch's commands into the muted
                // replay history, preserving submission order.
                if let Some(pos) = state.open_epochs.iter().position(|e| e.ts == ts) {
                    let ep = state.open_epochs.remove(pos);
                    for (qid, params) in ep.entries {
                        state.history.push((qid, params, ep.ts));
                    }
                }
            }
            other => {
                return Err(bad("journal", format!("unknown record kind {other}")));
            }
        }
    }
    Ok(())
}

// ----- durable handle ----------------------------------------------

/// The open durable store plus the supervisor-side cadence state.
pub(crate) struct DurableState {
    pub dir: PathBuf,
    pub wal: Wal,
    /// Epoch closes between snapshots (≥ 1).
    pub snapshot_every: u64,
    pub closes_since_snapshot: u64,
    /// Sequence the *next* snapshot will get.
    pub snapshot_seq: u64,
    /// Successful recoveries of this store directory (persisted in
    /// snapshot meta; surfaced via `DeployHealth::recoveries`).
    pub recoveries: u64,
    /// True while `resume()` replays state that already came *from*
    /// the journal — suppresses re-journaling.
    pub muted: bool,
}

impl DurableState {
    /// Opens (creating if absent) the store directory, replays the
    /// latest snapshot plus the journal suffix, and returns the
    /// reconstructed supervisor state, if any was found.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        snapshot_every: u64,
    ) -> Result<(DurableState, Option<RecoveredState>), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir_all", dir, e))?;
        let snapshot = load_latest(dir)?;
        let (wal, recovery) = Wal::open(dir, segment_bytes)?;
        let mut state = RecoveredState::default();
        let mut found = false;
        let mut floor = 0u64;
        let mut snapshot_seq = 0u64;
        if let Some(snap) = snapshot {
            apply_snapshot(&mut state, &snap.sections)?;
            floor = snap.wal_floor;
            snapshot_seq = snap.seq + 1;
            found = true;
        }
        let suffix: Vec<WalRecord> = recovery
            .records
            .into_iter()
            .filter(|r| r.index >= floor)
            .collect();
        if !suffix.is_empty() {
            found = true;
        }
        apply_records(&mut state, &suffix)?;
        state.torn_tail = recovery.torn_tail.is_some();
        let durable = DurableState {
            dir: dir.to_path_buf(),
            wal,
            snapshot_every: snapshot_every.max(1),
            closes_since_snapshot: 0,
            snapshot_seq,
            recoveries: state.recoveries,
            muted: false,
        };
        Ok((durable, if found { Some(state) } else { None }))
    }

    /// Buffers one journal record (no-op while muted).
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StoreError> {
        if self.muted {
            return Ok(());
        }
        self.wal.append(kind, payload)?;
        Ok(())
    }

    /// Makes every buffered record durable (no-op while muted).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.muted {
            return Ok(());
        }
        self.wal.sync()
    }

    /// Writes a snapshot of `contents`, then prunes the journal below
    /// the snapshot floor and retires old snapshot files — the disk
    /// bound. Returns the snapshot size in bytes.
    ///
    /// `floor_cap` bounds the prune floor: open (submitted, not yet
    /// closed) epochs are rebuilt from their journal records on
    /// recovery, so the caller passes the lowest open epoch's journal
    /// mark to keep those records alive past the snapshot.
    pub fn snapshot(
        &mut self,
        contents: &SnapshotContents<'_>,
        floor_cap: u64,
    ) -> Result<u64, StoreError> {
        // The floor must only cover *synced* records: buffered bytes
        // are not yet durable and must survive in the journal.
        self.wal.sync()?;
        let floor = self.wal.next_index().min(floor_cap);
        let sections = build_sections(contents);
        let bytes = write_snapshot(&self.dir, self.snapshot_seq, floor, &sections)?;
        self.snapshot_seq += 1;
        self.wal.prune_below(floor)?;
        prune_snapshots(&self.dir, 2)?;
        self.closes_since_snapshot = 0;
        Ok(bytes)
    }

    /// Total on-disk journal bytes (live segments plus unsynced
    /// buffer), for `DeployHealth::journal_bytes`.
    pub fn journal_bytes(&self) -> u64 {
        dir_bytes(&self.dir).unwrap_or(0) + self.wal.pending_bytes() as u64
    }

    /// Snapshot files currently on disk.
    pub fn snapshot_count(&self) -> u64 {
        privapprox_store::snapshot::snapshot_count(&self.dir).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privapprox_types::ids::AnalystId;
    use privapprox_types::{AnswerSpec, BucketRule, QueryBuilder};

    fn mk_query(serial: u32) -> Query {
        QueryBuilder::new(
            QueryId::new(AnalystId(1), serial),
            "SELECT speed FROM cars",
        )
        .answer(AnswerSpec::new(vec![
            BucketRule::Range { lo: 0.0, hi: 50.0 },
            BucketRule::Range { lo: 50.0, hi: 100.0 },
        ]))
        .window(1_000, 1_000)
        .sign_and_build(42)
    }

    fn mk_result(qid: QueryId, start: u64) -> QueryResult {
        QueryResult {
            query: qid,
            window: Window {
                start: Timestamp(start),
                end: Timestamp(start + 1_000),
            },
            sample_size: 7,
            population: 100,
            buckets: vec![BucketResult {
                raw_yes: 5,
                estimate_sample: 4.25,
                estimate: 42.5,
                ci: ConfidenceInterval {
                    estimate: 42.5,
                    bound: 3.125,
                    confidence: 0.95,
                },
                sampling_error: 2.0,
                rr_error: 1.125,
            }],
            privacy: PrivacyReport {
                eps_rr: 1.0,
                eps_dp: 0.5,
                eps_zk: 0.25,
            },
        }
    }

    #[test]
    fn result_codec_is_bit_exact() {
        let q = mk_query(1);
        let original = mk_result(q.id, 500);
        let mut w = Writer::new();
        put_result(&mut w, &original);
        let buf = w.finish();
        let mut r = Reader::new(&buf, "test");
        let decoded = get_result(&mut r).unwrap();
        r.done().unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn orphan_charges_without_submitted_are_dropped() {
        let q = mk_query(1);
        let mut records = Vec::new();
        let mut idx = 0u64;
        let mut push = |records: &mut Vec<WalRecord>, kind: u8, payload: Vec<u8>| {
            records.push(WalRecord {
                index: idx,
                kind,
                payload,
            });
            idx += 1;
        };
        let params = ExecutionParams::checked(1.0, 0.9, 0.5);
        push(
            &mut records,
            K_REGISTERED,
            rec_registered(&q, params, false, 2),
        );
        push(&mut records, K_BUDGET, rec_budget(q.id, 1.0));
        // Epoch 1: charge + submitted (applied).
        push(
            &mut records,
            K_CHARGE,
            rec_charge(q.id, Timestamp(500), 0.25, 0.25, 1),
        );
        push(
            &mut records,
            K_SUBMITTED,
            rec_submitted(Timestamp(500), Timestamp(1_000), &[(q.clone(), params)]),
        );
        // Epoch 2: a torn tail left the charge without its submitted.
        push(
            &mut records,
            K_CHARGE,
            rec_charge(q.id, Timestamp(1_500), 0.25, 0.5, 2),
        );
        let mut state = RecoveredState::default();
        apply_records(&mut state, &records).unwrap();
        let ledger = state.queries[0].ledger.as_ref().unwrap();
        assert_eq!(ledger.spent(), 0.25, "orphan charge must not apply");
        assert_eq!(ledger.epochs(), 1);
        assert_eq!(state.open_epochs.len(), 1, "epoch 1 submitted, never closed");
    }

    #[test]
    fn closed_epochs_move_to_history_and_results_restore() {
        let q = mk_query(1);
        let params = ExecutionParams::checked(1.0, 0.9, 0.5);
        let result = mk_result(q.id, 0);
        let records = vec![
            WalRecord {
                index: 0,
                kind: K_REGISTERED,
                payload: rec_registered(&q, params, false, 2),
            },
            WalRecord {
                index: 1,
                kind: K_SUBMITTED,
                payload: rec_submitted(Timestamp(500), Timestamp(1_000), &[(q.clone(), params)]),
            },
            WalRecord {
                index: 2,
                kind: K_CLOSED,
                payload: rec_closed(&CloseRecord {
                    epoch: Timestamp(500),
                    watermark: Timestamp(1_000),
                    partial: false,
                    lost: 0,
                    results: std::slice::from_ref(&result),
                    offsets: &[("proxy-0-out".to_string(), 0, 11)],
                    marks: &[(q.id, 0, 1_000)],
                }),
            },
        ];
        let mut state = RecoveredState::default();
        apply_records(&mut state, &records).unwrap();
        assert!(state.open_epochs.is_empty());
        assert_eq!(state.history, vec![(q.id, params, Timestamp(500))]);
        assert_eq!(state.pending, vec![result]);
        assert_eq!(state.offsets, vec![("proxy-0-out".to_string(), 0, 11)]);
        assert_eq!(state.marks, vec![(q.id, 0, 1_000)]);
        assert_eq!(state.epochs_closed, 1);
        assert_eq!(state.now_ms, 1_000);
    }

    #[test]
    fn snapshot_sections_round_trip() {
        let q = mk_query(1);
        let params = ExecutionParams::checked(1.0, 0.9, 0.5);
        let ledger = BudgetLedger::restore(2.0, 0.75, 3);
        let result = mk_result(q.id, 2_000);
        let history = vec![(q.id, params, Timestamp(500))];
        let pending = vec![result.clone()];
        let offsets = vec![("proxy-1-out".to_string(), 2, 33u64)];
        let marks = vec![(q.id, 1, 3_000u64)];
        let warehouses = vec![(
            q.id,
            vec![(500u64, 7u128, BitVec::one_hot(2, 1))],
        )];
        let contents = SnapshotContents {
            now_ms: 3_000,
            next_serial: 2,
            recoveries: 1,
            partial_closes: 4,
            lost_answers: 9,
            epochs_closed: 3,
            queries: vec![(&q, params, true, Some(&ledger))],
            admitted: &[q.id],
            terminal: &[],
            history: &history,
            pending: &pending,
            offsets: &offsets,
            marks: &marks,
            warehouses: &warehouses,
        };
        let sections = build_sections(&contents);
        let mut state = RecoveredState::default();
        apply_snapshot(&mut state, &sections).unwrap();
        assert_eq!(state.now_ms, 3_000);
        assert_eq!(state.next_serial, 2);
        assert_eq!(state.recoveries, 1);
        assert_eq!(state.partial_closes, 4);
        assert_eq!(state.lost_answers, 9);
        assert_eq!(state.epochs_closed, 3);
        assert_eq!(state.queries.len(), 1);
        assert!(state.queries[0].retain);
        let l = state.queries[0].ledger.as_ref().unwrap();
        assert_eq!((l.allocated(), l.spent(), l.epochs()), (2.0, 0.75, 3));
        assert_eq!(state.admitted, vec![q.id]);
        assert_eq!(state.history, history);
        assert_eq!(state.pending, pending);
        assert_eq!(state.offsets, offsets);
        assert_eq!(state.marks, marks);
        assert_eq!(state.warehouses.len(), 1);
        assert_eq!(state.warehouses[0].1[0].2, BitVec::one_hot(2, 1));
    }
}

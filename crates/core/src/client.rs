//! The PrivApprox client (paper §3.2.1–§3.2.3, Figure 3 left).
//!
//! Each client stores its user's private data locally (here: the
//! in-process SQL engine standing in for SQLite), subscribes to
//! queries, and per epoch: (i) flips the participation coin, (ii) if
//! participating, executes the SQL over its local rows and bucketizes
//! the answer into the `A[n]` bit-vector, (iii) randomizes every bit
//! with the two-coin mechanism, and (iv) splits the encoded message
//! into XOR shares, one per proxy.
//!
//! A query is long-lived while local rows churn, so the client
//! compiles each `QueryId`'s SQL once into a prepared plan
//! ([`privapprox_sql::PlanCache`]) and caches a compiled bucket
//! indexer per query ([`privapprox_types::BucketIndexer`]); the
//! per-epoch SQL stage is then a plan-cache hit plus an
//! allocation-free scan. Re-registering a `QueryId` with different
//! SQL, or re-creating a local table, transparently recompiles.

use crate::error::CoreError;
use privapprox_crypto::xor::{encode_answer_into, Share, SplitScratch, XorSplitter};
use privapprox_rr::randomize::{RandomizeScratch, Randomizer};
use privapprox_sampling::srs::ParticipationCoin;
use privapprox_sql::{Database, EvalScratch, PlanCache, ValueRef};
use privapprox_types::{
    BitVec, BucketIndexer, ClientId, ExecutionParams, FastState, MessageId, Query, QueryId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One client's produced answer: `n` shares destined for `n` proxies.
#[derive(Debug, Clone)]
pub struct ClientAnswer {
    /// Share `i` goes to proxy `i`.
    pub shares: Vec<Share>,
}

/// Caller-owned buffers for the client's per-epoch hot path
/// (SQL → bucketize → randomize → encode → split).
///
/// Reusing one `ClientScratch` across epochs makes the whole answer
/// pipeline allocation-free at steady state: the truthful `A[n]`
/// vector is rebuilt in place from the prepared plan's scan, and the
/// downstream stages reuse their buffers as before.
#[derive(Debug, Clone, Default)]
pub struct ClientScratch {
    /// The truthful `A[n]` vector.
    truth: BitVec,
    /// The randomized `A[n]` vector.
    randomized: BitVec,
    /// The randomize stage's bulk-RNG state: an 8-lane `WideRng` plus
    /// its pre-filled word buffer, both materialized on first use
    /// (the generator forks off the client RNG) and reused every
    /// epoch after.
    randomize: RandomizeScratch,
    /// The encoded wire message `⟨QID, randomized answer⟩`.
    message: Vec<u8>,
    /// The XOR share buffers.
    split: SplitScratch,
}

impl ClientScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> ClientScratch {
        ClientScratch::default()
    }

    /// The shares produced by the most recent
    /// [`Client::answer_query_into`].
    pub fn shares(&self) -> &[Share] {
        self.split.shares()
    }
}

/// A cached [`BucketIndexer`] plus the fingerprint it was compiled
/// under: the query's signature covers the SQL, id and answer width,
/// so a re-registered query recompiles the indexer too. Stale
/// indexers are merely slow, never wrong — every arithmetic
/// candidate is verified against the live spec (see
/// [`BucketIndexer::bucketize_num`]).
#[derive(Debug, Clone, Copy)]
struct CachedIndexer {
    signature: u64,
    answer_len: usize,
    indexer: BucketIndexer,
}

/// A client device holding one user's private data.
pub struct Client {
    id: ClientId,
    db: Database,
    /// Seed material for per-query RNG streams (see `rngs`).
    rng_seed: u64,
    /// One independent RNG stream per subscribed query, lazily
    /// created on first answer. Every stream is seeded from the SAME
    /// `rng_seed` — deliberately NOT mixed with the `QueryId` — so a
    /// query answered inside a multi-tenant schedule consumes exactly
    /// the draws it would consume running alone in a fresh system.
    /// That same-seed design is what makes K concurrent queries
    /// byte-identical to K sequential isolation runs (the
    /// `multi_query` equivalence suite), at the cost of concurrent
    /// queries drawing identical MID sequences — which is why the
    /// share join is keyed by (query, MID), not MID alone.
    ///
    /// Linear scan: a client subscribes to a handful of queries, so a
    /// `Vec` beats a hash map here.
    rngs: Vec<(QueryId, StdRng)>,
    /// Analyst public keys this client trusts (keyed verification of
    /// query signatures, §3.1).
    analyst_key: u64,
    /// Prepared plans keyed by `QueryId` (see the module docs).
    plans: PlanCache,
    /// Opcode-stack scratch for prepared execution.
    sql_scratch: EvalScratch,
    /// Compiled bucket indexers keyed by `QueryId`. `FastState`: hit
    /// once per answered message, analyst-assigned keys.
    indexers: HashMap<QueryId, CachedIndexer, FastState>,
}

impl Client {
    /// Creates a client with a deterministic RNG seed and the analyst
    /// verification key it trusts.
    pub fn new(id: ClientId, seed: u64, analyst_key: u64) -> Client {
        Client {
            id,
            db: Database::new(),
            rng_seed: seed ^ id.0.rotate_left(32),
            rngs: Vec::new(),
            analyst_key,
            plans: PlanCache::new(),
            sql_scratch: EvalScratch::new(),
            indexers: HashMap::default(),
        }
    }

    /// Index into `rngs` of the RNG stream for `query`, creating it
    /// on first use. Returns an index rather than a borrow so callers
    /// can interleave RNG draws with other `&mut self` stages.
    fn rng_for(&mut self, query: QueryId) -> usize {
        match self.rngs.iter().position(|(q, _)| *q == query) {
            Some(i) => i,
            None => {
                self.rngs
                    .push((query, StdRng::seed_from_u64(self.rng_seed)));
                self.rngs.len() - 1
            }
        }
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The private local database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the private local database.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Executes the query's SQL locally and bucketizes the newest
    /// matching value into the truthful `A[n]` vector.
    ///
    /// Returns the all-zero vector when the query matches no local
    /// rows (the client has no answer in range — every bucket is
    /// truthfully "no").
    ///
    /// Allocating wrapper over [`Client::truthful_answer_into`];
    /// both consult the client's plan cache, so repeated calls for
    /// one `QueryId` compile the SQL exactly once.
    pub fn truthful_answer(&mut self, query: &Query) -> Result<BitVec, CoreError> {
        let mut vec = BitVec::zeros(query.answer.len());
        self.truthful_answer_into(query, &mut vec)?;
        Ok(vec)
    }

    /// [`Client::truthful_answer`] into a caller-owned vector:
    /// plan-cache hit, prepared scan, arithmetic bucketization —
    /// allocation-free once the plan and `out` are warm.
    pub fn truthful_answer_into(
        &mut self,
        query: &Query,
        out: &mut BitVec,
    ) -> Result<(), CoreError> {
        out.reset(query.answer.len());
        // The indexer cache is refreshed first so its borrow ends
        // before the plan's scan borrows the database.
        let indexer = self.indexer_for(query);
        let plan = self.plans.get_or_prepare(query.id, &query.sql, &self.db)?;
        // The newest row is the client's current state (clients append
        // their stream in time order).
        let Some(value) = plan.last_single_value(&self.db, &mut self.sql_scratch)? else {
            return Ok(());
        };
        let bucket = match value {
            ValueRef::Null => None,
            ValueRef::Text(s) => indexer.bucketize_text(&query.answer, s),
            other => match other.as_f64() {
                Some(v) => indexer.bucketize_num(&query.answer, v),
                None => None,
            },
        };
        match bucket {
            Some(b) => {
                out.set(b, true);
                Ok(())
            }
            None => Err(CoreError::Unbucketizable(value.to_value().to_string())),
        }
    }

    /// The cached bucket indexer for `query`, recompiled when the
    /// query's signature or answer width changed.
    fn indexer_for(&mut self, query: &Query) -> BucketIndexer {
        let entry = self
            .indexers
            .entry(query.id)
            .and_modify(|c| {
                if c.signature != query.signature || c.answer_len != query.answer.len() {
                    *c = CachedIndexer {
                        signature: query.signature,
                        answer_len: query.answer.len(),
                        indexer: query.answer.index_plan(),
                    };
                }
            })
            .or_insert_with(|| CachedIndexer {
                signature: query.signature,
                answer_len: query.answer.len(),
                indexer: query.answer.index_plan(),
            });
        entry.indexer
    }

    /// Runs one full epoch of the query-answering pipeline.
    ///
    /// Returns `Ok(None)` when the participation coin (bias `s`) says
    /// to sit this epoch out — the low-latency half of the paper's
    /// marriage. Otherwise returns the XOR shares to transmit, one per
    /// proxy.
    pub fn answer_query(
        &mut self,
        query: &Query,
        params: &ExecutionParams,
        n_proxies: usize,
    ) -> Result<Option<ClientAnswer>, CoreError> {
        let mut scratch = ClientScratch::new();
        Ok(self
            .answer_query_into(query, params, n_proxies, &mut scratch)?
            .map(|shares| ClientAnswer {
                shares: shares.to_vec(),
            }))
    }

    /// [`Client::answer_query`] through caller-owned scratch buffers:
    /// the randomize → encode → split stages run allocation-free once
    /// `scratch` is warm, and the returned shares borrow from it.
    pub fn answer_query_into<'a>(
        &mut self,
        query: &Query,
        params: &ExecutionParams,
        n_proxies: usize,
        scratch: &'a mut ClientScratch,
    ) -> Result<Option<&'a [Share]>, CoreError> {
        if !query.verify(self.analyst_key) {
            // Invalidate *before* erroring so a stale previous answer
            // can never leak through `scratch.shares()`.
            scratch.split.invalidate();
            return Err(CoreError::BadSignature);
        }
        self.answer_query_into_preverified(query, params, n_proxies, scratch)
    }

    /// [`Client::answer_query_into`] minus the signature check: for
    /// drivers that verified `query` against the same analyst key
    /// **once** and then fan one immutable `Query` value out to a
    /// whole client population (the deployment's worker threads).
    /// Re-hashing the canonical fields per client is pure overhead
    /// there — the verdict cannot change between clients — and
    /// skipping it consumes no RNG, so answers are byte-identical to
    /// the verifying path.
    pub fn answer_query_into_preverified<'a>(
        &mut self,
        query: &Query,
        params: &ExecutionParams,
        n_proxies: usize,
        scratch: &'a mut ClientScratch,
    ) -> Result<Option<&'a [Share]>, CoreError> {
        // Until a split completes below, `scratch.shares()` must not
        // expose the previous epoch's shares (a stale read could
        // resubmit the old message).
        scratch.split.invalidate();
        let rng = self.rng_for(query.id);
        // Step I: sampling at the client (§3.2.1).
        let coin = ParticipationCoin::new(params.s);
        if !coin.flip(&mut self.rngs[rng].1) {
            return Ok(None);
        }
        // Step II: truthful answer + randomized response (§3.2.2).
        self.truthful_answer_into(query, &mut scratch.truth)?;
        let randomized = if params.p >= 1.0 {
            &scratch.truth // degenerate no-randomization mode (Fig 4b)
        } else {
            // The *forked* path re-seeds the scratch's bulk generator
            // from this client's private RNG on every call, so the
            // randomized bits are a pure function of the client's own
            // stream — independent of which (possibly shared, possibly
            // per-shard) scratch serves the call. That per-client
            // determinism is what makes the sharded deployment
            // byte-identical to the single-threaded harness.
            Randomizer::new(params.p, params.q).randomize_vec_forked(
                &scratch.truth,
                &mut scratch.randomized,
                &mut scratch.randomize,
                &mut self.rngs[rng].1,
            );
            &scratch.randomized
        };
        // Step III: encode and split (§3.2.3).
        encode_answer_into(query.id, randomized, &mut scratch.message);
        let splitter = XorSplitter::new(n_proxies);
        let mid = MessageId(self.rngs[rng].1.gen());
        Ok(Some(splitter.split_into(
            &scratch.message,
            mid,
            &mut self.rngs[rng].1,
            &mut scratch.split,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privapprox_crypto::xor::{combine, decode_answer};
    use privapprox_sql::{ColumnType, Schema, Value};
    use privapprox_types::ids::AnalystId;
    use privapprox_types::{AnswerSpec, QueryBuilder, QueryId};

    const KEY: u64 = 0xA11CE;

    fn speed_query() -> Query {
        QueryBuilder::new(
            QueryId::new(AnalystId(1), 1),
            "SELECT speed FROM vehicle WHERE location = 'SF'",
        )
        .answer(AnswerSpec::ranges_with_overflow(0.0, 110.0, 11))
        .frequency(1_000)
        .window(60_000, 60_000)
        .sign_and_build(KEY)
    }

    fn client_with_speed(speed: f64) -> Client {
        let mut c = Client::new(ClientId(1), 42, KEY);
        c.db_mut().create_table(
            "vehicle",
            Schema::new(vec![
                ("ts", ColumnType::Int),
                ("speed", ColumnType::Float),
                ("location", ColumnType::Text),
            ]),
        );
        c.db_mut()
            .insert(
                "vehicle",
                vec![Value::Int(0), Value::Float(speed), "SF".into()],
            )
            .unwrap();
        c
    }

    #[test]
    fn truthful_answer_is_one_hot_on_the_right_bucket() {
        let mut c = client_with_speed(15.0);
        let truth = c.truthful_answer(&speed_query()).unwrap();
        assert_eq!(truth.count_ones(), 1);
        assert!(truth.get(1), "15 mph is in [10,20)");
    }

    #[test]
    fn no_matching_rows_is_all_zero() {
        let mut c = client_with_speed(15.0);
        // Overwrite location so the WHERE filters everything out.
        c.db_mut().table_mut("vehicle").unwrap().clear();
        c.db_mut()
            .insert(
                "vehicle",
                vec![Value::Int(0), Value::Float(15.0), "Oakland".into()],
            )
            .unwrap();
        let truth = c.truthful_answer(&speed_query()).unwrap();
        assert_eq!(truth.count_ones(), 0);
    }

    #[test]
    fn newest_row_wins() {
        let mut c = client_with_speed(15.0);
        c.db_mut()
            .insert(
                "vehicle",
                vec![Value::Int(1), Value::Float(95.0), "SF".into()],
            )
            .unwrap();
        let truth = c.truthful_answer(&speed_query()).unwrap();
        assert!(truth.get(9), "95 mph is in [90,100)");
    }

    #[test]
    fn full_pipeline_round_trips_without_randomization() {
        // p = 1 disables randomization; shares must recombine to the
        // truthful answer.
        let mut c = client_with_speed(15.0);
        let q = speed_query();
        let params = ExecutionParams::checked(1.0, 1.0, 0.5);
        let answer = c
            .answer_query(&q, &params, 2)
            .unwrap()
            .expect("s = 1 always participates");
        assert_eq!(answer.shares.len(), 2);
        let msg = combine(&answer.shares).unwrap();
        let (qid, decoded) = decode_answer(&msg).unwrap();
        assert_eq!(qid, q.id);
        assert_eq!(decoded, c.truthful_answer(&q).unwrap());
    }

    #[test]
    fn sampling_rate_is_respected() {
        let mut c = client_with_speed(15.0);
        let q = speed_query();
        let params = ExecutionParams::checked(0.3, 1.0, 0.5);
        let n = 2_000;
        let mut participated = 0;
        for _ in 0..n {
            if c.answer_query(&q, &params, 2).unwrap().is_some() {
                participated += 1;
            }
        }
        let rate = participated as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.04, "participation rate {rate}");
    }

    #[test]
    fn sat_out_epoch_exposes_no_stale_shares() {
        let mut c = client_with_speed(15.0);
        let q = speed_query();
        let mut scratch = ClientScratch::new();
        // Populate the scratch with one real answer.
        let always = ExecutionParams::checked(1.0, 1.0, 0.5);
        assert!(c
            .answer_query_into(&q, &always, 2, &mut scratch)
            .unwrap()
            .is_some());
        assert_eq!(scratch.shares().len(), 2);
        // A sat-out epoch (s ≈ 0 never wins the coin under this seed)
        // must not leave last epoch's shares readable — a stale read
        // would resubmit the previous message.
        let never = ExecutionParams::checked(1e-12, 1.0, 0.5);
        assert!(c
            .answer_query_into(&q, &never, 2, &mut scratch)
            .unwrap()
            .is_none());
        assert!(scratch.shares().is_empty());
    }

    #[test]
    fn plan_cache_invalidates_on_reregistered_sql() {
        let mut c = client_with_speed(15.0);
        // First registration of the QueryId: speed query → bucket 1.
        let q1 = speed_query();
        let truth = c.truthful_answer(&q1).unwrap();
        assert!(truth.get(1), "15 mph is in [10,20)");
        // The analyst re-registers the same QueryId with different
        // SQL. The cached plan must not answer the old query.
        let q2 = QueryBuilder::new(q1.id, "SELECT ts FROM vehicle WHERE location = 'SF'")
            .answer(AnswerSpec::ranges_with_overflow(0.0, 110.0, 11))
            .frequency(1_000)
            .window(60_000, 60_000)
            .sign_and_build(KEY);
        let truth = c.truthful_answer(&q2).unwrap();
        assert!(truth.get(0), "ts = 0 is in [0,10)");
        // And flipping back re-compiles again rather than serving q2.
        let truth = c.truthful_answer(&q1).unwrap();
        assert!(truth.get(1));
    }

    #[test]
    fn plan_cache_survives_table_recreation() {
        let mut c = client_with_speed(15.0);
        let q = speed_query();
        assert!(c.truthful_answer(&q).unwrap().get(1));
        // Re-creating the table moves the catalog generation; the
        // cached plan must be recompiled against the new schema, not
        // read through stale column indices.
        c.db_mut().create_table(
            "vehicle",
            Schema::new(vec![
                ("speed", ColumnType::Float),
                ("ts", ColumnType::Int),
                ("location", ColumnType::Text),
            ]),
        );
        c.db_mut()
            .insert(
                "vehicle",
                vec![Value::Float(95.0), Value::Int(0), "SF".into()],
            )
            .unwrap();
        let truth = c.truthful_answer(&q).unwrap();
        assert!(truth.get(9), "95 mph is in [90,100) under the new schema");
    }

    #[test]
    fn forged_queries_are_rejected() {
        let mut c = client_with_speed(15.0);
        let mut q = speed_query();
        q.sql = "SELECT speed FROM vehicle".into(); // tampered post-signing
        let params = ExecutionParams::checked(1.0, 0.9, 0.5);
        assert_eq!(
            c.answer_query(&q, &params, 2).unwrap_err(),
            CoreError::BadSignature
        );
    }

    #[test]
    fn unbucketizable_values_error() {
        let mut c = client_with_speed(-5.0); // negative speed: no bucket
        let q = speed_query();
        assert!(matches!(
            c.truthful_answer(&q),
            Err(CoreError::Unbucketizable(_))
        ));
    }

    #[test]
    fn randomized_answers_vary_but_decode_to_valid_vectors() {
        let mut c = client_with_speed(15.0);
        let q = speed_query();
        let params = ExecutionParams::checked(1.0, 0.5, 0.5);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..20 {
            let ans = c.answer_query(&q, &params, 2).unwrap().unwrap();
            let msg = combine(&ans.shares).unwrap();
            let (_, decoded) = decode_answer(&msg).expect("valid wire format");
            assert_eq!(decoded.len(), 12);
            distinct.insert(decoded.to_string());
        }
        assert!(distinct.len() > 1, "randomization must vary answers");
    }
}

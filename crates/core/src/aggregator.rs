//! The PrivApprox aggregator (paper §3.2.4, Figure 3 right).
//!
//! The aggregator consumes every proxy's output stream, joins shares
//! by MID, XOR-decodes the randomized answers, assigns them to sliding
//! windows, and at each window close inverts the randomization
//! (Equation 5), scales by the inverse sampling fraction (Equation 2),
//! and attaches a confidence interval whose half-width sums the two
//! independent error sources — sampling (Equations 3–4) and
//! randomized response — exactly as §3.2.4 prescribes.

use privapprox_crypto::xor::decode_answer_into;
use privapprox_rr::estimate::{estimate_true_yes, rr_estimator_variance, BucketEstimator};
use privapprox_rr::privacy::PrivacyReport;
use privapprox_rr::randomize::Randomizer;
use privapprox_sampling::srs::ParticipationCoin;
use privapprox_stats::estimate::ConfidenceInterval;
use privapprox_stats::normal::normal_quantile;
use privapprox_stats::tdist::t_critical;
use privapprox_stream::broker::{Broker, Consumer, TopicWriter};
use privapprox_stream::join::{JoinOutcome, MidJoiner};
use privapprox_stream::window::WindowedFold;
use privapprox_types::ids::AnalystId;
use privapprox_types::{BitVec, ExecutionParams, MessageId, QueryId, Timestamp, Window};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default join timeout: shares split across proxies should arrive
/// within this many milliseconds of each other.
pub const JOIN_TIMEOUT_MS: u64 = 30_000;

/// Per-bucket output of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketResult {
    /// Raw randomized "Yes" count `R_y` observed in the window.
    pub raw_yes: u64,
    /// Equation 5 estimate of truthful yeses within the sample.
    pub estimate_sample: f64,
    /// Population-scaled estimate (Equation 2): `(U/U′)·E_y`.
    pub estimate: f64,
    /// `estimate ± bound` at the configured confidence, with the bound
    /// summing the sampling and randomization error components.
    pub ci: ConfidenceInterval,
    /// The sampling component of the bound (diagnostics; Figure 4b).
    pub sampling_error: f64,
    /// The randomized-response component of the bound.
    pub rr_error: f64,
}

/// One window's query result delivered to the analyst.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Which query.
    pub query: QueryId,
    /// The event-time window.
    pub window: Window,
    /// Answers aggregated in this window (`U′`).
    pub sample_size: u64,
    /// Subscribed population (`U`).
    pub population: u64,
    /// Per-bucket estimates.
    pub buckets: Vec<BucketResult>,
    /// The privacy levels the parameters guarantee.
    pub privacy: PrivacyReport,
}

impl QueryResult {
    /// The estimated fraction of the population per bucket (clamped
    /// to `[0, 1]` for presentation).
    pub fn fractions(&self) -> Vec<f64> {
        if self.population == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|b| (b.estimate / self.population as f64).clamp(0.0, 1.0))
            .collect()
    }

    /// The widest relative confidence bound across buckets, used by
    /// the adaptive feedback loop.
    pub fn worst_relative_bound(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.ci.relative_bound())
            .fold(0.0, f64::max)
    }
}

type BoxedInit = Box<dyn Fn() -> BucketEstimator + Send>;
type BoxedFold = Box<dyn Fn(&mut BucketEstimator, &BitVec) + Send>;

/// A shared pool of recycled [`BucketEstimator`]s keyed by bucket
/// count. Every window *open* takes a warm estimator (resetting its
/// counts in place) instead of allocating `vec![0; buckets]`, and
/// every window *close* returns it after finalization — in steady
/// state the open/close cycle touches the heap not at all. The pool
/// is shared across every query registered on one aggregator, so
/// same-width queries amortize each other's windows.
type EstimatorPool = Arc<Mutex<HashMap<usize, Vec<BucketEstimator>>>>;

struct QueryState {
    params: ExecutionParams,
    population: u64,
    buckets: usize,
    windows: WindowedFold<BitVec, BucketEstimator, BoxedInit, BoxedFold>,
}

/// The aggregation endpoint.
pub struct Aggregator {
    consumer: Consumer,
    joiner: MidJoiner,
    queries: HashMap<QueryId, QueryState>,
    confidence: f64,
    /// Scratch `BitVec` every joined message decodes into; windows
    /// fold it by reference, so the steady-state drain loop performs
    /// no per-message allocation.
    answer_scratch: BitVec,
    /// Recycled estimators, shared with every query's window-open
    /// closure.
    estimator_pool: EstimatorPool,
    /// Scratch buffer closed windows drain into before finalization.
    closed_scratch: Vec<(Window, BucketEstimator)>,
    /// Reused poll batch: the drain loop performs no per-batch (let
    /// alone per-record) allocation in the broker hop — records are
    /// refcount clones, and the record's topic **index** is its
    /// source for the joiner's provenance tracking (the consumer
    /// subscribes to proxy outputs in proxy order).
    batch: Vec<(u32, u32, privapprox_stream::broker::Record)>,
    /// Recycled [`QueryResult`] shells (their `buckets` vectors keep
    /// their capacity), refilled by [`Aggregator::recycle_results`].
    spare_results: Vec<QueryResult>,
    /// Records that failed decode (malformed / corrupt shares).
    undecodable: u64,
    /// Decoded answers for unregistered queries.
    unroutable: u64,
    /// Quarantine sink for undecodable / unroutable records; when
    /// set, poisoned input is preserved for post-mortem instead of
    /// silently dropped.
    dead_letter: Option<TopicWriter>,
    /// Records written to the dead-letter topic.
    dead_lettered: u64,
}

impl Aggregator {
    /// Creates an aggregator consuming `n_proxies` proxy output
    /// topics on the broker, reporting intervals at `confidence`.
    pub fn new(broker: &Broker, n_proxies: usize, confidence: f64) -> Aggregator {
        assert!(n_proxies >= 2, "PrivApprox requires at least two proxies");
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        let topics: Vec<String> = (0..n_proxies)
            .map(|i| crate::proxy::outbound_topic(privapprox_types::ProxyId(i as u16)))
            .collect();
        let topic_refs: Vec<&str> = topics.iter().map(|s| s.as_str()).collect();
        // Subscribed in proxy order, so a record's topic index in the
        // poll batch *is* its source proxy index.
        let consumer = broker.consumer("aggregator", &topic_refs);
        Aggregator {
            consumer,
            joiner: MidJoiner::new(n_proxies, JOIN_TIMEOUT_MS),
            queries: HashMap::new(),
            confidence,
            answer_scratch: BitVec::zeros(0),
            estimator_pool: Arc::new(Mutex::new(HashMap::new())),
            closed_scratch: Vec::new(),
            batch: Vec::new(),
            spare_results: Vec::new(),
            undecodable: 0,
            unroutable: 0,
            dead_letter: None,
            dead_lettered: 0,
        }
    }

    /// Routes undecodable / unroutable records to a quarantine topic
    /// instead of dropping them. The writer's topic must have at
    /// least as many partitions as the proxy output topics; writes
    /// preserve the original key, payload and timestamp.
    pub fn set_dead_letter(&mut self, writer: TopicWriter) {
        self.dead_letter = Some(writer);
    }

    /// Registers a query so its answers can be windowed and estimated.
    pub fn register_query(
        &mut self,
        query: &privapprox_types::Query,
        params: ExecutionParams,
        population: u64,
    ) {
        let buckets = query.answer.len();
        let init: BoxedInit = {
            let (p, q) = (params.p.min(1.0), params.q);
            let pool = Arc::clone(&self.estimator_pool);
            Box::new(move || {
                // Window open: recycle a same-width estimator when the
                // pool has one, allocate only on a cold pool.
                match pool
                    .lock()
                    .expect("pool lock")
                    .get_mut(&buckets)
                    .and_then(Vec::pop)
                {
                    Some(mut est) => {
                        est.reset(p, q);
                        est
                    }
                    None => BucketEstimator::new(buckets, p, q),
                }
            })
        };
        let fold: BoxedFold = Box::new(move |est, v| est.push(v));
        self.queries.insert(
            query.id,
            QueryState {
                params,
                population,
                buckets,
                windows: WindowedFold::new(query.window, 0, init, fold),
            },
        );
    }

    /// Drains available proxy records, joining and decoding shares and
    /// feeding decoded answers into their query windows. Returns the
    /// number of fully decoded answers processed.
    pub fn pump(&mut self) -> u64 {
        self.pump_with(|_, _, _, _| {})
    }

    /// [`Aggregator::pump`] that parks instead of returning when the
    /// proxy streams are momentarily empty: blocks up to `timeout`
    /// for the first record, then drains everything available.
    /// Returns the number of fully decoded answers (`0` = timed out
    /// with nothing pending). Aggregator *threads* loop on this
    /// instead of sleep-spinning between empty polls.
    pub fn pump_blocking(&mut self, timeout: std::time::Duration) -> u64 {
        self.pump_blocking_with(timeout, |_, _, _, _| {})
    }

    /// [`Aggregator::pump_blocking`] with a tee over every decoded
    /// answer — the building block of the overlapped shard loop,
    /// which counts decodes **per epoch timestamp** to know when an
    /// epoch's expected in-flight messages have all arrived.
    pub fn pump_blocking_with<F>(&mut self, timeout: std::time::Duration, mut tee: F) -> u64
    where
        F: FnMut(QueryId, Timestamp, MessageId, &BitVec),
    {
        if self
            .consumer
            .poll_blocking_into(2048, timeout, &mut self.batch)
            == 0
        {
            return 0;
        }
        let mut decoded = self.process_batch(&mut tee);
        decoded += self.pump_with(tee);
        decoded
    }

    /// [`Aggregator::pump`] with a tee: every decoded answer is also
    /// handed to `tee` (used to feed the historical warehouse of
    /// §3.3.1 without a second decode pass).
    pub fn pump_with<F>(&mut self, mut tee: F) -> u64
    where
        F: FnMut(QueryId, Timestamp, MessageId, &BitVec),
    {
        let mut decoded_count = 0;
        loop {
            if self.consumer.poll_into(2048, &mut self.batch) == 0 {
                break;
            }
            decoded_count += self.process_batch(&mut tee);
        }
        decoded_count
    }

    /// Joins, decodes and windows the pending poll batch; returns how
    /// many answers completed.
    fn process_batch<F>(&mut self, tee: &mut F) -> u64
    where
        F: FnMut(QueryId, Timestamp, MessageId, &BitVec),
    {
        let mut decoded_count = 0;
        let mut quarantined = 0u64;
        // Move the batch out so its records can be consumed while the
        // joiner and windows borrow `self`; moved back (no realloc)
        // at the end.
        let mut batch = std::mem::take(&mut self.batch);
        for (source, partition, record) in batch.drain(..) {
            // Wire key layout (24 bytes): query tag (u64 BE) ‖ MID
            // (16 bytes). The tag routes shares to per-(query, shard)
            // join state *before* decode — concurrent queries draw
            // identical MID sequences per client (same-seed streams),
            // so a MID-only join would fuse shares across queries.
            let Some((qtag, mid)) = record.key.as_deref().and_then(|k| {
                let k = <[u8; 24]>::try_from(k).ok()?;
                let qtag = u64::from_be_bytes(k[..8].try_into().expect("8-byte slice"));
                let mid = MessageId::from_bytes(k[8..].try_into().expect("16-byte slice"));
                Some((qtag, mid))
            }) else {
                self.undecodable += 1;
                if let Some(w) = &self.dead_letter {
                    w.append_quiet(partition as usize, record.key, record.value, record.timestamp);
                    quarantined += 1;
                }
                continue;
            };
            let source = source as usize;
            match self
                .joiner
                .offer(qtag, mid, source, &record.value, record.timestamp)
            {
                JoinOutcome::Pending | JoinOutcome::Duplicate | JoinOutcome::Malformed => {}
                JoinOutcome::Complete(message) => {
                    // Decode into the scratch vector and fold it
                    // by reference; the joined buffer goes back to
                    // the joiner's pool. Nothing is allocated per
                    // message once the scratch buffers are warm.
                    let answer = &mut self.answer_scratch;
                    let mut poisoned = false;
                    match decode_answer_into(&message, answer) {
                        None => {
                            self.undecodable += 1;
                            poisoned = true;
                        }
                        // A decoded QID that disagrees with the key's
                        // query tag means the share was routed under
                        // the wrong join key — corrupt, not merely
                        // unregistered.
                        Some(qid) if qid.to_u64() != qtag => {
                            self.undecodable += 1;
                            poisoned = true;
                        }
                        Some(qid) => match self.queries.get_mut(&qid) {
                            None => {
                                self.unroutable += 1;
                                poisoned = true;
                            }
                            Some(state) if answer.len() == state.buckets => {
                                tee(qid, record.timestamp, mid, answer);
                                state.windows.push(record.timestamp, answer);
                                decoded_count += 1;
                            }
                            Some(_) => {
                                self.undecodable += 1;
                                poisoned = true;
                            }
                        },
                    }
                    if poisoned {
                        // Quarantine the share that completed the
                        // poisoned join — enough to recover the MID
                        // and inspect the payload post-mortem.
                        if let Some(w) = &self.dead_letter {
                            w.append_quiet(
                                partition as usize,
                                record.key,
                                record.value,
                                record.timestamp,
                            );
                            quarantined += 1;
                        }
                    }
                    self.joiner.recycle(message);
                }
            }
        }
        self.batch = batch;
        if quarantined > 0 {
            self.dead_lettered += quarantined;
            if let Some(w) = &self.dead_letter {
                w.notify();
            }
        }
        decoded_count
    }

    /// Advances event time, sweeping the joiner and emitting results
    /// for every window that closed.
    ///
    /// Allocating wrapper over
    /// [`Aggregator::advance_watermark_into`]; the returned results
    /// leave the shell pool for good, so steady-state callers should
    /// prefer the `_into` form plus [`Aggregator::recycle_results`].
    pub fn advance_watermark(&mut self, to: Timestamp) -> Vec<QueryResult> {
        let mut out = Vec::new();
        self.advance_watermark_into(to, &mut out);
        out
    }

    /// Advances event time, sweeping the joiner and *appending* a
    /// result for every window that closed to `out` (in window-start
    /// order, ties broken by query id).
    ///
    /// This is the allocation-free half of the window lifecycle: the
    /// closed windows drain into a reused scratch buffer, each
    /// estimator is finalized into a recycled [`QueryResult`] shell
    /// (its `buckets` vector keeps its capacity) and then returned to
    /// the estimator pool for the next window open. Once the pools
    /// are warm — after one full window cycle per registered query —
    /// a window close performs zero heap allocations (see
    /// `tests/alloc_steady_state.rs`).
    pub fn advance_watermark_into(&mut self, to: Timestamp, out: &mut Vec<QueryResult>) {
        self.joiner.sweep(to);
        let confidence = self.confidence;
        let start_len = out.len();
        for (qid, state) in self.queries.iter_mut() {
            state
                .windows
                .advance_watermark_into(to, &mut self.closed_scratch);
            for (window, mut est) in self.closed_scratch.drain(..) {
                let mut result = self.spare_results.pop().unwrap_or_else(result_shell);
                finalize_window_into(
                    &mut result,
                    *qid,
                    window,
                    &mut est,
                    state.params,
                    state.population,
                    confidence,
                );
                out.push(result);
                // Window close complete: the estimator goes back to
                // the pool for the next open of this width.
                self.estimator_pool
                    .lock()
                    .expect("pool lock")
                    .entry(est.buckets())
                    .or_default()
                    .push(est);
            }
        }
        out[start_len..].sort_unstable_by_key(|r| (r.window.start, r.query.to_u64()));
    }

    /// Returns consumed results to the shell pool so their buffers
    /// can back future window closes. Callers running the
    /// steady-state loop pair every [`Aggregator::advance_watermark_into`]
    /// with one `recycle_results` after reading the batch.
    pub fn recycle_results(&mut self, consumed: &mut Vec<QueryResult>) {
        self.spare_results.append(consumed);
    }

    /// Advances event time like
    /// [`Aggregator::advance_watermark_into`], but emits each closed
    /// window's **raw accumulated counts** instead of finalized
    /// estimates — the shard-local half of a sharded deployment:
    /// every shard closes its windows raw, a merge step sums the
    /// counts across shards ([`privapprox_rr::estimate::BucketEstimator::merge`])
    /// and [`finalize_window_into`] turns the merged counts into the
    /// *same* `QueryResult` a single aggregator would have produced
    /// (estimation is a pure function of the counts).
    ///
    /// The emitted estimators leave this aggregator's pool; return
    /// them with [`Aggregator::release_estimator`] once merged so the
    /// per-shard steady state stays allocation-free. Output is
    /// appended in (window start, query id) order.
    pub fn advance_watermark_raw_into(&mut self, to: Timestamp, out: &mut Vec<RawWindow>) {
        self.joiner.sweep(to);
        let start_len = out.len();
        for (qid, state) in self.queries.iter_mut() {
            state
                .windows
                .advance_watermark_into(to, &mut self.closed_scratch);
            for (window, est) in self.closed_scratch.drain(..) {
                out.push(RawWindow {
                    query: *qid,
                    window,
                    estimator: est,
                });
            }
        }
        out[start_len..].sort_unstable_by_key(|r| (r.window.start, r.query.to_u64()));
    }

    /// Returns an estimator to the open-window pool — the raw-window
    /// counterpart of the recycling
    /// [`Aggregator::advance_watermark_into`] performs internally.
    /// Estimators are interchangeable within a bucket width, so a
    /// merge step may hand back any same-width estimator, not
    /// necessarily the exact instance this aggregator emitted.
    pub fn release_estimator(&mut self, est: BucketEstimator) {
        self.estimator_pool
            .lock()
            .expect("pool lock")
            .entry(est.buckets())
            .or_default()
            .push(est);
    }

    /// Count of records that failed share/answer decoding.
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// Count of decoded answers with no registered query.
    pub fn unroutable(&self) -> u64 {
        self.unroutable
    }

    /// Records quarantined to the dead-letter topic (0 unless
    /// [`Aggregator::set_dead_letter`] was called).
    pub fn dead_lettered(&self) -> u64 {
        self.dead_lettered
    }

    /// Decoded answers that arrived behind the watermark and were
    /// dropped by window assignment, summed over registered queries.
    pub fn late_events(&self) -> u64 {
        self.queries.values().map(|s| s.windows.late_events()).sum()
    }

    /// Joiner-level duplicate rejections (adversarial repeats).
    pub fn duplicates(&self) -> u64 {
        self.joiner.duplicates()
    }

    /// Incomplete share groups evicted so far.
    pub fn expired_joins(&self) -> u64 {
        self.joiner.expired()
    }
}

/// One shard-local closed window *before* estimation: the query it
/// belongs to, its event-time bounds, and the accumulated randomized
/// counts. Produced by [`Aggregator::advance_watermark_raw_into`];
/// consumed by a cross-shard merge that sums sibling counts and
/// finalizes once via [`finalize_window_into`].
#[derive(Debug)]
pub struct RawWindow {
    /// Which query the window belongs to.
    pub query: QueryId,
    /// The event-time window.
    pub window: Window,
    /// The shard-local accumulated counts.
    pub estimator: BucketEstimator,
}

/// A blank [`QueryResult`] shell for the recycling pool; every field
/// is overwritten by [`finalize_window_into`].
fn result_shell() -> QueryResult {
    QueryResult {
        query: QueryId::new(AnalystId(0), 0),
        window: Window::of(Timestamp(0), 0),
        sample_size: 0,
        population: 0,
        buckets: Vec::new(),
        privacy: PrivacyReport::for_params(1.0, 0.9, 0.5),
    }
}

impl QueryResult {
    /// A blank shell for recycling pools: every field is overwritten
    /// by [`finalize_window_into`], and the `buckets` vector keeps
    /// whatever capacity it accumulates across reuses. Merge steps
    /// outside the aggregator (the sharded deployment's result
    /// assembly) pool these the same way the aggregator pools its
    /// internal shells.
    pub fn shell() -> QueryResult {
        result_shell()
    }
}

/// Writes a closed window's accumulated counts into a recycled
/// [`QueryResult`] shell (the `buckets` vector keeps its capacity
/// across windows).
///
/// Estimation (Equations 2–5 plus both error bounds) is a **pure
/// function** of the accumulated counts and the query's parameters —
/// which is the keystone of sharded-vs-single-threaded equivalence:
/// summing shard-local counts and finalizing once is bit-identical to
/// finalizing a single aggregator's counts, so `ShardedSystem` calls
/// this exact function over merged [`RawWindow`]s.
pub fn finalize_window_into(
    out: &mut QueryResult,
    query: QueryId,
    window: Window,
    est: &mut BucketEstimator,
    params: ExecutionParams,
    population: u64,
    confidence: f64,
) {
    let n = est.total();
    let u = population as f64;
    let scale = if n > 0 { u / n as f64 } else { 0.0 };
    let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
    // The Student-t critical value depends only on (confidence, n),
    // both fixed for the whole window — hoisted out of the per-bucket
    // loop because its root-finding is the single most expensive step
    // of a close at wide answers (a 10⁴-bucket window close dropped
    // from ~hundreds of ms to sub-ms when this stopped being
    // re-derived per bucket).
    let t_crit = if n >= 2 && n < population {
        t_critical(confidence, (n - 1) as f64)
    } else {
        0.0
    };
    out.query = query;
    out.window = window;
    out.sample_size = n;
    out.population = population;
    out.privacy = PrivacyReport::for_params(params.s, params.p, params.q);
    out.buckets.clear();
    out.buckets.extend(est.raw_counts().iter().map(|&ry| {
        let e_sample = if n > 0 {
            if params.p >= 1.0 {
                ry as f64
            } else {
                estimate_true_yes(ry, n, params.p, params.q)
            }
        } else {
            0.0
        };
        let estimate = e_sample * scale;
        // Randomization error: normal bound on Eq 5's variance,
        // scaled to the population like the estimate itself.
        let rr_error = if n > 0 && params.p < 1.0 {
            z * rr_estimator_variance(ry, n, params.p).sqrt() * scale
        } else {
            0.0
        };
        // Sampling error: Equations 3–4 with the Bernoulli
        // plug-in variance of the estimated truthful rate.
        let sampling_error = if n >= 2 && n < population {
            let r = (e_sample / n as f64).clamp(0.0, 1.0);
            let sigma2 = r * (1.0 - r) * n as f64 / (n as f64 - 1.0);
            let var = u * u / n as f64 * sigma2 * ((u - n as f64).max(0.0) / u);
            t_crit * var.sqrt()
        } else if n < 2 && population > 0 {
            f64::INFINITY
        } else {
            0.0
        };
        BucketResult {
            raw_yes: ry,
            estimate_sample: e_sample,
            estimate,
            ci: ConfidenceInterval {
                estimate,
                bound: sampling_error + rr_error,
                confidence,
            },
            sampling_error,
            rr_error,
        }
    }));
}

/// Empirically calibrates the accuracy loss of the randomized-response
/// stage, as §3.2.4 prescribes: "we run several micro-benchmarks at
/// the beginning of the query answering process (without performing
/// the sampling process) to estimate the accuracy loss caused by
/// randomized response."
///
/// Returns the mean relative loss η over `trials` synthetic runs of
/// `n` answers with the hinted yes-rate.
pub fn calibrate_rr_loss<R: Rng + ?Sized>(
    p: f64,
    q: f64,
    n: u64,
    yes_rate_hint: f64,
    trials: u32,
    rng: &mut R,
) -> f64 {
    assert!(trials > 0 && n > 0);
    if p >= 1.0 {
        return 0.0;
    }
    let randomizer = Randomizer::new(p, q);
    let ay = (yes_rate_hint * n as f64).round().max(1.0) as u64;
    let mut total = 0.0;
    for _ in 0..trials {
        let ry = (0..n)
            .filter(|&i| randomizer.randomize_bit(i < ay, rng))
            .count() as u64;
        let ey = estimate_true_yes(ry, n, p, q);
        total += ((ey - ay as f64) / ay as f64).abs();
    }
    total / trials as f64
}

/// Convenience used by benches: the expected number of participants
/// when `population` clients each flip a coin with bias `s`.
pub fn expected_sample_size(population: u64, s: f64) -> u64 {
    let _ = ParticipationCoin::new(s); // range validation
    (population as f64 * s).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::proxy::{inbound_topic, Proxy};
    use privapprox_crypto::xor::wire_key;
    use privapprox_sql::{ColumnType, Schema, Value};
    use privapprox_types::ids::AnalystId;
    use privapprox_types::{AnswerSpec, ClientId, ProxyId, Query, QueryBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const KEY: u64 = 0xBEE;

    fn test_query(window_ms: u64) -> Query {
        QueryBuilder::new(QueryId::new(AnalystId(9), 1), "SELECT v FROM data")
            .answer(AnswerSpec::ranges_with_overflow(0.0, 10.0, 10))
            .window(window_ms, window_ms)
            .sign_and_build(KEY)
    }

    fn make_client(i: u64, value: f64) -> Client {
        let mut c = Client::new(ClientId(i), 1000 + i, KEY);
        c.db_mut()
            .create_table("data", Schema::new(vec![("v", ColumnType::Float)]));
        c.db_mut()
            .insert("data", vec![Value::Float(value)])
            .unwrap();
        c
    }

    /// Runs `population` clients through proxies into the aggregator
    /// within one window; returns the emitted result.
    fn run_once(params: ExecutionParams, population: u64) -> QueryResult {
        let broker = privapprox_stream::broker::Broker::new(2);
        let query = test_query(1_000);
        let producer = broker.producer();
        let mut proxies: Vec<Proxy> = (0..2).map(|i| Proxy::new(ProxyId(i), &broker)).collect();
        let mut agg = Aggregator::new(&broker, 2, 0.95);
        agg.register_query(&query, params, population);

        for i in 0..population {
            // Half the clients hold value 2.5 (bucket 2), half 7.5
            // (bucket 7).
            let value = if i % 2 == 0 { 2.5 } else { 7.5 };
            let mut client = make_client(i, value);
            if let Some(answer) = client.answer_query(&query, &params, 2).unwrap() {
                for (pi, share) in answer.shares.iter().enumerate() {
                    producer.send(
                        &inbound_topic(ProxyId(pi as u16)),
                        Some(wire_key(query.id, share.mid).to_vec()),
                        &share.payload[..],
                        Timestamp(500),
                    );
                }
            }
        }
        for p in &mut proxies {
            p.pump();
        }
        agg.pump();
        let mut results = agg.advance_watermark(Timestamp(2_000));
        assert_eq!(results.len(), 1, "exactly one window should close");
        results.pop().unwrap()
    }

    #[test]
    fn exact_mode_recovers_the_histogram() {
        // s = 1, p = 1: no approximation at all — counts are exact.
        let result = run_once(ExecutionParams::checked(1.0, 1.0, 0.5), 100);
        assert_eq!(result.sample_size, 100);
        assert_eq!(result.buckets[2].raw_yes, 50);
        assert_eq!(result.buckets[7].raw_yes, 50);
        assert_eq!(result.buckets[2].estimate, 50.0);
        assert_eq!(result.buckets[0].estimate, 0.0);
        assert_eq!(result.buckets[2].ci.bound, 0.0, "census + truth = exact");
        assert!(result.privacy.eps_zk.is_infinite(), "p = 1 has no privacy");
    }

    #[test]
    fn randomized_mode_estimates_within_tolerance() {
        let result = run_once(ExecutionParams::checked(1.0, 0.8, 0.5), 2_000);
        assert_eq!(result.sample_size, 2_000);
        let est2 = result.buckets[2].estimate;
        let est7 = result.buckets[7].estimate;
        assert!((est2 - 1_000.0).abs() < 120.0, "bucket2 {est2}");
        assert!((est7 - 1_000.0).abs() < 120.0, "bucket7 {est7}");
        // Empty buckets estimate near zero.
        assert!(result.buckets[0].estimate.abs() < 120.0);
        // CI bounds are positive and finite, and the truth is inside.
        assert!(result.buckets[2].ci.bound.is_finite());
        assert!(result.buckets[2].ci.contains(1_000.0));
        assert!(result.privacy.eps_zk.is_finite());
    }

    #[test]
    fn sampled_mode_scales_to_the_population() {
        let result = run_once(ExecutionParams::checked(0.5, 1.0, 0.5), 2_000);
        // About half participate.
        assert!(
            (result.sample_size as f64 - 1_000.0).abs() < 150.0,
            "sample {}",
            result.sample_size
        );
        // Estimates scale back to the full population.
        let est2 = result.buckets[2].estimate;
        assert!((est2 - 1_000.0).abs() < 150.0, "bucket2 {est2}");
        // Sampling error is the only component.
        assert!(result.buckets[2].sampling_error > 0.0);
        assert_eq!(result.buckets[2].rr_error, 0.0);
    }

    #[test]
    fn combined_mode_sums_both_error_components() {
        let result = run_once(ExecutionParams::checked(0.6, 0.6, 0.6), 2_000);
        let b = &result.buckets[2];
        assert!(b.sampling_error > 0.0);
        assert!(b.rr_error > 0.0);
        assert!((b.ci.bound - (b.sampling_error + b.rr_error)).abs() < 1e-9);
        assert!(b.ci.contains(1_000.0), "CI {} should cover 1000", b.ci);
    }

    #[test]
    fn fractions_are_clamped_and_normalized_shape() {
        let result = run_once(ExecutionParams::checked(1.0, 0.9, 0.5), 1_000);
        let fr = result.fractions();
        assert_eq!(fr.len(), 11);
        assert!(fr.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!((fr[2] - 0.5).abs() < 0.1);
    }

    #[test]
    fn results_windows_split_by_event_time() {
        // Two windows of 1s; answers land in both.
        let broker = privapprox_stream::broker::Broker::new(2);
        let query = test_query(1_000);
        let producer = broker.producer();
        let mut proxies: Vec<Proxy> = (0..2).map(|i| Proxy::new(ProxyId(i), &broker)).collect();
        let mut agg = Aggregator::new(&broker, 2, 0.95);
        let params = ExecutionParams::checked(1.0, 1.0, 0.5);
        agg.register_query(&query, params, 10);

        for (i, ts) in [(0u64, 100u64), (1, 300), (2, 1_500)] {
            let mut client = make_client(i, 2.5);
            let answer = client.answer_query(&query, &params, 2).unwrap().unwrap();
            for (pi, share) in answer.shares.iter().enumerate() {
                producer.send(
                    &inbound_topic(ProxyId(pi as u16)),
                    Some(wire_key(query.id, share.mid).to_vec()),
                    &share.payload[..],
                    Timestamp(ts),
                );
            }
        }
        for p in &mut proxies {
            p.pump();
        }
        agg.pump();
        let results = agg.advance_watermark(Timestamp(3_000));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].sample_size, 2);
        assert_eq!(results[1].sample_size, 1);
        assert!(results[0].window.start < results[1].window.start);
    }

    #[test]
    fn estimator_pool_reuse_stays_correct_across_window_cycles() {
        // Three full window cycles through the recycled-shell API:
        // every cycle's estimator comes from the pool after the
        // first, and every cycle's result must be freshly counted
        // (a stale estimator would inflate the counts).
        let broker = privapprox_stream::broker::Broker::new(2);
        let query = test_query(1_000);
        let producer = broker.producer();
        let mut proxies: Vec<Proxy> = (0..2).map(|i| Proxy::new(ProxyId(i), &broker)).collect();
        let mut agg = Aggregator::new(&broker, 2, 0.95);
        let params = ExecutionParams::checked(1.0, 1.0, 0.5);
        agg.register_query(&query, params, 10);

        let mut results: Vec<QueryResult> = Vec::new();
        for cycle in 0u64..4 {
            let n_answers = cycle + 1; // distinct per cycle
            for i in 0..n_answers {
                let mut client = make_client(100 * cycle + i, 2.5);
                let answer = client.answer_query(&query, &params, 2).unwrap().unwrap();
                for (pi, share) in answer.shares.iter().enumerate() {
                    producer.send(
                        &inbound_topic(ProxyId(pi as u16)),
                        Some(wire_key(query.id, share.mid).to_vec()),
                        &share.payload[..],
                        Timestamp(cycle * 1_000 + 500),
                    );
                }
            }
            for p in &mut proxies {
                p.pump();
            }
            agg.pump();
            agg.advance_watermark_into(Timestamp((cycle + 1) * 1_000), &mut results);
            assert_eq!(results.len(), 1, "cycle {cycle}");
            let r = &results[0];
            assert_eq!(r.sample_size, n_answers, "cycle {cycle}");
            assert_eq!(r.buckets[2].raw_yes, n_answers, "cycle {cycle}");
            assert!(r
                .buckets
                .iter()
                .enumerate()
                .all(|(b, br)| b == 2 || br.raw_yes == 0));
            agg.recycle_results(&mut results);
            assert!(results.is_empty(), "recycling drains the batch");
        }
    }

    #[test]
    fn corrupt_records_are_counted_not_crashing() {
        let broker = privapprox_stream::broker::Broker::new(2);
        let query = test_query(1_000);
        let mut agg = Aggregator::new(&broker, 2, 0.95);
        agg.register_query(&query, ExecutionParams::checked(1.0, 0.9, 0.5), 10);
        let producer = broker.producer();
        // Record with a short key (no MID).
        producer.send(
            "proxy-0-out",
            Some(vec![1, 2, 3]),
            vec![0; 13],
            Timestamp(0),
        );
        // A pair of "shares" under a well-formed 24-byte key that
        // joins to garbage (decode failure, not key failure).
        let key = wire_key(query.id, MessageId(77)).to_vec();
        producer.send(
            "proxy-0-out",
            Some(key.clone()),
            vec![0xAB; 13],
            Timestamp(0),
        );
        producer.send("proxy-1-out", Some(key), vec![0xCD; 13], Timestamp(0));
        agg.pump();
        assert_eq!(agg.undecodable(), 2);
        // No valid answer ever arrived, so no window opened at all.
        let results = agg.advance_watermark(Timestamp(5_000));
        assert!(results.is_empty());
    }

    #[test]
    fn calibration_matches_table1_scale() {
        // Table 1 reports η ≈ 0.0128 for p = q = 0.6 at N = 10⁴ with
        // 60 % yes answers. Accept a generous band — it is a Monte
        // Carlo quantity.
        let mut rng = StdRng::seed_from_u64(5);
        let loss = calibrate_rr_loss(0.6, 0.6, 10_000, 0.6, 20, &mut rng);
        assert!(
            loss > 0.004 && loss < 0.03,
            "calibrated loss {loss} outside the Table 1 ballpark"
        );
    }

    #[test]
    fn expected_sample_size_rounds() {
        assert_eq!(expected_sample_size(1_000, 0.6), 600);
        assert_eq!(expected_sample_size(3, 0.5), 2);
    }
}

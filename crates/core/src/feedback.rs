//! The adaptive feedback loop (paper §5).
//!
//! "If the error exceeds the error bound target, a feedback mechanism
//! is activated to re-tune the sampling and randomization parameters
//! to provide higher utility in the subsequent epochs." The controller
//! below is a damped multiplicative-increase rule on the sampling
//! fraction: error variance shrinks like `1/U′`, so the relative bound
//! shrinks like `1/√(s)`; to cut the bound by a factor `r` the
//! fraction must grow by `r²`. When even `s = 1` cannot meet the
//! target, the controller raises `p` (trading privacy for utility) as
//! a second, explicit stage.

use privapprox_types::ExecutionParams;

/// Damped controller re-tuning `(s, p)` from observed error.
#[derive(Debug, Clone)]
pub struct FeedbackController {
    target_rel_error: f64,
    /// Damping in (0, 1]: 1 jumps straight to the model's answer.
    gain: f64,
    /// Hard privacy stop: `p` never exceeds this.
    max_p: f64,
}

impl FeedbackController {
    /// Creates a controller aiming at `target_rel_error` with damping
    /// `gain` and a privacy stop at `max_p`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range arguments.
    pub fn new(target_rel_error: f64, gain: f64, max_p: f64) -> FeedbackController {
        assert!(target_rel_error > 0.0, "target error must be positive");
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0,1]");
        assert!(max_p > 0.0 && max_p < 1.0, "max_p must be in (0,1)");
        FeedbackController {
            target_rel_error,
            gain,
            max_p,
        }
    }

    /// The error target.
    pub fn target(&self) -> f64 {
        self.target_rel_error
    }

    /// Computes next-epoch parameters from the observed relative
    /// error bound of the last window.
    ///
    /// Returns the (possibly unchanged) parameters and whether a
    /// change was made.
    pub fn retune(
        &self,
        current: ExecutionParams,
        observed_rel_error: f64,
    ) -> (ExecutionParams, bool) {
        if !observed_rel_error.is_finite() {
            // Degenerate window (too few answers): jump to full
            // sampling, the strongest corrective available.
            let next = ExecutionParams::checked(1.0, current.p, current.q);
            return (next, next != current);
        }
        let ratio = observed_rel_error / self.target_rel_error;
        if ratio <= 1.0 {
            // Within budget: decay s gently toward the cheapest
            // setting that still meets the target (ratio² model),
            // never below half the model's answer per epoch.
            let ideal = (current.s * ratio * ratio).max(current.s * 0.5);
            let next_s = (current.s + self.gain * (ideal - current.s)).clamp(0.01, 1.0);
            let next = ExecutionParams::checked(next_s, current.p, current.q);
            let changed = (next.s - current.s).abs() > 1e-6;
            return (next, changed);
        }
        // Over budget: grow s by ratio² (damped).
        let ideal_s = (current.s * ratio * ratio).min(1.0);
        let next_s = (current.s + self.gain * (ideal_s - current.s)).clamp(0.01, 1.0);
        if next_s < 1.0 - 1e-9 || current.s < 1.0 - 1e-9 {
            let next = ExecutionParams::checked(next_s, current.p, current.q);
            return (next, true);
        }
        // Already at full sampling: raise p toward the privacy stop.
        let next_p = (current.p + self.gain * (self.max_p - current.p)).min(self.max_p);
        let next = ExecutionParams::checked(1.0, next_p, current.q);
        let changed = (next.p - current.p).abs() > 1e-9;
        (next, changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(s: f64, p: f64) -> ExecutionParams {
        ExecutionParams::checked(s, p, 0.6)
    }

    #[test]
    fn error_over_target_grows_sampling() {
        let c = FeedbackController::new(0.05, 1.0, 0.95);
        let (next, changed) = c.retune(params(0.2, 0.9), 0.10);
        assert!(changed);
        // ratio = 2 → ideal s = 0.8.
        assert!((next.s - 0.8).abs() < 1e-9, "s = {}", next.s);
        assert_eq!(next.p, 0.9, "p untouched while s can still grow");
    }

    #[test]
    fn damping_softens_the_jump() {
        let c = FeedbackController::new(0.05, 0.5, 0.95);
        let (next, _) = c.retune(params(0.2, 0.9), 0.10);
        // Half-way between 0.2 and 0.8.
        assert!((next.s - 0.5).abs() < 1e-9, "s = {}", next.s);
    }

    #[test]
    fn error_within_target_relaxes_sampling() {
        let c = FeedbackController::new(0.05, 1.0, 0.95);
        let (next, changed) = c.retune(params(0.8, 0.9), 0.01);
        assert!(changed);
        assert!(next.s < 0.8, "s should decay, got {}", next.s);
        assert!(next.s >= 0.4, "decay is bounded per epoch");
    }

    #[test]
    fn saturated_sampling_escalates_to_p() {
        let c = FeedbackController::new(0.05, 1.0, 0.95);
        let (next, changed) = c.retune(params(1.0, 0.6), 0.2);
        assert!(changed);
        assert_eq!(next.s, 1.0);
        assert!((next.p - 0.95).abs() < 1e-9, "p = {}", next.p);
    }

    #[test]
    fn p_never_exceeds_the_privacy_stop() {
        let c = FeedbackController::new(0.05, 1.0, 0.95);
        let (next, changed) = c.retune(params(1.0, 0.95), 0.5);
        assert!(!changed, "at the stop, nothing more to give");
        assert_eq!(next.p, 0.95);
    }

    #[test]
    fn infinite_error_jumps_to_full_sampling() {
        let c = FeedbackController::new(0.05, 0.3, 0.95);
        let (next, changed) = c.retune(params(0.05, 0.9), f64::INFINITY);
        assert!(changed);
        assert_eq!(next.s, 1.0);
    }

    #[test]
    fn convergence_under_the_sqrt_model() {
        // Simulate the 1/√(s·U) error model: err(s) = k/√s with
        // k chosen so the target needs s ≈ 0.64.
        let c = FeedbackController::new(0.05, 0.7, 0.95);
        let mut p = params(0.05, 0.9);
        let k = 0.04; // err(1.0) = 0.04 < target
        for _ in 0..30 {
            let err = k / p.s.sqrt();
            let (next, _) = c.retune(p, err);
            p = next;
        }
        let final_err = k / p.s.sqrt();
        assert!(
            final_err <= 0.05 * 1.1,
            "converged error {final_err} misses target"
        );
        assert!(p.s < 0.95, "should not overshoot to census, s = {}", p.s);
    }
}

//! Historical (batch) analytics over stored responses (paper §3.3.1).
//!
//! "The analyst can analyze users' responses stored in a fault-tolerant
//! distributed storage (e.g., HDFS) at the aggregator to get the
//! aggregate query result over the desired time period … we can
//! perform an additional round of sampling at the aggregator to ensure
//! that the batch analytics computation remains within the query
//! budget."
//!
//! The warehouse stores *randomized* answers only — the aggregator
//! never sees truthful data, so at-rest storage inherits the streaming
//! pipeline's privacy guarantees. Batch queries re-sample the stored
//! stream with a reservoir, then run the same Equation 5 + Equation 2
//! estimation with the combined two-stage scaling.

use crate::aggregator::{BucketResult, QueryResult};
use privapprox_rr::estimate::{estimate_true_yes, rr_estimator_variance, BucketEstimator};
use privapprox_rr::privacy::PrivacyReport;
use privapprox_sampling::reservoir::Reservoir;
use privapprox_stats::estimate::ConfidenceInterval;
use privapprox_stats::normal::normal_quantile;
use privapprox_stats::tdist::t_critical;
use privapprox_types::{BitVec, ExecutionParams, MessageId, QueryId, Timestamp, Window};
use rand::Rng;
use std::collections::BTreeMap;

/// A stored randomized answer.
#[derive(Debug, Clone)]
struct StoredAnswer {
    answer: BitVec,
}

/// The append-only response warehouse for one query.
pub struct Warehouse {
    query: QueryId,
    buckets: usize,
    params: ExecutionParams,
    population: u64,
    /// Time-ordered storage keyed by `(timestamp, MID)`. MIDs are
    /// unique per message and deterministic per client RNG stream, so
    /// the iteration order — and therefore every reservoir draw in
    /// [`Warehouse::batch_query`] — is canonical regardless of the
    /// arrival interleaving that fed the warehouse (threaded shards
    /// deliver answers in nondeterministic order; a sequence-number
    /// key would leak that nondeterminism into batch results).
    store: BTreeMap<(Timestamp, u128), StoredAnswer>,
}

impl Warehouse {
    /// Creates a warehouse for a query's randomized answers.
    pub fn new(
        query: QueryId,
        buckets: usize,
        params: ExecutionParams,
        population: u64,
    ) -> Warehouse {
        assert!(buckets > 0);
        Warehouse {
            query,
            buckets,
            params,
            population,
            store: BTreeMap::new(),
        }
    }

    /// Appends the randomized answer of message `mid` observed at
    /// `ts`. Re-appending the same `(ts, mid)` pair overwrites — the
    /// joiner already rejects duplicate shares, so a repeat here is a
    /// replay of the identical answer.
    ///
    /// # Panics
    ///
    /// Panics on a width mismatch (the streaming pipeline validates
    /// widths before storage).
    pub fn append(&mut self, ts: Timestamp, mid: MessageId, answer: BitVec) {
        assert_eq!(answer.len(), self.buckets, "answer width mismatch");
        self.store.insert((ts, mid.0), StoredAnswer { answer });
    }

    /// Number of stored answers.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Runs a batch query over `[range.start, range.end)`, re-sampling
    /// down to at most `batch_budget` stored answers (the §3.3.1
    /// second sampling round). `rng` drives the reservoir.
    pub fn batch_query<R: Rng + ?Sized>(
        &self,
        range: Window,
        batch_budget: usize,
        confidence: f64,
        rng: &mut R,
    ) -> QueryResult {
        let mut est = BucketEstimator::new(self.buckets, self.params.p.min(1.0), self.params.q);
        self.batch_query_with(&mut est, range, batch_budget, confidence, rng)
    }

    /// [`Warehouse::batch_query`] through a caller-owned (typically
    /// pool-recycled) estimator. The estimator is unconditionally
    /// re-initialized before any answer is counted: a recycled
    /// estimator arrives dirty with another query's window counts, and
    /// any surviving count would silently bias the historical answer
    /// (the `multi_query` suite pins this with a regression test
    /// against the PR-2 pooled window lifecycle).
    pub fn batch_query_with<R: Rng + ?Sized>(
        &self,
        est: &mut BucketEstimator,
        range: Window,
        batch_budget: usize,
        confidence: f64,
        rng: &mut R,
    ) -> QueryResult {
        assert!(batch_budget > 0, "batch budget must be positive");
        if est.buckets() == self.buckets {
            est.reset(self.params.p.min(1.0), self.params.q);
        } else {
            *est = BucketEstimator::new(self.buckets, self.params.p.min(1.0), self.params.q);
        }
        // Pass 1: count the in-range stored answers (the batch
        // population) while reservoir-sampling them.
        let mut reservoir: Reservoir<&StoredAnswer> = Reservoir::new(batch_budget);
        let mut in_range: u64 = 0;
        for ((ts, _), stored) in &self.store {
            if range.contains(*ts) {
                in_range += 1;
                reservoir.offer(stored, rng);
            }
        }
        for stored in reservoir.sample() {
            est.push(&stored.answer);
        }
        let m = est.total(); // second-stage sample size
                             // Two-stage scaling: stored answers already represent
                             // `population` clients through the client-side fraction; the
                             // reservoir keeps m of the `in_range` stored answers.
        let stage2_scale = if m > 0 {
            in_range as f64 / m as f64
        } else {
            0.0
        };
        let stage1_scale = if in_range > 0 {
            self.population as f64 / in_range as f64
        } else {
            0.0
        };
        let scale = stage1_scale * stage2_scale; // = population / m
        let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
        let u = self.population as f64;
        let buckets = est
            .raw_counts()
            .iter()
            .map(|&ry| {
                let e_sample = if m > 0 {
                    if self.params.p >= 1.0 {
                        ry as f64
                    } else {
                        estimate_true_yes(ry, m, self.params.p, self.params.q)
                    }
                } else {
                    0.0
                };
                let estimate = e_sample * scale;
                let rr_error = if m > 0 && self.params.p < 1.0 {
                    z * rr_estimator_variance(ry, m, self.params.p).sqrt() * scale
                } else {
                    0.0
                };
                let sampling_error = if m >= 2 && (m as f64) < u {
                    let r = (e_sample / m as f64).clamp(0.0, 1.0);
                    let sigma2 = r * (1.0 - r) * m as f64 / (m as f64 - 1.0);
                    let var = u * u / m as f64 * sigma2 * ((u - m as f64).max(0.0) / u);
                    t_critical(confidence, (m - 1) as f64) * var.sqrt()
                } else if m < 2 && self.population > 0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                BucketResult {
                    raw_yes: ry,
                    estimate_sample: e_sample,
                    estimate,
                    ci: ConfidenceInterval {
                        estimate,
                        bound: sampling_error + rr_error,
                        confidence,
                    },
                    sampling_error,
                    rr_error,
                }
            })
            .collect();
        QueryResult {
            query: self.query,
            window: range,
            sample_size: m,
            population: self.population,
            buckets,
            privacy: PrivacyReport::for_params(self.params.s, self.params.p, self.params.q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privapprox_types::ids::AnalystId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn qid() -> QueryId {
        QueryId::new(AnalystId(1), 1)
    }

    fn fill_warehouse(p: f64) -> Warehouse {
        // 10,000 answers over timestamps 0..10_000: bucket 0 for the
        // first 60 %, bucket 1 for the rest. Randomization applied
        // per `p` (q = 0.5).
        let params = ExecutionParams::checked(1.0, p, 0.5);
        let mut w = Warehouse::new(qid(), 2, params, 10_000);
        let mut rng = StdRng::seed_from_u64(11);
        let randomizer = privapprox_rr::randomize::Randomizer::new(p.min(0.999_999), 0.5);
        for i in 0..10_000u64 {
            let truth = BitVec::one_hot(2, if i % 10 < 6 { 0 } else { 1 });
            let stored = if p >= 1.0 {
                truth
            } else {
                randomizer.randomize_vec(&truth, &mut rng)
            };
            w.append(Timestamp(i), MessageId(i as u128), stored);
        }
        w
    }

    #[test]
    fn full_range_census_recovers_counts() {
        let w = fill_warehouse(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let r = w.batch_query(Window::of(Timestamp(0), 10_000), 10_000, 0.95, &mut rng);
        assert_eq!(r.sample_size, 10_000);
        assert_eq!(r.buckets[0].estimate, 6_000.0);
        assert_eq!(r.buckets[1].estimate, 4_000.0);
    }

    #[test]
    fn budgeted_batch_estimates_with_bounded_error() {
        let w = fill_warehouse(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        // Second-round sampling down to 1,000 of 10,000.
        let r = w.batch_query(Window::of(Timestamp(0), 10_000), 1_000, 0.95, &mut rng);
        assert_eq!(r.sample_size, 1_000);
        let est = r.buckets[0].estimate;
        assert!((est - 6_000.0).abs() < 400.0, "estimate {est}");
        assert!(r.buckets[0].ci.contains(6_000.0));
        assert!(r.buckets[0].sampling_error > 0.0);
    }

    #[test]
    fn randomized_storage_still_estimates() {
        let w = fill_warehouse(0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let r = w.batch_query(Window::of(Timestamp(0), 10_000), 2_000, 0.95, &mut rng);
        let est = r.buckets[0].estimate;
        assert!((est - 6_000.0).abs() < 600.0, "estimate {est}");
        assert!(r.buckets[0].rr_error > 0.0);
        assert!(r.privacy.eps_zk.is_finite());
    }

    #[test]
    fn time_range_restricts_the_population() {
        let w = fill_warehouse(1.0);
        let mut rng = StdRng::seed_from_u64(4);
        // Only the first 1,000 timestamps.
        let r = w.batch_query(Window::of(Timestamp(0), 1_000), 10_000, 0.95, &mut rng);
        assert_eq!(r.sample_size, 1_000);
        // Estimates scale to the full population (10,000) from the
        // range's 1,000 stored answers.
        let total: f64 = r.buckets.iter().map(|b| b.estimate).sum();
        assert!((total - 10_000.0).abs() < 1.0, "total {total}");
    }

    #[test]
    fn empty_range_yields_zero_sample() {
        let w = fill_warehouse(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let r = w.batch_query(Window::of(Timestamp(1_000_000), 10), 100, 0.95, &mut rng);
        assert_eq!(r.sample_size, 0);
        assert!(r.buckets.iter().all(|b| b.estimate == 0.0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut w = fill_warehouse(1.0);
        w.append(Timestamp(0), MessageId(1), BitVec::zeros(5));
    }
}

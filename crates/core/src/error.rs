//! Errors surfaced by the PrivApprox system layer.

use privapprox_sql::SqlError;
use privapprox_types::budget::ParamError;

/// System-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The client's local SQL execution failed.
    Sql(SqlError),
    /// Execution parameters were out of range.
    Params(ParamError),
    /// The query's signature did not verify at the client.
    BadSignature,
    /// A query referenced an unknown query id.
    UnknownQuery,
    /// The answer column could not be bucketized (no matching bucket).
    Unbucketizable(String),
    /// The budget cannot be met (e.g. latency target below the
    /// per-answer floor even at the minimum sampling fraction).
    InfeasibleBudget(String),
}

impl From<SqlError> for CoreError {
    fn from(e: SqlError) -> CoreError {
        CoreError::Sql(e)
    }
}

impl From<ParamError> for CoreError {
    fn from(e: ParamError) -> CoreError {
        CoreError::Params(e)
    }
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Sql(e) => write!(f, "client SQL error: {e}"),
            CoreError::Params(e) => write!(f, "parameter error: {e}"),
            CoreError::BadSignature => write!(f, "query signature verification failed"),
            CoreError::UnknownQuery => write!(f, "unknown query id"),
            CoreError::Unbucketizable(v) => write!(f, "value '{v}' matches no answer bucket"),
            CoreError::InfeasibleBudget(m) => write!(f, "infeasible budget: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

//! Errors surfaced by the PrivApprox system layer.

use privapprox_sql::SqlError;
use privapprox_stream::broker::BrokerError;
use privapprox_types::budget::ParamError;

/// System-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The client's local SQL execution failed.
    Sql(SqlError),
    /// Execution parameters were out of range.
    Params(ParamError),
    /// The query's signature did not verify at the client.
    BadSignature,
    /// A query referenced an unknown query id.
    UnknownQuery,
    /// The answer column could not be bucketized (no matching bucket).
    Unbucketizable(String),
    /// The budget cannot be met (e.g. latency target below the
    /// per-answer floor even at the minimum sampling fraction).
    InfeasibleBudget(String),
    /// A deployment runtime fault (thread death, backpressure
    /// deadline, failed respawn); see [`DeployError`].
    Deploy(DeployError),
}

/// Faults of the threaded deployment runtime
/// ([`ShardedSystem`](crate::ShardedSystem)): these are *reported*
/// conditions, not hangs — the supervisor catches thread panics,
/// converts stalled backpressure into typed errors, and (by default)
/// respawns dead threads so the pipeline keeps producing degraded but
/// unbiased results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The builder was given an impossible configuration.
    InvalidConfig(String),
    /// A client worker thread panicked; its clients' answers are
    /// missing from the affected epochs (a sampling loss, not a
    /// corruption).
    WorkerPanic {
        /// Worker index.
        worker: usize,
        /// The captured panic payload.
        message: String,
    },
    /// An aggregator shard thread panicked; decodes it held for open
    /// windows are lost and the affected epochs close partially.
    ShardPanic {
        /// Shard index.
        shard: usize,
        /// The captured panic payload.
        message: String,
    },
    /// A proxy relay thread panicked or hit a broker fault; shares on
    /// its topics sit until it is respawned.
    ProxyPanic {
        /// Proxy index.
        proxy: usize,
        /// The captured panic payload.
        message: String,
    },
    /// A bounded broker partition stayed full past the backpressure
    /// deadline (mirrors
    /// [`BrokerError::Backpressure`](privapprox_stream::broker::BrokerError)).
    Backpressure {
        /// Topic whose partition stayed full.
        topic: String,
        /// The full partition.
        partition: usize,
    },
    /// A dead thread could not be respawned (respawn disabled, or the
    /// replacement died immediately).
    RespawnFailed {
        /// Thread role: `"worker"`, `"proxy"` or `"shard"`.
        role: &'static str,
        /// Thread index within its role.
        index: usize,
    },
    /// The durable store failed: a journal/snapshot I/O error, or
    /// corruption detected by the store's CRC framing. Carried as a
    /// rendered [`StoreError`](privapprox_store::StoreError) — the
    /// typed detail (corruption kind, offset, path) is preserved in
    /// the text.
    Persist {
        /// The rendered store error.
        detail: String,
    },
}

impl From<SqlError> for CoreError {
    fn from(e: SqlError) -> CoreError {
        CoreError::Sql(e)
    }
}

impl From<ParamError> for CoreError {
    fn from(e: ParamError) -> CoreError {
        CoreError::Params(e)
    }
}

impl From<DeployError> for CoreError {
    fn from(e: DeployError) -> CoreError {
        CoreError::Deploy(e)
    }
}

impl From<BrokerError> for DeployError {
    fn from(e: BrokerError) -> DeployError {
        match e {
            BrokerError::Backpressure {
                topic, partition, ..
            } => DeployError::Backpressure { topic, partition },
        }
    }
}

impl From<BrokerError> for CoreError {
    fn from(e: BrokerError) -> CoreError {
        CoreError::Deploy(e.into())
    }
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Sql(e) => write!(f, "client SQL error: {e}"),
            CoreError::Params(e) => write!(f, "parameter error: {e}"),
            CoreError::BadSignature => write!(f, "query signature verification failed"),
            CoreError::UnknownQuery => write!(f, "unknown query id"),
            CoreError::Unbucketizable(v) => write!(f, "value '{v}' matches no answer bucket"),
            CoreError::InfeasibleBudget(m) => write!(f, "infeasible budget: {m}"),
            CoreError::Deploy(e) => write!(f, "deployment fault: {e}"),
        }
    }
}

impl core::fmt::Display for DeployError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeployError::InvalidConfig(m) => write!(f, "invalid deployment config: {m}"),
            DeployError::WorkerPanic { worker, message } => {
                write!(f, "worker thread {worker} panicked: {message}")
            }
            DeployError::ShardPanic { shard, message } => {
                write!(f, "shard thread {shard} panicked: {message}")
            }
            DeployError::ProxyPanic { proxy, message } => {
                write!(f, "proxy thread {proxy} panicked: {message}")
            }
            DeployError::Backpressure { topic, partition } => write!(
                f,
                "backpressure deadline on partition {partition} of topic {topic:?}"
            ),
            DeployError::RespawnFailed { role, index } => {
                write!(f, "could not respawn dead {role} thread {index}")
            }
            DeployError::Persist { detail } => write!(f, "durable store fault: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {}
impl std::error::Error for DeployError {}

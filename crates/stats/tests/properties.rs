//! Property-based tests for the statistics substrate.

use privapprox_stats::describe::{sample_mean, sample_variance, Welford};
use privapprox_stats::estimate::SrsSumEstimate;
use privapprox_stats::normal::{normal_cdf, normal_quantile};
use privapprox_stats::special::reg_inc_beta;
use privapprox_stats::tdist::{t_cdf, t_quantile};
use proptest::prelude::*;

proptest! {
    /// Φ⁻¹ inverts Φ across the practical range.
    #[test]
    fn normal_quantile_inverts_cdf(p in 0.0001f64..0.9999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-8, "p={p}, x={x}");
    }

    /// The normal CDF is monotone.
    #[test]
    fn normal_cdf_monotone(a in -6.0f64..6.0, delta in 0.001f64..3.0) {
        prop_assert!(normal_cdf(a + delta) >= normal_cdf(a));
    }

    /// Student-t quantile inverts its CDF for every df.
    #[test]
    fn t_quantile_inverts_cdf(p in 0.001f64..0.999, df in 1.0f64..200.0) {
        let x = t_quantile(p, df);
        prop_assert!((t_cdf(x, df) - p).abs() < 1e-8, "p={p} df={df} x={x}");
    }

    /// The t distribution is symmetric: Q(p) = −Q(1−p).
    #[test]
    fn t_quantile_symmetry(p in 0.01f64..0.5, df in 1.0f64..100.0) {
        let lo = t_quantile(p, df);
        let hi = t_quantile(1.0 - p, df);
        prop_assert!((lo + hi).abs() < 1e-7, "Q({p})={lo}, Q({})={hi}", 1.0 - p);
    }

    /// t critical values dominate normal ones and converge with df.
    #[test]
    fn t_dominates_normal(p in 0.55f64..0.995, df in 2.0f64..500.0) {
        let t = t_quantile(p, df);
        let z = normal_quantile(p);
        prop_assert!(t >= z - 1e-9, "t={t} z={z} at df={df}");
        let t_huge = t_quantile(p, 1e7);
        prop_assert!((t_huge - z).abs() < 1e-3);
    }

    /// The regularized incomplete beta is within [0,1] and monotone
    /// in x.
    #[test]
    fn inc_beta_range_and_monotonicity(
        a in 0.1f64..20.0,
        b in 0.1f64..20.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let flo = reg_inc_beta(a, b, lo);
        let fhi = reg_inc_beta(a, b, hi);
        prop_assert!((0.0..=1.0).contains(&flo));
        prop_assert!((0.0..=1.0).contains(&fhi));
        prop_assert!(fhi >= flo - 1e-12);
    }

    /// Welford matches the two-pass formulas on arbitrary data.
    #[test]
    fn welford_matches_batch(xs in proptest::collection::vec(-1e4f64..1e4, 0..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!((w.mean() - sample_mean(&xs)).abs() < 1e-6);
        prop_assert!((w.variance() - sample_variance(&xs)).abs() < 1e-4);
    }

    /// Welford merge is order-independent (any split point).
    #[test]
    fn welford_merge_any_split(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let split = split.min(xs.len());
        let (left, right) = xs.split_at(split);
        let mut a = Welford::new();
        left.iter().for_each(|&x| a.push(x));
        let mut b = Welford::new();
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        let mut seq = Welford::new();
        xs.iter().for_each(|&x| seq.push(x));
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-8);
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-6);
    }

    /// The SRS estimator scales linearly: doubling every answer
    /// doubles the estimate; the error bound is non-negative and
    /// shrinks (weakly) with more samples from the same distribution.
    #[test]
    fn srs_estimator_scaling(
        sample in proptest::collection::vec(0.0f64..10.0, 2..100),
        factor in 1.0f64..10.0,
    ) {
        let population = (sample.len() as u64) * 10;
        let base = SrsSumEstimate::from_sample(population, &sample);
        let scaled: Vec<f64> = sample.iter().map(|x| x * factor).collect();
        let big = SrsSumEstimate::from_sample(population, &scaled);
        prop_assert!((big.estimate() - factor * base.estimate()).abs() < 1e-6);
        prop_assert!(base.error_bound(0.95) >= 0.0);
    }

    /// A census (sample == population) has zero variance regardless of
    /// the data.
    #[test]
    fn census_has_zero_bound(sample in proptest::collection::vec(0.0f64..1.0, 2..50)) {
        let est = SrsSumEstimate::from_sample(sample.len() as u64, &sample);
        prop_assert_eq!(est.error_bound(0.95), 0.0);
        let total: f64 = sample.iter().sum();
        prop_assert!((est.estimate() - total).abs() < 1e-9);
    }
}

//! Descriptive statistics: batch and online (Welford) moments.

/// Arithmetic mean of a sample; `0.0` for an empty slice.
pub fn sample_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n−1 denominator) sample variance; `0.0` when fewer than
/// two observations exist.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = sample_mean(xs);
    xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Numerically stable online accumulator for mean and variance
/// (Welford's algorithm). Used by the aggregator so windows never need
/// to retain raw answer values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator (parallel Welford / Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `0.0` with fewer than two points.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sum of observations (`mean × count`).
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn batch_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        close(sample_mean(&xs), 5.0, 1e-12);
        // Sum of squared deviations = 32, n−1 = 7.
        close(sample_variance(&xs), 32.0 / 7.0, 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(sample_mean(&[]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
        assert_eq!(sample_variance(&[3.0]), 0.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        close(w.mean(), sample_mean(&xs), 1e-9);
        close(w.variance(), sample_variance(&xs), 1e-9);
        assert_eq!(w.count(), 1000);
        close(w.sum(), xs.iter().sum::<f64>(), 1e-6);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = xs.split_at(123);
        let mut a = Welford::new();
        let mut b = Welford::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);

        let mut seq = Welford::new();
        xs.iter().for_each(|&x| seq.push(x));

        close(a.mean(), seq.mean(), 1e-9);
        close(a.variance(), seq.variance(), 1e-9);
        assert_eq!(a.count(), seq.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a.clone();
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        close(empty.mean(), before.mean(), 1e-12);
    }

    #[test]
    fn welford_constant_stream_has_zero_variance() {
        let mut w = Welford::new();
        for _ in 0..100 {
            w.push(42.0);
        }
        close(w.variance(), 0.0, 1e-12);
        close(w.mean(), 42.0, 1e-12);
    }
}

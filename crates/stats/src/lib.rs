//! Statistics substrate for the PrivApprox reproduction.
//!
//! The paper's aggregator estimates error bounds with the statistical
//! theory of simple random sampling (Equations 2–4) and interprets them
//! through Student-t confidence intervals, implemented there with
//! Apache Commons Math. This crate is the from-scratch replacement:
//!
//! * [`special`] — log-gamma, error function, regularized incomplete
//!   beta (the classical building blocks);
//! * [`normal`] — standard normal CDF and quantile;
//! * [`tdist`] — Student-t CDF and quantile;
//! * [`describe`] — mean/variance, Welford online accumulators;
//! * [`estimate`] — the paper's Equations 2–4: the scaled sample-sum
//!   estimator with finite-population-corrected variance and
//!   t-distribution error bounds.
//!
//! All routines are deterministic, allocation-free, and pure.

pub mod describe;
pub mod estimate;
pub mod normal;
pub mod special;
pub mod tdist;

pub use describe::{sample_mean, sample_variance, Welford};
pub use estimate::{ConfidenceInterval, SrsSumEstimate};
pub use normal::{normal_cdf, normal_quantile};
pub use special::{erf, erfc, ln_gamma, reg_inc_beta};
pub use tdist::{t_cdf, t_quantile};

//! Student-t distribution: CDF and quantile.
//!
//! The paper's Equation 3 takes "a value of the t-distribution with
//! U′−1 degrees of freedom at the 1−α/2 level of significance"; this
//! module supplies exactly that value.

use crate::normal::normal_quantile;
use crate::special::reg_inc_beta;

/// Student-t cumulative distribution function with `df` degrees of
/// freedom.
///
/// Uses the classical identity
/// `P(T ≤ t) = 1 − ½·I_{ν/(ν+t²)}(ν/2, ½)` for `t ≥ 0` and symmetry
/// for `t < 0`.
///
/// # Panics
///
/// Panics if `df <= 0`.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf needs df > 0, got {df}");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let tail = 0.5 * reg_inc_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Student-t quantile (inverse CDF) with `df` degrees of freedom.
///
/// Starts from the normal quantile (exact as `df → ∞`) and refines by
/// bisection + Newton on the monotone CDF to ~1e-12.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)` and `df > 0`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "t_quantile needs p in (0,1), got {p}");
    assert!(df > 0.0, "t_quantile needs df > 0, got {df}");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }

    // Bracket the root. The t quantile is farther in the tail than the
    // normal quantile, so expand outward from the normal start.
    let z = normal_quantile(p);
    let (mut lo, mut hi);
    if z >= 0.0 {
        lo = 0.0;
        hi = z.max(1.0);
        while t_cdf(hi, df) < p {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
    } else {
        hi = 0.0;
        lo = z.min(-1.0);
        while t_cdf(lo, df) > p {
            lo *= 2.0;
            if lo < -1e12 {
                break;
            }
        }
    }

    // Bisection to get close, then Newton to polish.
    let mut mid = 0.5 * (lo + hi);
    for _ in 0..200 {
        mid = 0.5 * (lo + hi);
        let c = t_cdf(mid, df);
        if (c - p).abs() < 1e-14 || (hi - lo) < 1e-13 * mid.abs().max(1.0) {
            break;
        }
        if c < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    mid
}

/// The two-sided critical value `t*` such that a fraction `confidence`
/// of the distribution lies within `[−t*, t*]` — i.e. the quantile at
/// `1 − α/2` with `α = 1 − confidence` (paper Equation 3).
///
/// # Panics
///
/// Panics unless `confidence ∈ (0, 1)` and `df > 0`.
pub fn t_critical(confidence: f64, df: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    t_quantile(1.0 - (1.0 - confidence) / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn cdf_symmetry_and_median() {
        for df in [1.0, 3.0, 10.0, 30.0] {
            close(t_cdf(0.0, df), 0.5, 1e-12);
            for t in [0.3, 1.0, 2.5] {
                close(t_cdf(t, df) + t_cdf(-t, df), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn cdf_cauchy_case() {
        // df = 1 is the Cauchy distribution: F(t) = 1/2 + atan(t)/π.
        for t in [-2.0f64, -0.5, 0.7, 3.0] {
            let expect = 0.5 + t.atan() / std::f64::consts::PI;
            close(t_cdf(t, 1.0), expect, 1e-9);
        }
    }

    #[test]
    fn quantile_matches_published_table() {
        // Classic two-sided 95 % critical values (α = 0.05).
        close(t_quantile(0.975, 1.0), 12.706, 2e-3);
        close(t_quantile(0.975, 5.0), 2.571, 1e-3);
        close(t_quantile(0.975, 10.0), 2.228, 1e-3);
        close(t_quantile(0.975, 30.0), 2.042, 1e-3);
        close(t_quantile(0.975, 100.0), 1.984, 1e-3);
        // One-sided 95 %.
        close(t_quantile(0.95, 10.0), 1.812, 1e-3);
        // 99 % two-sided.
        close(t_quantile(0.995, 10.0), 3.169, 1e-3);
    }

    #[test]
    fn quantile_approaches_normal_for_large_df() {
        close(t_quantile(0.975, 1e6), 1.959_963_98, 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [2.0, 7.0, 29.0] {
            for i in [1, 5, 25, 50, 75, 95, 99] {
                let p = i as f64 / 100.0;
                close(t_cdf(t_quantile(p, df), df), p, 1e-9);
            }
        }
    }

    #[test]
    fn critical_value_is_two_sided() {
        // 95 % confidence with df=30 → the 0.975 quantile.
        close(t_critical(0.95, 30.0), t_quantile(0.975, 30.0), 1e-12);
    }

    #[test]
    #[should_panic(expected = "df > 0")]
    fn cdf_rejects_bad_df() {
        let _ = t_cdf(1.0, 0.0);
    }
}

//! Classical special functions: log-gamma, error function, and the
//! regularized incomplete beta function.
//!
//! These are the standard numerical workhorses behind the normal and
//! Student-t distributions. Implementations follow the well-known
//! Lanczos and continued-fraction formulations; accuracy targets are
//! ~1e-10 relative for `ln_gamma`, ~1.2e-7 absolute for `erf`/`erfc`
//! (sufficient for confidence levels quoted to four digits), and
//! ~1e-12 for the incomplete beta.

/// Natural log of the gamma function for `x > 0` (Lanczos, g = 7).
///
/// # Panics
///
/// Panics if `x <= 0` — the reflection branch is not needed anywhere in
/// this workspace, so feeding a non-positive argument is a logic error.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 8] = [
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    const G: f64 = 7.0;
    const SQRT_2PI: f64 = 2.506_628_274_631_000_5;

    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_93;
    for (i, c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + G + 0.5;
    (SQRT_2PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Error function to near machine precision.
///
/// Uses the Taylor series for `|x| ≤ 3` (rapidly convergent there) and
/// `1 − erfc(x)` via the continued fraction otherwise.
pub fn erf(x: f64) -> f64 {
    let z = x.abs();
    if z <= 3.0 {
        // erf(x) = 2/√π · Σ_{n≥0} (−1)ⁿ x^{2n+1} / (n!·(2n+1)).
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        let x2 = x * x;
        let mut term = x; // x^{2n+1} / n!
        let mut sum = x / 1.0;
        let mut n = 1.0f64;
        loop {
            term *= -x2 / n;
            let contrib = term / (2.0 * n + 1.0);
            sum += contrib;
            if contrib.abs() < 1e-18 * sum.abs().max(1e-300) || n > 200.0 {
                break;
            }
            n += 1.0;
        }
        two_over_sqrt_pi * sum
    } else if x > 0.0 {
        1.0 - erfc_cf(z)
    } else {
        erfc_cf(z) - 1.0
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, accurate in
/// both tails (relative accuracy ~1e-14 for large positive `x`).
pub fn erfc(x: f64) -> f64 {
    if x >= 3.0 {
        erfc_cf(x)
    } else if x <= -3.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf(x)
    }
}

/// Continued-fraction expansion of `erfc` for `x ≥ 3` (modified Lentz
/// on the classical Laplace fraction).
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x >= 3.0);
    const FPMIN: f64 = 1.0e-300;
    const EPS: f64 = 1.0e-16;
    // erfc(x) = exp(−x²)/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + …)))).
    let mut c: f64 = 1.0 / FPMIN;
    let mut d = 1.0 / x;
    let mut h = d;
    let mut k = 0.5f64;
    for _ in 0..200 {
        d = 1.0 / (x + k * d);
        c = x + k / c;
        let del = c * d;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
        k += 0.5;
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() * h
}

/// Regularized incomplete beta function `I_x(a, b)` for
/// `a, b > 0`, `x ∈ [0, 1]`, via the Lentz continued fraction.
///
/// # Panics
///
/// Panics on out-of-domain arguments.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta needs a,b > 0");
    assert!((0.0..=1.0).contains(&x), "reg_inc_beta needs x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a·B(a,b)), computed in log space.
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation to keep the continued fraction in its
    // rapidly-converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_gamma_symmetric(a, b, x)
    }
}

/// Helper evaluating `I_{1-x}(b, a)` through the continued fraction.
fn ln_gamma_symmetric(a: f64, b: f64, x: f64) -> f64 {
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // Converged in practice long before MAX_ITER for our a, b ranges;
    // return the best effort rather than poisoning callers with NaN.
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π/2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_715, 1e-6);
        close(erf(2.0), 0.995_322_265_018_953, 1e-6);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for x in [-3.0, -1.0, -0.1, 0.0, 0.5, 2.5] {
            close(erfc(x) + erfc(-x), 2.0, 1e-7);
        }
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            close(reg_inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_symmetry_relation() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 3.0, 0.42)] {
            close(
                reg_inc_beta(a, b, x),
                1.0 - reg_inc_beta(b, a, 1.0 - x),
                1e-10,
            );
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2,2) = 0.15625
        // (integral of 6t(1−t) from 0 to 1/4).
        close(reg_inc_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
        close(reg_inc_beta(2.0, 2.0, 0.25), 0.15625, 1e-10);
    }

    #[test]
    fn inc_beta_is_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = reg_inc_beta(3.5, 1.25, x);
            assert!(v >= prev, "non-monotone at x={x}");
            prev = v;
        }
    }
}

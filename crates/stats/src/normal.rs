//! Standard normal CDF and quantile.

use crate::special::erfc;

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation,
/// relative error below 1.15e-9, polished with one Halley step).
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile needs p in (0,1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the exact CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-7);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-7);
        close(normal_cdf(1.0), 0.841_344_746_068_543, 1e-7);
    }

    #[test]
    fn quantile_known_values() {
        close(normal_quantile(0.5), 0.0, 1e-9);
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-7);
        close(normal_quantile(0.95), 1.644_853_626_951_472, 1e-7);
        close(normal_quantile(0.995), 2.575_829_303_548_901, 1e-7);
        close(normal_quantile(0.025), -1.959_963_984_540_054, 1e-7);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            close(normal_cdf(normal_quantile(p)), p, 1e-8);
        }
    }

    #[test]
    fn quantile_tails() {
        close(normal_cdf(normal_quantile(1e-6)), 1e-6, 1e-9);
        close(normal_cdf(normal_quantile(1.0 - 1e-6)), 1.0 - 1e-6, 1e-9);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_zero() {
        let _ = normal_quantile(0.0);
    }
}

//! The paper's sampling estimators: Equations 2, 3 and 4.
//!
//! For a population of `U` clients of which `U′` were sampled, the sum
//! of answers is estimated as
//!
//! ```text
//! τ̂ = (U / U′) · Σᵢ aᵢ  ±  error                       (Eq. 2)
//! error = t · sqrt(V̂ar(τ̂))                             (Eq. 3)
//! V̂ar(τ̂) = (U² / U′) · σ² · (U − U′)/U                 (Eq. 4)
//! ```
//!
//! where `σ²` is the sample variance of the answers and `t` is the
//! Student-t critical value with `U′ − 1` degrees of freedom at the
//! `1 − α/2` significance level.

use crate::describe::Welford;
use crate::tdist::t_critical;

/// A two-sided confidence interval `estimate ± bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Half-width of the interval (the paper's `errorBound`).
    pub bound: f64,
    /// Confidence level the bound was computed at.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.estimate - self.bound
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.estimate + self.bound
    }

    /// True if `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Half-width relative to the estimate (`bound / |estimate|`);
    /// infinite for a zero estimate with a non-zero bound.
    pub fn relative_bound(&self) -> f64 {
        if self.estimate == 0.0 {
            if self.bound == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.bound / self.estimate.abs()
        }
    }
}

impl core::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({}% CI)",
            self.estimate,
            self.bound,
            self.confidence * 100.0
        )
    }
}

/// The simple-random-sampling sum estimator of paper §3.2.1.
#[derive(Debug, Clone, PartialEq)]
pub struct SrsSumEstimate {
    population: u64,
    acc: Welford,
}

impl SrsSumEstimate {
    /// Starts an estimator for a population of `U` clients.
    ///
    /// # Panics
    ///
    /// Panics if the population is zero.
    pub fn new(population: u64) -> SrsSumEstimate {
        assert!(population > 0, "population must be positive");
        SrsSumEstimate {
            population,
            acc: Welford::new(),
        }
    }

    /// Builds the estimator directly from a slice of sampled answers.
    pub fn from_sample(population: u64, sample: &[f64]) -> SrsSumEstimate {
        let mut e = SrsSumEstimate::new(population);
        for &a in sample {
            e.push(a);
        }
        e
    }

    /// Feeds one sampled answer `aᵢ`.
    pub fn push(&mut self, a: f64) {
        self.acc.push(a);
    }

    /// Population size `U`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Sample size `U′`.
    pub fn sample_size(&self) -> u64 {
        self.acc.count()
    }

    /// The point estimate `τ̂ = (U/U′)·Σ aᵢ` (Equation 2).
    ///
    /// Returns `0.0` for an empty sample.
    pub fn estimate(&self) -> f64 {
        if self.acc.count() == 0 {
            return 0.0;
        }
        self.population as f64 / self.acc.count() as f64 * self.acc.sum()
    }

    /// Finite-population-corrected variance of `τ̂` (Equation 4).
    ///
    /// `V̂ar(τ̂) = (U²/U′)·σ²·(U−U′)/U`. Zero when the whole population
    /// was sampled (the correction term vanishes) or when fewer than
    /// two observations exist.
    pub fn variance(&self) -> f64 {
        let u = self.population as f64;
        let u_prime = self.acc.count() as f64;
        if self.acc.count() < 2 {
            return 0.0;
        }
        let sigma2 = self.acc.variance();
        let fpc = (u - u_prime).max(0.0) / u;
        u * u / u_prime * sigma2 * fpc
    }

    /// The error bound `t·sqrt(V̂ar(τ̂))` at the given confidence level
    /// (Equation 3), with `t` from Student-t(U′−1).
    ///
    /// Returns `f64::INFINITY` when the sample is too small (`U′ < 2`)
    /// to estimate a variance — callers must widen the sample, which is
    /// exactly the feedback the paper's adaptive executor acts on.
    pub fn error_bound(&self, confidence: f64) -> f64 {
        if self.acc.count() < 2 {
            return f64::INFINITY;
        }
        if self.sample_size() >= self.population {
            return 0.0; // census: no sampling error
        }
        let t = t_critical(confidence, (self.acc.count() - 1) as f64);
        t * self.variance().sqrt()
    }

    /// The full `queryResult ± errorBound` interval of §3.2.4.
    pub fn interval(&self, confidence: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            estimate: self.estimate(),
            bound: self.error_bound(confidence),
            confidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn census_is_exact() {
        // Sampling everyone: estimate equals the true sum, zero error.
        let answers: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let e = SrsSumEstimate::from_sample(100, &answers);
        close(e.estimate(), 50.0, 1e-9);
        assert_eq!(e.error_bound(0.95), 0.0);
        assert_eq!(e.variance(), 0.0);
    }

    #[test]
    fn estimate_scales_by_inverse_sampling_fraction() {
        // 40 of 100 sampled, 10 ones → τ̂ = 100/40 · 10 = 25.
        let mut sample = vec![1.0; 10];
        sample.extend(vec![0.0; 30]);
        let e = SrsSumEstimate::from_sample(100, &sample);
        close(e.estimate(), 25.0, 1e-9);
        assert_eq!(e.sample_size(), 40);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // U = 10, sample = [1, 0, 1, 0] → σ² = 1/3, U′ = 4.
        let e = SrsSumEstimate::from_sample(10, &[1.0, 0.0, 1.0, 0.0]);
        // Eq 4: (100/4)·(1/3)·((10−4)/10) = 25·(1/3)·0.6 = 5.
        close(e.variance(), 5.0, 1e-9);
        // Eq 3 at 95 %, df = 3: t = 3.182.
        let bound = e.error_bound(0.95);
        close(bound, 3.182 * 5.0f64.sqrt(), 0.01);
    }

    #[test]
    fn interval_contains_truth_for_balanced_sample() {
        // A representative 50 % sample of a half-ones population.
        let sample: Vec<f64> = (0..500).map(|i| (i % 2) as f64).collect();
        let e = SrsSumEstimate::from_sample(1000, &sample);
        let ci = e.interval(0.95);
        assert!(ci.contains(500.0), "true sum inside CI: {ci}");
        assert!(ci.bound > 0.0);
        assert!(ci.relative_bound() < 0.1);
    }

    #[test]
    fn tiny_samples_yield_infinite_bound() {
        let mut e = SrsSumEstimate::new(100);
        assert_eq!(e.error_bound(0.95), f64::INFINITY);
        e.push(1.0);
        assert_eq!(e.error_bound(0.95), f64::INFINITY);
        e.push(0.0);
        assert!(e.error_bound(0.95).is_finite());
    }

    #[test]
    fn empty_sample_estimates_zero() {
        let e = SrsSumEstimate::new(50);
        assert_eq!(e.estimate(), 0.0);
    }

    #[test]
    fn interval_endpoints() {
        let ci = ConfidenceInterval {
            estimate: 10.0,
            bound: 2.0,
            confidence: 0.95,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(8.0) && ci.contains(12.0));
        assert!(!ci.contains(7.99));
        close(ci.relative_bound(), 0.2, 1e-12);
    }

    #[test]
    fn zero_estimate_relative_bound() {
        let ci = ConfidenceInterval {
            estimate: 0.0,
            bound: 1.0,
            confidence: 0.95,
        };
        assert!(ci.relative_bound().is_infinite());
        let ci0 = ConfidenceInterval {
            estimate: 0.0,
            bound: 0.0,
            confidence: 0.95,
        };
        assert_eq!(ci0.relative_bound(), 0.0);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn zero_population_rejected() {
        let _ = SrsSumEstimate::new(0);
    }
}

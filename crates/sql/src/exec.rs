//! Expression evaluation and SELECT execution.

use crate::ast::{BinaryOp, Expr, SelectItem, SelectStmt, UnaryOp};
use crate::error::SqlError;
use crate::table::{Database, Schema, Table};
use crate::value::Value;
use privapprox_types::query::like_match;

/// The result of executing a SELECT: named columns and value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Values of the single output column; errors if the shape is not
    /// exactly one column (the PrivApprox client expects exactly one
    /// answer column to bucketize).
    pub fn single_column(&self) -> Result<Vec<Value>, SqlError> {
        if self.columns.len() != 1 {
            return Err(SqlError::Type(format!(
                "expected exactly 1 output column, got {}",
                self.columns.len()
            )));
        }
        Ok(self.rows.iter().map(|r| r[0].clone()).collect())
    }
}

/// Evaluates `expr` against a row.
pub fn eval(expr: &Expr, schema: &Schema, row: &[Value]) -> Result<Value, SqlError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let idx = schema
                .index_of(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?;
            Ok(row[idx].clone())
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, schema, row)?;
            match op {
                UnaryOp::Not => Ok(match v.truth() {
                    None => Value::Null,
                    Some(b) => Value::Bool(!b),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(SqlError::Type(format!("cannot negate {other}"))),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, schema, row),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => {
                    let hit = like_match(pattern, &s);
                    Ok(Value::Bool(hit != *negated))
                }
                other => Err(SqlError::Type(format!("LIKE needs text, got {other}"))),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval(expr, schema, row)?;
            if needle.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(item, schema, row)?;
                match needle.sql_eq(&v) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            // SQL semantics: x IN (…NULL…) is NULL when no match.
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, schema, row)?;
            let lo = eval(lo, schema, row)?;
            let hi = eval(hi, schema, row)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside =
                        a != core::cmp::Ordering::Less && b != core::cmp::Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

fn eval_binary(
    op: BinaryOp,
    lhs: &Expr,
    rhs: &Expr,
    schema: &Schema,
    row: &[Value],
) -> Result<Value, SqlError> {
    // Short-circuit logic with three-valued semantics.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = eval(lhs, schema, row)?.truth();
        match (op, l) {
            (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = eval(rhs, schema, row)?.truth();
        return Ok(match (op, l, r) {
            (BinaryOp::And, Some(true), Some(b)) => Value::Bool(b),
            (BinaryOp::And, Some(b), Some(true)) => Value::Bool(b),
            (BinaryOp::And, _, Some(false)) => Value::Bool(false),
            (BinaryOp::Or, Some(false), Some(b)) => Value::Bool(b),
            (BinaryOp::Or, Some(b), Some(false)) => Value::Bool(b),
            (BinaryOp::Or, _, Some(true)) => Value::Bool(true),
            _ => Value::Null,
        });
    }

    let l = eval(lhs, schema, row)?;
    let r = eval(rhs, schema, row)?;
    match op {
        BinaryOp::Eq | BinaryOp::Neq => match l.sql_eq(&r) {
            None => Ok(Value::Null),
            Some(eq) => Ok(Value::Bool(if op == BinaryOp::Eq { eq } else { !eq })),
        },
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => match l.sql_cmp(&r) {
            None => Ok(Value::Null),
            Some(ord) => {
                use core::cmp::Ordering::*;
                let b = match op {
                    BinaryOp::Lt => ord == Less,
                    BinaryOp::Le => ord != Greater,
                    BinaryOp::Gt => ord == Greater,
                    BinaryOp::Ge => ord != Less,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(b))
            }
        },
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Integer arithmetic stays integral except division.
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return match op {
                    BinaryOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
                    BinaryOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    BinaryOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    BinaryOp::Div => {
                        if *b == 0 {
                            Err(SqlError::DivisionByZero)
                        } else {
                            Ok(Value::Int(a / b))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(SqlError::Type(format!(
                        "arithmetic needs numbers, got {l} and {r}"
                    )))
                }
            };
            match op {
                BinaryOp::Add => Ok(Value::Float(a + b)),
                BinaryOp::Sub => Ok(Value::Float(a - b)),
                BinaryOp::Mul => Ok(Value::Float(a * b)),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Err(SqlError::DivisionByZero)
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                _ => unreachable!(),
            }
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

/// Executes a parsed SELECT against the database.
pub fn execute(stmt: &SelectStmt, db: &Database) -> Result<ResultSet, SqlError> {
    let table: &Table = db.table(&stmt.table)?;
    let schema = table.schema();

    // Resolve projection up front so column errors surface even on
    // empty tables.
    let mut columns = Vec::new();
    for (i, item) in stmt.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for name in schema.names() {
                    columns.push(name.to_string());
                }
            }
            SelectItem::Expr { expr, .. } => {
                validate_columns(expr, schema)?;
                columns.push(stmt.output_name(i));
            }
        }
    }
    if let Some(w) = &stmt.where_clause {
        validate_columns(w, schema)?;
    }

    let mut rows = Vec::new();
    for row in table.rows() {
        if let Some(limit) = stmt.limit {
            if rows.len() as u64 >= limit {
                break;
            }
        }
        if let Some(w) = &stmt.where_clause {
            // WHERE keeps only rows where the predicate is true
            // (NULL/unknown filters out).
            if eval(w, schema, row)?.truth() != Some(true) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(columns.len());
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => out.extend(row.iter().cloned()),
                SelectItem::Expr { expr, .. } => out.push(eval(expr, schema, row)?),
            }
        }
        rows.push(out);
        if let Some(limit) = stmt.limit {
            if rows.len() as u64 >= limit {
                break;
            }
        }
    }
    Ok(ResultSet { columns, rows })
}

/// Walks an expression rejecting unknown column references.
fn validate_columns(expr: &Expr, schema: &Schema) -> Result<(), SqlError> {
    match expr {
        Expr::Literal(_) => Ok(()),
        Expr::Column(name) => schema
            .index_of(name)
            .map(|_| ())
            .ok_or_else(|| SqlError::UnknownColumn(name.clone())),
        Expr::Binary { lhs, rhs, .. } => {
            validate_columns(lhs, schema)?;
            validate_columns(rhs, schema)
        }
        Expr::Unary { expr, .. } => validate_columns(expr, schema),
        Expr::Like { expr, .. } => validate_columns(expr, schema),
        Expr::InList { expr, list, .. } => {
            validate_columns(expr, schema)?;
            list.iter().try_for_each(|e| validate_columns(e, schema))
        }
        Expr::Between { expr, lo, hi, .. } => {
            validate_columns(expr, schema)?;
            validate_columns(lo, schema)?;
            validate_columns(hi, schema)
        }
        Expr::IsNull { expr, .. } => validate_columns(expr, schema),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::table::ColumnType;

    fn vehicle_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "vehicle",
            Schema::new(vec![
                ("ts", ColumnType::Int),
                ("speed", ColumnType::Float),
                ("location", ColumnType::Text),
            ]),
        );
        let rows: Vec<(i64, f64, &str)> = vec![
            (1, 15.0, "San Francisco"),
            (2, 42.5, "San Francisco"),
            (3, 8.0, "Oakland"),
            (4, 65.0, "San Francisco"),
            (5, 0.0, "Berkeley"),
        ];
        for (ts, speed, loc) in rows {
            db.insert(
                "vehicle",
                vec![Value::Int(ts), Value::Float(speed), loc.into()],
            )
            .unwrap();
        }
        db
    }

    fn run(db: &Database, sql: &str) -> ResultSet {
        execute(&parse_select(sql).unwrap(), db).unwrap()
    }

    #[test]
    fn the_paper_query_filters_by_location() {
        let db = vehicle_db();
        let rs = run(
            &db,
            "SELECT speed FROM vehicle WHERE location='San Francisco'",
        );
        assert_eq!(rs.columns, vec!["speed"]);
        let speeds: Vec<f64> = rs.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        assert_eq!(speeds, vec![15.0, 42.5, 65.0]);
    }

    #[test]
    fn wildcard_projects_all_columns() {
        let db = vehicle_db();
        let rs = run(&db, "SELECT * FROM vehicle");
        assert_eq!(rs.columns, vec!["ts", "speed", "location"]);
        assert_eq!(rs.rows.len(), 5);
    }

    #[test]
    fn arithmetic_and_aliases() {
        let db = vehicle_db();
        let rs = run(&db, "SELECT speed * 2 AS dbl FROM vehicle WHERE ts = 1");
        assert_eq!(rs.columns, vec!["dbl"]);
        assert_eq!(rs.rows[0][0], Value::Float(30.0));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let db = vehicle_db();
        let rs = run(&db, "SELECT ts + 10 FROM vehicle WHERE ts = 3");
        assert_eq!(rs.rows[0][0], Value::Int(13));
        let rs = run(&db, "SELECT 7 / 2 FROM vehicle LIMIT 1");
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn comparison_operators() {
        let db = vehicle_db();
        assert_eq!(
            run(&db, "SELECT ts FROM vehicle WHERE speed > 40")
                .rows
                .len(),
            2
        );
        assert_eq!(
            run(&db, "SELECT ts FROM vehicle WHERE speed <= 8")
                .rows
                .len(),
            2
        );
        assert_eq!(
            run(&db, "SELECT ts FROM vehicle WHERE speed != 0")
                .rows
                .len(),
            4
        );
    }

    #[test]
    fn like_in_between() {
        let db = vehicle_db();
        assert_eq!(
            run(&db, "SELECT ts FROM vehicle WHERE location LIKE 'San%'")
                .rows
                .len(),
            3
        );
        assert_eq!(
            run(
                &db,
                "SELECT ts FROM vehicle WHERE location NOT LIKE '%land'"
            )
            .rows
            .len(),
            4
        );
        assert_eq!(
            run(&db, "SELECT ts FROM vehicle WHERE ts IN (1, 3, 99)")
                .rows
                .len(),
            2
        );
        assert_eq!(
            run(&db, "SELECT ts FROM vehicle WHERE speed BETWEEN 8 AND 45")
                .rows
                .len(),
            3
        );
        assert_eq!(
            run(
                &db,
                "SELECT ts FROM vehicle WHERE speed NOT BETWEEN 8 AND 45"
            )
            .rows
            .len(),
            2
        );
    }

    #[test]
    fn logic_and_or_not() {
        let db = vehicle_db();
        let rs = run(
            &db,
            "SELECT ts FROM vehicle WHERE location = 'San Francisco' AND speed < 50",
        );
        assert_eq!(rs.rows.len(), 2);
        let rs = run(&db, "SELECT ts FROM vehicle WHERE speed < 1 OR speed > 60");
        assert_eq!(rs.rows.len(), 2);
        let rs = run(&db, "SELECT ts FROM vehicle WHERE NOT speed > 10");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn null_semantics_filter_unknowns() {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        );
        db.insert("t", vec![Value::Int(1), Value::Null]).unwrap();
        db.insert("t", vec![Value::Int(2), Value::Int(5)]).unwrap();
        // b > 3 is NULL for the first row → filtered out.
        assert_eq!(run(&db, "SELECT a FROM t WHERE b > 3").rows.len(), 1);
        // IS NULL finds it.
        assert_eq!(run(&db, "SELECT a FROM t WHERE b IS NULL").rows.len(), 1);
        assert_eq!(
            run(&db, "SELECT a FROM t WHERE b IS NOT NULL").rows.len(),
            1
        );
        // NULL arithmetic propagates.
        let rs = run(&db, "SELECT b + 1 FROM t WHERE a = 1");
        assert_eq!(rs.rows[0][0], Value::Null);
        // x IN (…, NULL) with no match is NULL → filtered.
        assert_eq!(
            run(&db, "SELECT a FROM t WHERE a IN (9, NULL)").rows.len(),
            0
        );
    }

    #[test]
    fn limit_caps_rows() {
        let db = vehicle_db();
        assert_eq!(run(&db, "SELECT ts FROM vehicle LIMIT 2").rows.len(), 2);
        assert_eq!(run(&db, "SELECT ts FROM vehicle LIMIT 0").rows.len(), 0);
    }

    #[test]
    fn errors_surface() {
        let db = vehicle_db();
        let q = parse_select("SELECT nope FROM vehicle").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            SqlError::UnknownColumn("nope".into())
        );
        let q = parse_select("SELECT * FROM nix").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            SqlError::UnknownTable("nix".into())
        );
        let q = parse_select("SELECT ts / 0 FROM vehicle").unwrap();
        assert_eq!(execute(&q, &db).unwrap_err(), SqlError::DivisionByZero);
        let q = parse_select("SELECT location + 1 FROM vehicle").unwrap();
        assert!(matches!(execute(&q, &db).unwrap_err(), SqlError::Type(_)));
    }

    #[test]
    fn unknown_column_in_where_detected_on_empty_table() {
        let mut db = Database::new();
        db.create_table("empty", Schema::new(vec![("a", ColumnType::Int)]));
        let q = parse_select("SELECT a FROM empty WHERE ghost = 1").unwrap();
        assert_eq!(
            execute(&q, &db).unwrap_err(),
            SqlError::UnknownColumn("ghost".into())
        );
    }

    #[test]
    fn single_column_helper() {
        let db = vehicle_db();
        let rs = run(&db, "SELECT speed FROM vehicle");
        assert_eq!(rs.single_column().unwrap().len(), 5);
        let rs = run(&db, "SELECT * FROM vehicle");
        assert!(rs.single_column().is_err());
    }
}

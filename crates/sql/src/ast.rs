//! Abstract syntax tree for the supported SELECT dialect.

use crate::value::Value;

/// Binary operators in precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference.
    Column(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Value being matched.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// Needle.
        expr: Box<Expr>,
        /// Haystack.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested value.
        expr: Box<Expr>,
        /// Inclusive lower bound.
        lo: Box<Expr>,
        /// Inclusive upper bound.
        hi: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested value.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Source table name.
    pub table: String,
    /// Optional filter predicate.
    pub where_clause: Option<Expr>,
    /// Optional row-count cap.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// The output column name for projection item `i` (aliases win,
    /// then bare column names, then a positional `col<i>` fallback).
    pub fn output_name(&self, i: usize) -> String {
        match &self.items[i] {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { alias: Some(a), .. } => a.clone(),
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => c.clone(),
            _ => format!("col{i}"),
        }
    }
}

//! In-memory tables with time-based retention.
//!
//! Clients store their private stream locally and answer queries over
//! it; old rows age out as the sliding window advances. A `Table`
//! therefore supports appending rows and pruning everything older than
//! a cutoff on a designated timestamp column.

use crate::error::SqlError;
use crate::value::Value;
use std::collections::BTreeMap;

/// Column types (informational; storage is dynamically typed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// Double-precision float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

/// A table schema: ordered `(name, type)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Schema {
        let columns: Vec<(String, ColumnType)> = columns
            .into_iter()
            .map(|(n, t)| (n.to_string(), t))
            .collect();
        for i in 0..columns.len() {
            for j in i + 1..columns.len() {
                assert_ne!(columns[i].0, columns[j].0, "duplicate column name");
            }
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The `(name, type)` pairs.
    pub fn columns(&self) -> &[(String, ColumnType)] {
        &self.columns
    }
}

/// A row is an ordered vector of values matching the schema.
pub type Row = Vec<Value>;

/// An in-memory, append-mostly table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one row after arity-checking it.
    pub fn insert(&mut self, row: Row) -> Result<(), SqlError> {
        if row.len() != self.schema.len() {
            return Err(SqlError::Arity {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The rows (read-only).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Removes all rows whose `ts_column` value is below `cutoff`
    /// (client-side retention for sliding windows). Rows with NULL or
    /// non-numeric timestamps are removed as unusable.
    ///
    /// Returns the number of rows dropped.
    pub fn prune_before(&mut self, ts_column: &str, cutoff: f64) -> Result<usize, SqlError> {
        let idx = self
            .schema
            .index_of(ts_column)
            .ok_or_else(|| SqlError::UnknownColumn(ts_column.to_string()))?;
        let before = self.rows.len();
        self.rows
            .retain(|row| row[idx].as_f64().map(|t| t >= cutoff).unwrap_or(false));
        Ok(before - self.rows.len())
    }

    /// Drops all rows.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

/// A named collection of tables (one per client).
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Catalog version: bumped whenever a table is created or
    /// replaced, so prepared plans can detect that their resolved
    /// column indices may no longer describe this catalog.
    generation: u64,
}

impl Database {
    /// Creates an empty catalog.
    pub fn new() -> Database {
        Database::default()
    }

    /// The catalog generation. Prepared plans record the generation
    /// they were compiled against and refuse to run (or are
    /// transparently recompiled by the plan cache) once it moves.
    /// Row-level changes (insert/prune/clear) do not bump it — only
    /// catalog changes do.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Creates (or replaces) a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> &mut Table {
        self.generation += 1;
        self.tables.insert(name.to_string(), Table::new(schema));
        self.tables.get_mut(name).expect("just inserted")
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| SqlError::UnknownTable(name.to_string()))
    }

    /// Inserts a row into a named table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), SqlError> {
        self.table_mut(table)?.insert(row)
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("ts", ColumnType::Int),
            ("speed", ColumnType::Float),
            ("location", ColumnType::Text),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("speed"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.names(), vec!["ts", "speed", "location"]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let _ = Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn insert_checks_arity() {
        let mut t = Table::new(schema());
        assert!(t
            .insert(vec![Value::Int(1), Value::Float(30.0), "SF".into()])
            .is_ok());
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert_eq!(
            err,
            SqlError::Arity {
                expected: 3,
                got: 1
            }
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prune_removes_old_rows() {
        let mut t = Table::new(schema());
        for ts in 0..10 {
            t.insert(vec![Value::Int(ts), Value::Float(1.0), "SF".into()])
                .unwrap();
        }
        let dropped = t.prune_before("ts", 7.0).unwrap();
        assert_eq!(dropped, 7);
        assert_eq!(t.len(), 3);
        assert!(t.rows().iter().all(|r| r[0].as_f64().unwrap() >= 7.0));
    }

    #[test]
    fn prune_drops_null_timestamps() {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Null, Value::Float(1.0), "SF".into()])
            .unwrap();
        t.insert(vec![Value::Int(5), Value::Float(1.0), "SF".into()])
            .unwrap();
        assert_eq!(t.prune_before("ts", 0.0).unwrap(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prune_unknown_column_errors() {
        let mut t = Table::new(schema());
        assert_eq!(
            t.prune_before("nope", 0.0).unwrap_err(),
            SqlError::UnknownColumn("nope".into())
        );
    }

    #[test]
    fn database_catalog() {
        let mut db = Database::new();
        db.create_table("vehicle", schema());
        assert!(db.table("vehicle").is_ok());
        assert_eq!(
            db.table("nope").unwrap_err(),
            SqlError::UnknownTable("nope".into())
        );
        db.insert(
            "vehicle",
            vec![Value::Int(1), Value::Float(15.0), "SF".into()],
        )
        .unwrap();
        assert_eq!(db.table("vehicle").unwrap().len(), 1);
        assert_eq!(db.table_names(), vec!["vehicle"]);
    }
}

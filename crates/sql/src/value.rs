//! SQL values with three-valued-logic comparison semantics.

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean (result of predicates; also storable).
    Bool(bool),
}

impl Value {
    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints coerce to floats); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Text view; `None` for non-text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL truthiness: NULL is unknown (None), numbers are true when
    /// non-zero, booleans are themselves.
    pub fn truth(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            Value::Text(_) => Some(false),
        }
    }

    /// SQL equality: NULL = anything is NULL (None); numerics coerce.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        })
    }

    /// SQL ordering comparison; `None` for NULL operands or
    /// incomparable types.
    pub fn sql_cmp(&self, other: &Value) -> Option<core::cmp::Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl core::fmt::Display for Value {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn null_propagates_through_comparisons() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.truth(), None);
    }

    #[test]
    fn numeric_coercion_in_equality() {
        assert_eq!(Value::Int(3).sql_eq(&Value::Float(3.0)), Some(true));
        assert_eq!(Value::Int(3).sql_eq(&Value::Float(3.5)), Some(false));
        assert_eq!(Value::Bool(true).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn text_compares_lexicographically() {
        assert_eq!(
            Value::from("apple").sql_cmp(&Value::from("banana")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("a").sql_eq(&Value::from("a")), Some(true));
    }

    #[test]
    fn mixed_text_number_is_incomparable() {
        assert_eq!(Value::from("5").sql_cmp(&Value::Int(5)), None);
        assert_eq!(Value::from("5").sql_eq(&Value::Int(5)), Some(false));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Int(0).truth(), Some(false));
        assert_eq!(Value::Int(7).truth(), Some(true));
        assert_eq!(Value::Float(0.0).truth(), Some(false));
        assert_eq!(Value::Bool(true).truth(), Some(true));
        assert_eq!(Value::from("x").truth(), Some(false));
    }

    #[test]
    fn display_round_trip_flavor() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::Bool(false).to_string(), "FALSE");
    }
}

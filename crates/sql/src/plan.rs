//! Prepared query plans: compile a SELECT once, execute it every
//! epoch without re-lexing, re-parsing, re-resolving or allocating.
//!
//! PrivApprox's workload is a *long-lived* query executed by millions
//! of clients once per answer frequency (paper §2.2): the SQL text
//! never changes between epochs, only the local rows do. The
//! interpreted path ([`crate::execute`]) walks the AST per row,
//! resolves column names through the schema per reference, and
//! materializes a fresh [`ResultSet`] per call — all of it redundant
//! after the first epoch. A [`PreparedSelect`] front-loads that work:
//!
//! * column references are resolved to row indices at prepare time
//!   (`UnknownColumn` surfaces once, not per execution);
//! * constant subexpressions are folded (`speed > 2*30` compiles to
//!   one comparison against `60`);
//! * projections and predicates are flattened into a closure-free
//!   opcode form (the private `Op` enum) evaluated by a small stack
//!   machine whose stack lives in a caller-owned [`EvalScratch`] —
//!   values on the stack are lifetime-free slots that reference row
//!   text and pooled literals by index, so predicate evaluation
//!   never clones a string;
//! * the common client shape — `SELECT col FROM t [WHERE col ⋈ lit]`
//!   — is additionally specialized into a fused scan that can answer
//!   "last matching value" without evaluating opcodes at all.
//!
//! Execution entry points, in decreasing generality:
//!
//! * [`PreparedSelect::execute`] — materializes a [`ResultSet`],
//!   byte-identical to the interpreted [`crate::execute`] (the
//!   property tests in `tests/properties.rs` enforce this across the
//!   whole parser corpus, errors included);
//! * [`execute_prepared_into`] — the same, but recycles the caller's
//!   [`ResultSet`] buffers;
//! * [`PreparedSelect::for_each_row`] — visitor over projected rows
//!   as borrowed [`ValueRef`]s, allocation-free at steady state;
//! * [`PreparedSelect::last_single_value`] — the PrivApprox client's
//!   question ("newest matching value of the single answer column"),
//!   served by the fused scan when available.
//!
//! Plans are bound to the catalog generation they were compiled
//! against ([`crate::Database::generation`]); executing a stale plan
//! fails with [`SqlError::StalePlan`] instead of reading through
//! remapped column indices. [`PlanCache`] wraps the
//! prepare-validate-recompile cycle keyed by [`QueryId`], which is
//! what the client consults on every `truthful_answer`.

use crate::ast::{BinaryOp, Expr, SelectItem, SelectStmt, UnaryOp};
use crate::error::SqlError;
use crate::exec::ResultSet;
use crate::table::{Database, Schema, Table};
use crate::value::Value;
use privapprox_types::fasthash::FastState;
use privapprox_types::ids::QueryId;
use privapprox_types::query::like_match;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// A borrowed SQL value: what [`PreparedSelect::for_each_row`] hands
/// its visitor. Text borrows from the row (or the plan's literal
/// pool) instead of cloning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed UTF-8 text.
    Text(&'a str),
}

impl<'a> ValueRef<'a> {
    /// Numeric view with the same coercions as [`Value::as_f64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueRef::Int(i) => Some(*i as f64),
            ValueRef::Float(f) => Some(*f),
            ValueRef::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Text view; `None` for non-text.
    pub fn as_text(&self) -> Option<&'a str> {
        match self {
            ValueRef::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True for NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Clones into an owned [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Bool(b) => Value::Bool(*b),
            ValueRef::Text(s) => Value::Text((*s).to_string()),
        }
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(v: &'a Value) -> ValueRef<'a> {
        match v {
            Value::Null => ValueRef::Null,
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Bool(b) => ValueRef::Bool(*b),
            Value::Text(s) => ValueRef::Text(s),
        }
    }
}

/// A lifetime-free stack value: scalars inline, text by reference
/// into the current row (`RowText`) or the plan's literal pool
/// (`LitText`). This is what lets the evaluation stack live in a
/// caller-owned buffer across calls with different row lifetimes.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Null,
    Int(i64),
    Float(f64),
    Bool(bool),
    /// Text in column `i` of the row under evaluation.
    RowText(u32),
    /// Text literal `i` in [`PreparedSelect::lits`].
    LitText(u32),
}

/// One opcode of the compiled expression machine. Postfix order with
/// explicit jump targets for the short-circuit forms, so evaluation
/// order — and therefore which row errors surface — is identical to
/// the tree-walking interpreter.
#[derive(Debug, Clone)]
enum Op {
    /// Push a pre-resolved literal slot.
    Push(Slot),
    /// Push column `i` of the current row.
    Col(u32),
    /// Pop two, push their comparison (`Eq`/`Neq`/`Lt`/`Le`/`Gt`/`Ge`).
    Cmp(BinaryOp),
    /// Pop two, push their arithmetic result (`Add`/`Sub`/`Mul`/`Div`).
    Arith(BinaryOp),
    /// Pop one, push its arithmetic negation.
    Neg,
    /// Pop one, push its three-valued logical negation.
    Not,
    /// Pop one, push `IS [NOT] NULL`.
    IsNull { negated: bool },
    /// Pop one, push `[NOT] LIKE patterns[pattern]`.
    Like { pattern: u32, negated: bool },
    /// `AND` short-circuit: if the top's truth is `false`, replace it
    /// with `Bool(false)` and jump to `end` (skipping the rhs).
    AndJump { end: u32 },
    /// `OR` short-circuit: if the top's truth is `true`, replace it
    /// with `Bool(true)` and jump to `end`.
    OrJump { end: u32 },
    /// Pop rhs and lhs, push their three-valued `AND`.
    AndCombine,
    /// Pop rhs and lhs, push their three-valued `OR`.
    OrCombine,
    /// Pop hi, lo and the tested value, push `[NOT] BETWEEN`.
    Between { negated: bool },
    /// `IN` prologue: if the needle on top is NULL, replace it with
    /// NULL and jump to `end`; otherwise push the saw-null sentinel.
    InBegin { end: u32 },
    /// One `IN` list item: pop it, compare against the needle; on a
    /// match collapse to the result and jump to `end`, on an
    /// incomparable NULL set the sentinel.
    InCheck { end: u32, negated: bool },
    /// `IN` epilogue: collapse needle + sentinel into the final
    /// three-valued result.
    InEnd { negated: bool },
}

/// The specialized fused scan for `SELECT col FROM t [WHERE col ⋈
/// lit] [LIMIT n]`: no opcodes, no projection evaluation, just a row
/// walk. Detected at prepare time; only shapes whose evaluation can
/// never error qualify, which is what makes it safe for
/// [`PreparedSelect::last_single_value`] to skip rows.
#[derive(Debug, Clone)]
struct FastScan {
    /// `WHERE` as (column, comparison, literal, column-on-lhs);
    /// `None` means no filter.
    pred: Option<(u32, BinaryOp, Value, bool)>,
    /// The single projected column.
    col: u32,
}

impl FastScan {
    /// Exactly the interpreter's `WHERE` semantics: keep the row iff
    /// the predicate's truth is `Some(true)`.
    #[inline]
    fn keeps(&self, row: &[Value]) -> bool {
        let Some((col, op, lit, col_first)) = &self.pred else {
            return true;
        };
        let v = &row[*col as usize];
        let (a, b) = if *col_first { (v, lit) } else { (lit, v) };
        use core::cmp::Ordering::*;
        match op {
            BinaryOp::Eq => a.sql_eq(b) == Some(true),
            BinaryOp::Neq => a.sql_eq(b) == Some(false),
            BinaryOp::Lt => a.sql_cmp(b) == Some(Less),
            BinaryOp::Le => matches!(a.sql_cmp(b), Some(Less | Equal)),
            BinaryOp::Gt => a.sql_cmp(b) == Some(Greater),
            BinaryOp::Ge => matches!(a.sql_cmp(b), Some(Greater | Equal)),
            _ => unreachable!("only comparisons are specialized"),
        }
    }
}

/// One projection item after compilation.
#[derive(Debug, Clone)]
enum PlannedItem {
    /// `*`: every row column in schema order.
    AllColumns,
    /// A compiled expression.
    Expr(Vec<Op>),
}

/// A SELECT compiled against one catalog generation. See the module
/// docs for what compilation buys and which entry point to use.
#[derive(Debug, Clone)]
pub struct PreparedSelect {
    table: String,
    generation: u64,
    /// Output column names, wildcards expanded.
    columns: Vec<String>,
    items: Vec<PlannedItem>,
    filter: Option<Vec<Op>>,
    /// Text-literal pool referenced by [`Slot::LitText`].
    lits: Vec<Value>,
    /// LIKE-pattern pool.
    patterns: Vec<String>,
    limit: Option<u64>,
    fast: Option<FastScan>,
}

/// Caller-owned evaluation buffers: the opcode stack and the
/// projected-row slots. One warm `EvalScratch` makes
/// [`PreparedSelect::for_each_row`] allocation-free.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    stack: Vec<Slot>,
    out: Vec<Slot>,
}

impl EvalScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

/// A projected row handed to the [`PreparedSelect::for_each_row`]
/// visitor; values resolve lazily as borrowed [`ValueRef`]s.
pub struct RowView<'v> {
    plan: &'v PreparedSelect,
    row: &'v [Value],
    slots: &'v [Slot],
}

impl<'v> RowView<'v> {
    /// Number of output columns.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the projection is empty (never for valid plans).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Output column `i` of this row.
    pub fn get(&self, i: usize) -> ValueRef<'v> {
        resolve(self.slots[i], self.row, &self.plan.lits)
    }
}

/// Resolves a slot to a borrowed value against its row and pool.
#[inline]
fn resolve<'a>(slot: Slot, row: &'a [Value], lits: &'a [Value]) -> ValueRef<'a> {
    match slot {
        Slot::Null => ValueRef::Null,
        Slot::Int(i) => ValueRef::Int(i),
        Slot::Float(f) => ValueRef::Float(f),
        Slot::Bool(b) => ValueRef::Bool(b),
        Slot::RowText(i) => match &row[i as usize] {
            Value::Text(s) => ValueRef::Text(s),
            _ => unreachable!("RowText slot over non-text column"),
        },
        Slot::LitText(i) => match &lits[i as usize] {
            Value::Text(s) => ValueRef::Text(s),
            _ => unreachable!("LitText slot over non-text literal"),
        },
    }
}

impl PreparedSelect {
    /// Compiles `stmt` against the catalog's current state.
    ///
    /// Unknown tables/columns error here, once, instead of on every
    /// execution. The plan records [`Database::generation`] and
    /// refuses to run once the catalog changes.
    pub fn prepare(stmt: &SelectStmt, db: &Database) -> Result<PreparedSelect, SqlError> {
        let table = db.table(&stmt.table)?;
        let schema = table.schema();
        let mut plan = PreparedSelect {
            table: stmt.table.clone(),
            generation: db.generation(),
            columns: Vec::new(),
            items: Vec::with_capacity(stmt.items.len()),
            filter: None,
            lits: Vec::new(),
            patterns: Vec::new(),
            limit: stmt.limit,
            fast: None,
        };
        // Fold constants first so `2*30` specializes as well as `60`
        // does; folding never introduces or hides errors (a constant
        // subexpression that fails to evaluate is left unfolded and
        // errors at execution, exactly like the interpreter).
        let folded_items: Vec<SelectItem> = stmt
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: fold_constants(expr),
                    alias: alias.clone(),
                },
            })
            .collect();
        let folded_filter = stmt.where_clause.as_ref().map(|w| fold_constants(w));

        for (i, item) in folded_items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for name in schema.names() {
                        plan.columns.push(name.to_string());
                    }
                    plan.items.push(PlannedItem::AllColumns);
                }
                SelectItem::Expr { expr, .. } => {
                    let mut ops = Vec::new();
                    compile_expr(expr, schema, &mut plan.lits, &mut plan.patterns, &mut ops)?;
                    plan.columns.push(stmt.output_name(i));
                    plan.items.push(PlannedItem::Expr(ops));
                }
            }
        }
        if let Some(w) = &folded_filter {
            let mut ops = Vec::new();
            compile_expr(w, schema, &mut plan.lits, &mut plan.patterns, &mut ops)?;
            plan.filter = Some(ops);
        }
        plan.fast = detect_fast(&folded_items, folded_filter.as_ref(), schema);
        Ok(plan)
    }

    /// The source table name.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// The catalog generation this plan was compiled against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Output column names (wildcards expanded).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// True when the fused single-column scan specialization applies
    /// (diagnostics; the entry points pick it automatically).
    pub fn is_fast_scan(&self) -> bool {
        self.fast.is_some()
    }

    /// Runs the plan, materializing a fresh [`ResultSet`] —
    /// byte-identical to interpreting the original statement with
    /// [`crate::execute`], errors included.
    pub fn execute(&self, db: &Database) -> Result<ResultSet, SqlError> {
        let mut out = ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
        };
        let mut scratch = EvalScratch::new();
        execute_prepared_into(self, db, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Streams every emitted row to `visit` as a [`RowView`] without
    /// materializing anything; with a warm `scratch` the call is
    /// allocation-free. Rows are visited in table order, after the
    /// `WHERE` filter and under the `LIMIT` cap, with projection
    /// expressions evaluated eagerly so errors surface for exactly
    /// the rows the interpreter would have evaluated.
    pub fn for_each_row<F>(
        &self,
        db: &Database,
        scratch: &mut EvalScratch,
        mut visit: F,
    ) -> Result<(), SqlError>
    where
        F: FnMut(RowView<'_>),
    {
        let table = self.table_for(db)?;
        let limit = self.limit.unwrap_or(u64::MAX);
        if limit == 0 {
            return Ok(());
        }
        let mut emitted = 0u64;
        for row in table.rows() {
            if let Some(filter) = &self.filter {
                let slot = run_ops(filter, &self.lits, &self.patterns, row, &mut scratch.stack)?;
                if truth_of(slot) != Some(true) {
                    continue;
                }
            }
            scratch.out.clear();
            for item in &self.items {
                match item {
                    PlannedItem::AllColumns => {
                        for (i, v) in row.iter().enumerate() {
                            scratch.out.push(slot_of_row_value(v, i as u32));
                        }
                    }
                    PlannedItem::Expr(ops) => {
                        let slot =
                            run_ops(ops, &self.lits, &self.patterns, row, &mut scratch.stack)?;
                        scratch.out.push(slot);
                    }
                }
            }
            visit(RowView {
                plan: self,
                row,
                slots: &scratch.out,
            });
            emitted += 1;
            if emitted >= limit {
                break;
            }
        }
        Ok(())
    }

    /// The PrivApprox client's question: the value of the single
    /// output column in the *last* emitted row (`None` when no row
    /// matches). Errors if the projection is not exactly one column,
    /// with the same message as [`ResultSet::single_column`].
    ///
    /// Uses the fused scan when the plan qualifies — for an unlimited
    /// query that is a reverse walk stopping at the first match — and
    /// falls back to the full opcode scan otherwise, so error
    /// behaviour always matches interpret-then-`single_column`.
    pub fn last_single_value<'a>(
        &'a self,
        db: &'a Database,
        scratch: &mut EvalScratch,
    ) -> Result<Option<ValueRef<'a>>, SqlError> {
        let table = self.table_for(db)?;
        if let Some(fast) = &self.fast {
            // Fast shapes cannot error per row, so skipping rows is
            // observationally identical to evaluating them.
            let rows = table.rows();
            let col = fast.col as usize;
            let limit = self.limit.unwrap_or(u64::MAX);
            if limit == 0 {
                return Ok(None);
            }
            if limit >= rows.len() as u64 {
                for row in rows.iter().rev() {
                    if fast.keeps(row) {
                        return Ok(Some(ValueRef::from(&row[col])));
                    }
                }
                return Ok(None);
            }
            let mut last = None;
            let mut emitted = 0u64;
            for row in rows {
                if fast.keeps(row) {
                    last = Some(ValueRef::from(&row[col]));
                    emitted += 1;
                    if emitted >= limit {
                        break;
                    }
                }
            }
            return Ok(last);
        }
        // Generic path: full scan (errors must surface for every row
        // the interpreter would evaluate), remembering which emitted
        // row and which slot produced the final value. Borrowed text
        // cannot escape the visitor closure, so a text result is
        // re-resolved by walking the filtered rows a second time —
        // slots are indices, and the table has not moved.
        let mut last: Option<(usize, Slot)> = None;
        let mut emitted = 0usize;
        self.for_each_row(db, scratch, |view| {
            if view.slots.len() == 1 {
                last = Some((emitted, view.slots[0]));
            }
            emitted += 1;
        })?;
        if self.columns.len() != 1 {
            return Err(SqlError::Type(format!(
                "expected exactly 1 output column, got {}",
                self.columns.len()
            )));
        }
        match last {
            None => Ok(None),
            Some((target, Slot::RowText(col))) => {
                let mut hit: Option<&Value> = None;
                let mut i = 0usize;
                self.for_each_emitted_source(table, scratch, |row| {
                    if i == target {
                        hit = Some(&row[col as usize]);
                    }
                    i += 1;
                })?;
                Ok(hit.map(ValueRef::from))
            }
            Some((_, slot)) => Ok(Some(resolve(slot, &[], &self.lits))),
        }
    }

    /// Internal: walks the *source* rows that pass the filter (under
    /// LIMIT), without evaluating projections. Only used to re-find a
    /// row already visited by a successful scan.
    fn for_each_emitted_source<'a, F>(
        &self,
        table: &'a Table,
        scratch: &mut EvalScratch,
        mut visit: F,
    ) -> Result<(), SqlError>
    where
        F: FnMut(&'a [Value]),
    {
        let limit = self.limit.unwrap_or(u64::MAX);
        if limit == 0 {
            return Ok(());
        }
        let mut emitted = 0u64;
        for row in table.rows() {
            if let Some(filter) = &self.filter {
                let slot = run_ops(filter, &self.lits, &self.patterns, row, &mut scratch.stack)?;
                if truth_of(slot) != Some(true) {
                    continue;
                }
            }
            visit(row);
            emitted += 1;
            if emitted >= limit {
                break;
            }
        }
        Ok(())
    }

    /// Looks up the plan's table, checking staleness first.
    fn table_for<'a>(&self, db: &'a Database) -> Result<&'a Table, SqlError> {
        if db.generation() != self.generation {
            return Err(SqlError::StalePlan);
        }
        db.table(&self.table)
    }
}

/// Runs a prepared plan into a caller-owned [`ResultSet`], recycling
/// its buffers (columns and per-row vectors keep their allocations
/// across calls). On error the contents of `out` are unspecified.
pub fn execute_prepared_into(
    plan: &PreparedSelect,
    db: &Database,
    scratch: &mut EvalScratch,
    out: &mut ResultSet,
) -> Result<(), SqlError> {
    out.columns.clear();
    out.columns.extend(plan.columns.iter().cloned());
    let mut used = 0usize;
    let rows = &mut out.rows;
    plan.for_each_row(db, scratch, |view| {
        if used < rows.len() {
            let dst = &mut rows[used];
            dst.clear();
            dst.extend((0..view.len()).map(|i| view.get(i).to_value()));
        } else {
            rows.push((0..view.len()).map(|i| view.get(i).to_value()).collect());
        }
        used += 1;
    })?;
    rows.truncate(used);
    Ok(())
}

/// A cache of prepared plans keyed by [`QueryId`] — what the client
/// consults on every answer epoch.
///
/// An entry is reused only while both of these hold, otherwise it is
/// transparently recompiled:
///
/// * the SQL text is unchanged (a re-registered `QueryId` with
///   different SQL invalidates the entry);
/// * the catalog generation is unchanged (a re-created table
///   invalidates every plan compiled before it).
#[derive(Debug, Default)]
pub struct PlanCache {
    // `FastState`: looked up once per answered message; QueryIds are
    // analyst-assigned, not attacker-chosen, so SipHash buys nothing.
    plans: HashMap<QueryId, CachedPlan, FastState>,
}

#[derive(Debug)]
struct CachedPlan {
    sql: String,
    plan: PreparedSelect,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Returns the cached plan for `id`, (re)compiling `sql` against
    /// `db` when the entry is missing, carries different SQL, or was
    /// compiled against an older catalog generation. The hot-path
    /// cost of a hit is one hash lookup plus one string compare.
    pub fn get_or_prepare(
        &mut self,
        id: QueryId,
        sql: &str,
        db: &Database,
    ) -> Result<&PreparedSelect, SqlError> {
        match self.plans.entry(id) {
            Entry::Occupied(entry) => {
                let cached = entry.into_mut();
                if cached.sql != sql || cached.plan.generation() != db.generation() {
                    let stmt = crate::parser::parse_select(sql)?;
                    cached.plan = PreparedSelect::prepare(&stmt, db)?;
                    cached.sql.clear();
                    cached.sql.push_str(sql);
                }
                Ok(&cached.plan)
            }
            Entry::Vacant(slot) => {
                let stmt = crate::parser::parse_select(sql)?;
                let plan = PreparedSelect::prepare(&stmt, db)?;
                Ok(&slot
                    .insert(CachedPlan {
                        sql: sql.to_string(),
                        plan,
                    })
                    .plan)
            }
        }
    }

    /// Drops the plan for `id` (if any).
    pub fn invalidate(&mut self, id: QueryId) {
        self.plans.remove(&id);
    }

    /// Drops every cached plan.
    pub fn clear(&mut self) {
        self.plans.clear();
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// Bottom-up constant folding. A subexpression with no column
/// references whose evaluation *succeeds* is replaced by its literal
/// value; one that errors (`1/0`, `'a' + 1`) is kept verbatim so the
/// error still surfaces per evaluated row, like the interpreter.
fn fold_constants(expr: &Expr) -> Expr {
    let folded = match expr {
        Expr::Literal(_) | Expr::Column(_) => expr.clone(),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(fold_constants(lhs)),
            rhs: Box::new(fold_constants(rhs)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(fold_constants(expr)),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(fold_constants(expr)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(fold_constants(expr)),
            list: list.iter().map(fold_constants).collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(fold_constants(expr)),
            lo: Box::new(fold_constants(lo)),
            hi: Box::new(fold_constants(hi)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(fold_constants(expr)),
            negated: *negated,
        },
    };
    if matches!(folded, Expr::Literal(_)) || !is_constant(&folded) {
        return folded;
    }
    // Evaluate against an empty schema/row: constant expressions
    // never touch either.
    let empty = Schema::new(vec![]);
    match crate::exec::eval(&folded, &empty, &[]) {
        Ok(v) => Expr::Literal(v),
        Err(_) => folded,
    }
}

/// True when the expression references no columns.
fn is_constant(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Column(_) => false,
        Expr::Binary { lhs, rhs, .. } => is_constant(lhs) && is_constant(rhs),
        Expr::Unary { expr, .. } => is_constant(expr),
        Expr::Like { expr, .. } => is_constant(expr),
        Expr::InList { expr, list, .. } => is_constant(expr) && list.iter().all(is_constant),
        Expr::Between { expr, lo, hi, .. } => {
            is_constant(expr) && is_constant(lo) && is_constant(hi)
        }
        Expr::IsNull { expr, .. } => is_constant(expr),
    }
}

/// Compiles one expression to postfix opcodes, resolving columns.
fn compile_expr(
    expr: &Expr,
    schema: &Schema,
    lits: &mut Vec<Value>,
    patterns: &mut Vec<String>,
    ops: &mut Vec<Op>,
) -> Result<(), SqlError> {
    match expr {
        Expr::Literal(v) => {
            ops.push(Op::Push(lit_slot(v, lits)));
        }
        Expr::Column(name) => {
            let idx = schema
                .index_of(name)
                .ok_or_else(|| SqlError::UnknownColumn(name.clone()))?;
            ops.push(Op::Col(idx as u32));
        }
        Expr::Unary { op, expr } => {
            compile_expr(expr, schema, lits, patterns, ops)?;
            ops.push(match op {
                UnaryOp::Not => Op::Not,
                UnaryOp::Neg => Op::Neg,
            });
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinaryOp::And | BinaryOp::Or => {
                compile_expr(lhs, schema, lits, patterns, ops)?;
                let jump_at = ops.len();
                ops.push(Op::AndJump { end: 0 }); // patched below
                compile_expr(rhs, schema, lits, patterns, ops)?;
                ops.push(if *op == BinaryOp::And {
                    Op::AndCombine
                } else {
                    Op::OrCombine
                });
                let end = ops.len() as u32;
                ops[jump_at] = if *op == BinaryOp::And {
                    Op::AndJump { end }
                } else {
                    Op::OrJump { end }
                };
            }
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                compile_expr(lhs, schema, lits, patterns, ops)?;
                compile_expr(rhs, schema, lits, patterns, ops)?;
                ops.push(Op::Cmp(*op));
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                compile_expr(lhs, schema, lits, patterns, ops)?;
                compile_expr(rhs, schema, lits, patterns, ops)?;
                ops.push(Op::Arith(*op));
            }
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            compile_expr(expr, schema, lits, patterns, ops)?;
            let idx = patterns.len() as u32;
            patterns.push(pattern.clone());
            ops.push(Op::Like {
                pattern: idx,
                negated: *negated,
            });
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            compile_expr(expr, schema, lits, patterns, ops)?;
            let begin_at = ops.len();
            ops.push(Op::InBegin { end: 0 }); // patched below
            let mut checks = Vec::with_capacity(list.len());
            for item in list {
                compile_expr(item, schema, lits, patterns, ops)?;
                checks.push(ops.len());
                ops.push(Op::InCheck {
                    end: 0,
                    negated: *negated,
                });
            }
            ops.push(Op::InEnd { negated: *negated });
            let end = ops.len() as u32;
            ops[begin_at] = Op::InBegin { end };
            for at in checks {
                ops[at] = Op::InCheck {
                    end,
                    negated: *negated,
                };
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            compile_expr(expr, schema, lits, patterns, ops)?;
            compile_expr(lo, schema, lits, patterns, ops)?;
            compile_expr(hi, schema, lits, patterns, ops)?;
            ops.push(Op::Between { negated: *negated });
        }
        Expr::IsNull { expr, negated } => {
            compile_expr(expr, schema, lits, patterns, ops)?;
            ops.push(Op::IsNull { negated: *negated });
        }
    }
    Ok(())
}

/// Interns a literal as a pushable slot (text goes to the pool).
fn lit_slot(v: &Value, lits: &mut Vec<Value>) -> Slot {
    match v {
        Value::Null => Slot::Null,
        Value::Int(i) => Slot::Int(*i),
        Value::Float(f) => Slot::Float(*f),
        Value::Bool(b) => Slot::Bool(*b),
        Value::Text(_) => {
            if let Some(i) = lits.iter().position(|l| l == v) {
                Slot::LitText(i as u32)
            } else {
                lits.push(v.clone());
                Slot::LitText((lits.len() - 1) as u32)
            }
        }
    }
}

/// Detects the fused single-column scan shape (see [`FastScan`]).
fn detect_fast(
    items: &[SelectItem],
    filter: Option<&Expr>,
    schema: &Schema,
) -> Option<FastScan> {
    let [SelectItem::Expr {
        expr: Expr::Column(col),
        ..
    }] = items
    else {
        return None;
    };
    let col = schema.index_of(col)? as u32;
    let pred = match filter {
        None => None,
        Some(Expr::Binary { op, lhs, rhs })
            if matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::Neq
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
            ) =>
        {
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => {
                    Some((schema.index_of(c)? as u32, *op, v.clone(), true))
                }
                (Expr::Literal(v), Expr::Column(c)) => {
                    Some((schema.index_of(c)? as u32, *op, v.clone(), false))
                }
                _ => return None,
            }
        }
        Some(_) => return None,
    };
    Some(FastScan { pred, col })
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

/// SQL truthiness of a slot (no resolution needed: text is always
/// "false" and scalars carry their own value).
#[inline]
fn truth_of(slot: Slot) -> Option<bool> {
    match slot {
        Slot::Null => None,
        Slot::Bool(b) => Some(b),
        Slot::Int(i) => Some(i != 0),
        Slot::Float(f) => Some(f != 0.0),
        Slot::RowText(_) | Slot::LitText(_) => Some(false),
    }
}

/// Numeric view of a slot (same coercions as [`Value::as_f64`]).
#[inline]
fn f64_of(slot: Slot) -> Option<f64> {
    match slot {
        Slot::Int(i) => Some(i as f64),
        Slot::Float(f) => Some(f),
        Slot::Bool(b) => Some(if b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

/// Converts a row value to a slot (text by reference).
#[inline]
fn slot_of_row_value(v: &Value, col: u32) -> Slot {
    match v {
        Value::Null => Slot::Null,
        Value::Int(i) => Slot::Int(*i),
        Value::Float(f) => Slot::Float(*f),
        Value::Bool(b) => Slot::Bool(*b),
        Value::Text(_) => Slot::RowText(col),
    }
}

/// Owned clone of a slot's value — error paths only.
fn value_of(slot: Slot, row: &[Value], lits: &[Value]) -> Value {
    resolve(slot, row, lits).to_value()
}

/// Resolves a text slot to its backing string.
#[inline]
fn text_of<'a>(slot: Slot, row: &'a [Value], lits: &'a [Value]) -> &'a str {
    match resolve(slot, row, lits) {
        ValueRef::Text(s) => s,
        _ => unreachable!("text_of on non-text slot"),
    }
}

/// [`Value::sql_eq`] over slots.
fn slot_eq(a: Slot, b: Slot, row: &[Value], lits: &[Value]) -> Option<bool> {
    if matches!(a, Slot::Null) || matches!(b, Slot::Null) {
        return None;
    }
    Some(match (a, b) {
        (Slot::RowText(_) | Slot::LitText(_), Slot::RowText(_) | Slot::LitText(_)) => {
            text_of(a, row, lits) == text_of(b, row, lits)
        }
        (Slot::Bool(x), Slot::Bool(y)) => x == y,
        _ => match (f64_of(a), f64_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    })
}

/// [`Value::sql_cmp`] over slots.
fn slot_cmp(a: Slot, b: Slot, row: &[Value], lits: &[Value]) -> Option<core::cmp::Ordering> {
    if matches!(a, Slot::Null) || matches!(b, Slot::Null) {
        return None;
    }
    match (a, b) {
        (Slot::RowText(_) | Slot::LitText(_), Slot::RowText(_) | Slot::LitText(_)) => {
            Some(text_of(a, row, lits).cmp(text_of(b, row, lits)))
        }
        _ => {
            let (x, y) = (f64_of(a)?, f64_of(b)?);
            x.partial_cmp(&y)
        }
    }
}

/// Executes a compiled opcode sequence against one row, returning the
/// result slot. The stack is caller-owned and cleared on entry.
fn run_ops(
    ops: &[Op],
    lits: &[Value],
    patterns: &[String],
    row: &[Value],
    stack: &mut Vec<Slot>,
) -> Result<Slot, SqlError> {
    stack.clear();
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Push(slot) => stack.push(*slot),
            Op::Col(i) => stack.push(slot_of_row_value(&row[*i as usize], *i)),
            Op::Cmp(op) => {
                let r = stack.pop().expect("cmp rhs");
                let l = stack.pop().expect("cmp lhs");
                let slot = match op {
                    BinaryOp::Eq | BinaryOp::Neq => match slot_eq(l, r, row, lits) {
                        None => Slot::Null,
                        Some(eq) => Slot::Bool(if *op == BinaryOp::Eq { eq } else { !eq }),
                    },
                    _ => match slot_cmp(l, r, row, lits) {
                        None => Slot::Null,
                        Some(ord) => {
                            use core::cmp::Ordering::*;
                            Slot::Bool(match op {
                                BinaryOp::Lt => ord == Less,
                                BinaryOp::Le => ord != Greater,
                                BinaryOp::Gt => ord == Greater,
                                BinaryOp::Ge => ord != Less,
                                _ => unreachable!(),
                            })
                        }
                    },
                };
                stack.push(slot);
            }
            Op::Arith(op) => {
                let r = stack.pop().expect("arith rhs");
                let l = stack.pop().expect("arith lhs");
                stack.push(arith(*op, l, r, row, lits)?);
            }
            Op::Neg => {
                let v = stack.pop().expect("neg operand");
                let slot = match v {
                    Slot::Null => Slot::Null,
                    Slot::Int(i) => Slot::Int(-i),
                    Slot::Float(f) => Slot::Float(-f),
                    other => {
                        return Err(SqlError::Type(format!(
                            "cannot negate {}",
                            value_of(other, row, lits)
                        )))
                    }
                };
                stack.push(slot);
            }
            Op::Not => {
                let v = stack.pop().expect("not operand");
                stack.push(match truth_of(v) {
                    None => Slot::Null,
                    Some(b) => Slot::Bool(!b),
                });
            }
            Op::IsNull { negated } => {
                let v = stack.pop().expect("is-null operand");
                stack.push(Slot::Bool(matches!(v, Slot::Null) != *negated));
            }
            Op::Like { pattern, negated } => {
                let v = stack.pop().expect("like operand");
                let slot = match v {
                    Slot::Null => Slot::Null,
                    Slot::RowText(_) | Slot::LitText(_) => {
                        let hit = like_match(&patterns[*pattern as usize], text_of(v, row, lits));
                        Slot::Bool(hit != *negated)
                    }
                    other => {
                        return Err(SqlError::Type(format!(
                            "LIKE needs text, got {}",
                            value_of(other, row, lits)
                        )))
                    }
                };
                stack.push(slot);
            }
            Op::AndJump { end } => {
                let l = *stack.last().expect("and lhs");
                if truth_of(l) == Some(false) {
                    *stack.last_mut().expect("and lhs") = Slot::Bool(false);
                    pc = *end as usize;
                    continue;
                }
            }
            Op::OrJump { end } => {
                let l = *stack.last().expect("or lhs");
                if truth_of(l) == Some(true) {
                    *stack.last_mut().expect("or lhs") = Slot::Bool(true);
                    pc = *end as usize;
                    continue;
                }
            }
            Op::AndCombine => {
                let r = truth_of(stack.pop().expect("and rhs"));
                let l = truth_of(stack.pop().expect("and lhs"));
                stack.push(match (l, r) {
                    (Some(true), Some(b)) => Slot::Bool(b),
                    (Some(b), Some(true)) => Slot::Bool(b),
                    (_, Some(false)) => Slot::Bool(false),
                    _ => Slot::Null,
                });
            }
            Op::OrCombine => {
                let r = truth_of(stack.pop().expect("or rhs"));
                let l = truth_of(stack.pop().expect("or lhs"));
                stack.push(match (l, r) {
                    (Some(false), Some(b)) => Slot::Bool(b),
                    (Some(b), Some(false)) => Slot::Bool(b),
                    (_, Some(true)) => Slot::Bool(true),
                    _ => Slot::Null,
                });
            }
            Op::Between { negated } => {
                let hi = stack.pop().expect("between hi");
                let lo = stack.pop().expect("between lo");
                let v = stack.pop().expect("between value");
                let slot = match (slot_cmp(v, lo, row, lits), slot_cmp(v, hi, row, lits)) {
                    (Some(a), Some(b)) => {
                        let inside =
                            a != core::cmp::Ordering::Less && b != core::cmp::Ordering::Greater;
                        Slot::Bool(inside != *negated)
                    }
                    _ => Slot::Null,
                };
                stack.push(slot);
            }
            Op::InBegin { end } => {
                let needle = *stack.last().expect("in needle");
                if matches!(needle, Slot::Null) {
                    *stack.last_mut().expect("in needle") = Slot::Null;
                    pc = *end as usize;
                    continue;
                }
                // Saw-null sentinel rides on top of the needle.
                stack.push(Slot::Bool(false));
            }
            Op::InCheck { end, negated } => {
                let item = stack.pop().expect("in item");
                let needle = stack[stack.len() - 2];
                match slot_eq(needle, item, row, lits) {
                    Some(true) => {
                        stack.pop(); // sentinel
                        stack.pop(); // needle
                        stack.push(Slot::Bool(!*negated));
                        pc = *end as usize;
                        continue;
                    }
                    Some(false) => {}
                    None => {
                        let n = stack.len();
                        stack[n - 1] = Slot::Bool(true);
                    }
                }
            }
            Op::InEnd { negated } => {
                let saw_null = matches!(stack.pop().expect("in sentinel"), Slot::Bool(true));
                stack.pop().expect("in needle");
                stack.push(if saw_null {
                    Slot::Null
                } else {
                    Slot::Bool(*negated)
                });
            }
        }
        pc += 1;
    }
    Ok(stack.pop().expect("expression result"))
}

/// [`crate::exec`]'s arithmetic semantics over slots: NULL
/// propagates, int/int stays integral (wrapping, division checked),
/// everything else coerces to f64 or type-errors with both operands
/// displayed.
fn arith(op: BinaryOp, l: Slot, r: Slot, row: &[Value], lits: &[Value]) -> Result<Slot, SqlError> {
    if matches!(l, Slot::Null) || matches!(r, Slot::Null) {
        return Ok(Slot::Null);
    }
    if let (Slot::Int(a), Slot::Int(b)) = (l, r) {
        return match op {
            BinaryOp::Add => Ok(Slot::Int(a.wrapping_add(b))),
            BinaryOp::Sub => Ok(Slot::Int(a.wrapping_sub(b))),
            BinaryOp::Mul => Ok(Slot::Int(a.wrapping_mul(b))),
            BinaryOp::Div => {
                if b == 0 {
                    Err(SqlError::DivisionByZero)
                } else {
                    Ok(Slot::Int(a / b))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = match (f64_of(l), f64_of(r)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(SqlError::Type(format!(
                "arithmetic needs numbers, got {} and {}",
                value_of(l, row, lits),
                value_of(r, row, lits)
            )))
        }
    };
    match op {
        BinaryOp::Add => Ok(Slot::Float(a + b)),
        BinaryOp::Sub => Ok(Slot::Float(a - b)),
        BinaryOp::Mul => Ok(Slot::Float(a * b)),
        BinaryOp::Div => {
            if b == 0.0 {
                Err(SqlError::DivisionByZero)
            } else {
                Ok(Slot::Float(a / b))
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::parser::parse_select;
    use crate::table::ColumnType;
    use privapprox_types::ids::AnalystId;

    fn vehicle_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "vehicle",
            Schema::new(vec![
                ("ts", ColumnType::Int),
                ("speed", ColumnType::Float),
                ("location", ColumnType::Text),
            ]),
        );
        let rows: Vec<(i64, f64, &str)> = vec![
            (1, 15.0, "San Francisco"),
            (2, 42.5, "San Francisco"),
            (3, 8.0, "Oakland"),
            (4, 65.0, "San Francisco"),
            (5, 0.0, "Berkeley"),
        ];
        for (ts, speed, loc) in rows {
            db.insert(
                "vehicle",
                vec![Value::Int(ts), Value::Float(speed), loc.into()],
            )
            .unwrap();
        }
        db
    }

    /// Prepared and interpreted execution must agree exactly,
    /// including the error when there is one.
    fn assert_equivalent(db: &Database, sql: &str) {
        let stmt = parse_select(sql).expect("parses");
        let interpreted = execute(&stmt, db);
        let prepared = PreparedSelect::prepare(&stmt, db).and_then(|p| p.execute(db));
        assert_eq!(prepared, interpreted, "query: {sql}");
    }

    #[test]
    fn prepared_matches_interpreted_on_representative_queries() {
        let db = vehicle_db();
        for sql in [
            "SELECT speed FROM vehicle WHERE location='San Francisco'",
            "SELECT * FROM vehicle",
            "SELECT speed * 2 AS dbl FROM vehicle WHERE ts = 1",
            "SELECT ts + 10 FROM vehicle WHERE ts = 3",
            "SELECT 7 / 2 FROM vehicle LIMIT 1",
            "SELECT ts FROM vehicle WHERE speed > 40",
            "SELECT ts FROM vehicle WHERE speed <= 8",
            "SELECT ts FROM vehicle WHERE speed != 0",
            "SELECT ts FROM vehicle WHERE location LIKE 'San%'",
            "SELECT ts FROM vehicle WHERE location NOT LIKE '%land'",
            "SELECT ts FROM vehicle WHERE ts IN (1, 3, 99)",
            "SELECT ts FROM vehicle WHERE ts IN (1, NULL)",
            "SELECT ts FROM vehicle WHERE speed BETWEEN 8 AND 45",
            "SELECT ts FROM vehicle WHERE speed NOT BETWEEN 8 AND 45",
            "SELECT ts FROM vehicle WHERE location = 'San Francisco' AND speed < 50",
            "SELECT ts FROM vehicle WHERE speed < 1 OR speed > 60",
            "SELECT ts FROM vehicle WHERE NOT speed > 10",
            "SELECT ts FROM vehicle WHERE location IS NOT NULL",
            "SELECT ts FROM vehicle LIMIT 2",
            "SELECT ts FROM vehicle LIMIT 0",
            "SELECT -speed FROM vehicle",
            "SELECT ts FROM vehicle WHERE speed > 2 * 20 + 5",
            "SELECT location FROM vehicle WHERE ts >= 3",
            // Error cases: identical errors, identical messages.
            "SELECT ts / 0 FROM vehicle",
            "SELECT location + 1 FROM vehicle",
            "SELECT -location FROM vehicle",
            "SELECT ts FROM vehicle WHERE ts LIKE 'x%'",
            "SELECT ts FROM vehicle WHERE ts IN (1, 'a' + 1)",
        ] {
            assert_equivalent(&db, sql);
        }
    }

    #[test]
    fn unknown_columns_error_at_prepare_time() {
        let db = vehicle_db();
        let stmt = parse_select("SELECT nope FROM vehicle").unwrap();
        assert_eq!(
            PreparedSelect::prepare(&stmt, &db).unwrap_err(),
            SqlError::UnknownColumn("nope".into())
        );
        let stmt = parse_select("SELECT ts FROM vehicle WHERE ghost = 1").unwrap();
        assert_eq!(
            PreparedSelect::prepare(&stmt, &db).unwrap_err(),
            SqlError::UnknownColumn("ghost".into())
        );
        let stmt = parse_select("SELECT * FROM nix").unwrap();
        assert_eq!(
            PreparedSelect::prepare(&stmt, &db).unwrap_err(),
            SqlError::UnknownTable("nix".into())
        );
    }

    #[test]
    fn constant_division_by_zero_stays_a_runtime_error() {
        // `7/0` must NOT error at prepare time: on an empty table the
        // interpreter returns an empty result, and so must we.
        let mut db = Database::new();
        db.create_table("empty", Schema::new(vec![("a", ColumnType::Int)]));
        let stmt = parse_select("SELECT 7 / 0 FROM empty").unwrap();
        let plan = PreparedSelect::prepare(&stmt, &db).expect("prepare must not fold the error");
        assert_eq!(plan.execute(&db).unwrap().rows.len(), 0);
        // With one row, the error surfaces exactly like interpretation.
        db.table_mut("empty").unwrap().insert(vec![Value::Int(1)]).unwrap();
        let plan = PreparedSelect::prepare(&stmt, &db).unwrap();
        assert_eq!(plan.execute(&db).unwrap_err(), SqlError::DivisionByZero);
    }

    #[test]
    fn short_circuit_skips_rhs_errors_like_the_interpreter() {
        let db = vehicle_db();
        // location='X' is false for Oakland rows; the erroring rhs
        // must not run for them — and must run (and error) otherwise.
        assert_equivalent(
            &db,
            "SELECT ts FROM vehicle WHERE location = 'Oakland' AND speed / 0 > 1",
        );
        assert_equivalent(
            &db,
            "SELECT ts FROM vehicle WHERE ts < 99 OR speed / 0 > 1",
        );
    }

    #[test]
    fn fast_scan_is_detected_for_client_shapes() {
        let db = vehicle_db();
        for (sql, fast) in [
            ("SELECT speed FROM vehicle WHERE location = 'SF'", true),
            ("SELECT speed FROM vehicle WHERE ts >= 3", true),
            ("SELECT speed FROM vehicle WHERE 3 <= ts", true),
            ("SELECT speed FROM vehicle", true),
            ("SELECT speed FROM vehicle LIMIT 2", true),
            ("SELECT speed * 2 FROM vehicle", false),
            ("SELECT speed FROM vehicle WHERE ts >= 3 AND speed > 0", false),
            ("SELECT * FROM vehicle", false),
            ("SELECT speed FROM vehicle WHERE ts IN (1, 2)", false),
        ] {
            let stmt = parse_select(sql).unwrap();
            let plan = PreparedSelect::prepare(&stmt, &db).unwrap();
            assert_eq!(plan.is_fast_scan(), fast, "{sql}");
        }
    }

    /// Oracle for `last_single_value`: interpret + single_column +
    /// last, exactly the pre-plan client pipeline.
    fn last_via_interpreter(db: &Database, sql: &str) -> Result<Option<Value>, SqlError> {
        let stmt = parse_select(sql)?;
        let rs = execute(&stmt, db)?;
        let col = rs.single_column()?;
        Ok(col.last().cloned())
    }

    #[test]
    fn last_single_value_matches_the_interpreted_pipeline() {
        let db = vehicle_db();
        let mut scratch = EvalScratch::new();
        for sql in [
            // Fast shapes (reverse scan).
            "SELECT speed FROM vehicle WHERE location = 'San Francisco'",
            "SELECT speed FROM vehicle WHERE location = 'Nowhere'",
            "SELECT speed FROM vehicle WHERE ts >= 3",
            "SELECT location FROM vehicle WHERE speed < 10",
            "SELECT speed FROM vehicle",
            // Fast shape + LIMIT (forward scan, capped).
            "SELECT speed FROM vehicle LIMIT 2",
            "SELECT speed FROM vehicle WHERE ts > 1 LIMIT 2",
            "SELECT speed FROM vehicle LIMIT 0",
            // Generic shapes.
            "SELECT speed * 2 FROM vehicle WHERE ts <= 4",
            "SELECT location FROM vehicle WHERE ts IN (1, 3)",
            "SELECT ts FROM vehicle WHERE location LIKE '%land' OR speed > 50",
            // Shape errors.
            "SELECT * FROM vehicle",
            "SELECT ts, speed FROM vehicle",
            // Runtime errors.
            "SELECT ts / 0 FROM vehicle",
        ] {
            let stmt = parse_select(sql).unwrap();
            let expect = last_via_interpreter(&db, sql);
            let got = PreparedSelect::prepare(&stmt, &db)
                .and_then(|p| Ok(p.last_single_value(&db, &mut scratch)?.map(|v| v.to_value())));
            assert_eq!(got, expect, "query: {sql}");
        }
    }

    #[test]
    fn stale_plans_are_rejected() {
        let mut db = vehicle_db();
        let stmt = parse_select("SELECT speed FROM vehicle").unwrap();
        let plan = PreparedSelect::prepare(&stmt, &db).unwrap();
        assert!(plan.execute(&db).is_ok());
        // Re-creating any table moves the catalog generation; the
        // plan's column indices can no longer be trusted.
        db.create_table(
            "vehicle",
            Schema::new(vec![("speed", ColumnType::Float), ("ts", ColumnType::Int)]),
        );
        assert_eq!(plan.execute(&db).unwrap_err(), SqlError::StalePlan);
        let mut scratch = EvalScratch::new();
        assert_eq!(
            plan.last_single_value(&db, &mut scratch).unwrap_err(),
            SqlError::StalePlan
        );
    }

    #[test]
    fn plan_cache_reuses_hits_and_recompiles_on_sql_change() {
        let db = vehicle_db();
        let mut cache = PlanCache::new();
        let id = QueryId::new(AnalystId(1), 7);
        let sql_a = "SELECT speed FROM vehicle WHERE ts >= 3";
        let a1 = cache.get_or_prepare(id, sql_a, &db).unwrap() as *const PreparedSelect;
        let a2 = cache.get_or_prepare(id, sql_a, &db).unwrap() as *const PreparedSelect;
        assert_eq!(a1, a2, "same SQL must hit the cached plan");
        assert_eq!(cache.len(), 1);
        // Same QueryId re-registered with different SQL: recompiled.
        let sql_b = "SELECT ts FROM vehicle WHERE speed > 10";
        let b = cache.get_or_prepare(id, sql_b, &db).unwrap();
        assert_eq!(b.columns(), ["ts"]);
        assert_eq!(cache.len(), 1, "entry replaced, not duplicated");
        // And the replacement is itself cached.
        let b2 = cache.get_or_prepare(id, sql_b, &db).unwrap();
        assert_eq!(b2.columns(), ["ts"]);
    }

    #[test]
    fn plan_cache_recompiles_after_catalog_changes() {
        let mut db = vehicle_db();
        let mut cache = PlanCache::new();
        let id = QueryId::new(AnalystId(1), 8);
        let sql = "SELECT speed FROM vehicle";
        let g1 = cache.get_or_prepare(id, sql, &db).unwrap().generation();
        // Same catalog: same plan generation.
        assert_eq!(cache.get_or_prepare(id, sql, &db).unwrap().generation(), g1);
        // Changed catalog: transparently recompiled and executable.
        db.create_table(
            "vehicle",
            Schema::new(vec![("x", ColumnType::Int), ("speed", ColumnType::Float)]),
        );
        db.insert("vehicle", vec![Value::Int(0), Value::Float(3.0)]).unwrap();
        let plan = cache.get_or_prepare(id, sql, &db).unwrap();
        assert_eq!(plan.generation(), db.generation());
        let rs = plan.execute(&db).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Float(3.0)]]);
        // Bad SQL under a known id surfaces errors without caching.
        assert!(cache.get_or_prepare(id, "SELECT FROM", &db).is_err());
        cache.invalidate(id);
        assert!(cache.is_empty());
    }

    #[test]
    fn execute_prepared_into_recycles_buffers() {
        let db = vehicle_db();
        let stmt = parse_select("SELECT ts, speed FROM vehicle WHERE speed > 5").unwrap();
        let plan = PreparedSelect::prepare(&stmt, &db).unwrap();
        let mut scratch = EvalScratch::new();
        let mut out = ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
        };
        execute_prepared_into(&plan, &db, &mut scratch, &mut out).unwrap();
        let first = out.clone();
        assert_eq!(first.rows.len(), 4);
        // A second run with a narrower filter reuses the buffers and
        // truncates; contents match a fresh interpretation.
        let stmt2 = parse_select("SELECT ts, speed FROM vehicle WHERE speed > 40").unwrap();
        let plan2 = PreparedSelect::prepare(&stmt2, &db).unwrap();
        execute_prepared_into(&plan2, &db, &mut scratch, &mut out).unwrap();
        assert_eq!(out, execute(&stmt2, &db).unwrap());
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn null_semantics_survive_compilation() {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        );
        db.insert("t", vec![Value::Int(1), Value::Null]).unwrap();
        db.insert("t", vec![Value::Int(2), Value::Int(5)]).unwrap();
        for sql in [
            "SELECT a FROM t WHERE b > 3",
            "SELECT a FROM t WHERE b IS NULL",
            "SELECT a FROM t WHERE b IS NOT NULL",
            "SELECT b + 1 FROM t WHERE a = 1",
            "SELECT a FROM t WHERE a IN (9, NULL)",
            "SELECT a FROM t WHERE b IN (5, NULL)",
            "SELECT a FROM t WHERE NOT b > 3",
            "SELECT a FROM t WHERE b BETWEEN NULL AND 9",
            "SELECT a FROM t WHERE b = NULL OR a = 1",
        ] {
            assert_equivalent(&db, sql);
        }
    }
}

//! Recursive-descent parser for the supported SELECT dialect.
//!
//! Precedence (loosest to tightest): OR, AND, NOT, comparison /
//! LIKE / IN / BETWEEN / IS, additive, multiplicative, unary minus,
//! atoms.

use crate::ast::{BinaryOp, Expr, SelectItem, SelectStmt, UnaryOp};
use crate::error::SqlError;
use crate::lexer::{lex, Token};
use crate::value::Value;

/// Parses a single SELECT statement (a trailing `;` is tolerated).
pub fn parse_select(input: &str) -> Result<SelectStmt, SqlError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    p.eat_if(&Token::Semi);
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Keyword(k)) if k == kw => Ok(()),
            other => Err(SqlError::Parse(format!("expected {kw}, got {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_keyword("SELECT")?;
        self.eat_keyword("DISTINCT"); // accepted, treated as plain SELECT
        let mut items = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    match self.next() {
                        Some(Token::Ident(a)) => Some(a),
                        other => {
                            return Err(SqlError::Parse(format!(
                                "expected alias after AS, got {other:?}"
                            )))
                        }
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let table = match self.next() {
            Some(Token::Ident(t)) => t,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected table name, got {other:?}"
                )))
            }
        };
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected non-negative LIMIT, got {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            table,
            where_clause,
            limit,
        })
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let lhs = self.additive()?;
        // Optional postfix predicates.
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("LIKE") {
            let pattern = match self.next() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIKE needs a string pattern, got {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if self.eat_keyword("IN") {
            if !self.eat_if(&Token::LParen) {
                return Err(SqlError::Parse("IN needs a parenthesized list".into()));
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            if !self.eat_if(&Token::RParen) {
                return Err(SqlError::Parse("unclosed IN list".into()));
            }
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse(
                "NOT must precede LIKE / IN / BETWEEN here".into(),
            ));
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::Neq) => Some(BinaryOp::Neq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::Le) => Some(BinaryOp::Le),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_if(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, SqlError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Ident(name)) => Ok(Expr::Column(name)),
            Some(Token::LParen) => {
                let inner = self.expr()?;
                if !self.eat_if(&Token::RParen) {
                    return Err(SqlError::Parse("unclosed parenthesis".into()));
                }
                Ok(inner)
            }
            other => Err(SqlError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let stmt =
            parse_select("SELECT speed FROM vehicle WHERE location='San Francisco'").unwrap();
        assert_eq!(stmt.table, "vehicle");
        assert_eq!(stmt.items.len(), 1);
        assert!(matches!(
            &stmt.items[0],
            SelectItem::Expr {
                expr: Expr::Column(c),
                alias: None
            } if c == "speed"
        ));
        assert!(matches!(
            stmt.where_clause,
            Some(Expr::Binary {
                op: BinaryOp::Eq,
                ..
            })
        ));
    }

    #[test]
    fn parses_wildcard_and_limit() {
        let stmt = parse_select("SELECT * FROM t LIMIT 10;").unwrap();
        assert_eq!(stmt.items, vec![SelectItem::Wildcard]);
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn precedence_or_and_not() {
        // NOT a AND b OR c parses as ((NOT a) AND b) OR c.
        let stmt = parse_select("SELECT * FROM t WHERE NOT a AND b OR c").unwrap();
        let Expr::Binary {
            op: BinaryOp::Or,
            lhs,
            ..
        } = stmt.where_clause.unwrap()
        else {
            panic!("top must be OR");
        };
        let Expr::Binary {
            op: BinaryOp::And,
            lhs: and_lhs,
            ..
        } = *lhs
        else {
            panic!("left of OR must be AND");
        };
        assert!(matches!(
            *and_lhs,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
    }

    #[test]
    fn precedence_arithmetic() {
        // 1 + 2 * 3 parses as 1 + (2*3).
        let stmt = parse_select("SELECT 1 + 2 * 3 FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &stmt.items[0] else {
            panic!()
        };
        let Expr::Binary {
            op: BinaryOp::Add,
            rhs,
            ..
        } = expr
        else {
            panic!("top must be Add, got {expr:?}");
        };
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_like_in_between_isnull() {
        let stmt = parse_select(
            "SELECT * FROM t WHERE a LIKE 'x%' AND b IN (1,2,3) AND \
             c BETWEEN 0 AND 9 AND d IS NOT NULL AND e NOT LIKE '%y'",
        )
        .unwrap();
        // Just verify it parses and the top level is a chain of ANDs.
        let mut ands = 0;
        let mut stack = vec![stmt.where_clause.unwrap()];
        while let Some(e) = stack.pop() {
            if let Expr::Binary {
                op: BinaryOp::And,
                lhs,
                rhs,
            } = e
            {
                ands += 1;
                stack.push(*lhs);
                stack.push(*rhs);
            }
        }
        assert_eq!(ands, 4);
    }

    #[test]
    fn parses_aliases() {
        let stmt = parse_select("SELECT speed * 2 AS double_speed FROM v").unwrap();
        assert_eq!(stmt.output_name(0), "double_speed");
    }

    #[test]
    fn negative_numbers_and_parens() {
        let stmt = parse_select("SELECT -x FROM t WHERE (a + b) * -2 < 4").unwrap();
        assert!(stmt.where_clause.is_some());
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT * FROM").is_err());
        assert!(parse_select("SELECT * FROM t WHERE").is_err());
        assert!(parse_select("SELECT * FROM t LIMIT x").is_err());
        assert!(parse_select("SELECT * FROM t extra junk").is_err());
        assert!(parse_select("SELECT a IN 1 FROM t").is_err());
        assert!(parse_select("SELECT (a FROM t").is_err());
        assert!(parse_select("SELECT a NOT b FROM t").is_err());
    }

    #[test]
    fn output_names() {
        let stmt = parse_select("SELECT a, b AS bee, a+1 FROM t").unwrap();
        assert_eq!(stmt.output_name(0), "a");
        assert_eq!(stmt.output_name(1), "bee");
        assert_eq!(stmt.output_name(2), "col2");
    }
}

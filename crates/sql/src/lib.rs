//! The client-local SQL engine — PrivApprox's SQLite stand-in.
//!
//! "PRIVAPPROX supports the SQL query language for analysts to
//! formulate streaming queries, which are executed periodically at the
//! clients" (paper §2.2) against "the local user's private data stored
//! in SQLite" (§5). This crate is a from-scratch engine sufficient for
//! that role: a lexer, a recursive-descent parser, an in-memory table
//! store with time-based retention (clients keep a bounded window of
//! their own stream), and an executor for filtered projections.
//!
//! Supported grammar:
//!
//! ```text
//! SELECT <expr-list | *> FROM <table> [WHERE <expr>] [LIMIT <n>]
//! expr := literal | column | (expr)
//!       | expr (= | != | <> | < | <= | > | >=) expr
//!       | expr (+ | - | * | /) expr
//!       | expr [NOT] LIKE pattern
//!       | expr [NOT] IN (expr, ...)
//!       | expr [NOT] BETWEEN expr AND expr
//!       | expr IS [NOT] NULL
//!       | NOT expr | expr AND expr | expr OR expr | -expr
//! ```
//!
//! Semantics follow SQL three-valued logic for NULL, with int/float
//! coercion on comparison and arithmetic.
//!
//! # Prepared plans
//!
//! The engine has two execution paths with identical semantics:
//!
//! * **Interpreted** — [`parse_select`] + [`execute`]: walks the AST
//!   per row. Simple, allocating, and the semantic reference.
//! * **Prepared** — [`parse_select`] + [`PreparedSelect::prepare`]:
//!   compiles the statement once (column names resolved to indices,
//!   constants folded, expressions flattened to opcodes), then
//!   executes it any number of times without re-parsing or
//!   allocating. The property tests enforce that both paths return
//!   byte-identical results *and errors* across the parser corpus.
//!
//! The prepared lifecycle is: `parse → prepare → execute × N →
//! (invalidate on SQL or catalog change) → re-prepare`. Plans record
//! the [`Database::generation`] they were compiled against and fail
//! with [`SqlError::StalePlan`] if the catalog moved; [`PlanCache`]
//! automates the validate-or-recompile step keyed by query id, which
//! is how the PrivApprox client uses this crate (one long-lived query
//! × millions of per-epoch executions).
//!
//! # Scratch-buffer conventions
//!
//! Functions named `*_into` write through caller-owned buffers
//! instead of allocating their result, following the workspace-wide
//! convention (see `privapprox-core`): the *caller* owns and reuses
//! the buffer across calls, the callee only resizes it on shape
//! changes. Here that means [`execute_prepared_into`] (recycles a
//! [`ResultSet`]'s vectors) and the [`EvalScratch`] passed to
//! [`PreparedSelect::for_each_row`] /
//! [`PreparedSelect::last_single_value`], which holds the opcode
//! stack and projected-row slots. A warm scratch makes the prepared
//! scan allocation-free.

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod table;
pub mod value;

pub use ast::{BinaryOp, Expr, SelectItem, SelectStmt, UnaryOp};
pub use error::SqlError;
pub use exec::{execute, ResultSet};
pub use parser::parse_select;
pub use plan::{execute_prepared_into, EvalScratch, PlanCache, PreparedSelect, RowView, ValueRef};
pub use table::{ColumnType, Database, Schema, Table};
pub use value::Value;

//! The client-local SQL engine — PrivApprox's SQLite stand-in.
//!
//! "PRIVAPPROX supports the SQL query language for analysts to
//! formulate streaming queries, which are executed periodically at the
//! clients" (paper §2.2) against "the local user's private data stored
//! in SQLite" (§5). This crate is a from-scratch engine sufficient for
//! that role: a lexer, a recursive-descent parser, an in-memory table
//! store with time-based retention (clients keep a bounded window of
//! their own stream), and an executor for filtered projections.
//!
//! Supported grammar:
//!
//! ```text
//! SELECT <expr-list | *> FROM <table> [WHERE <expr>] [LIMIT <n>]
//! expr := literal | column | (expr)
//!       | expr (= | != | <> | < | <= | > | >=) expr
//!       | expr (+ | - | * | /) expr
//!       | expr [NOT] LIKE pattern
//!       | expr [NOT] IN (expr, ...)
//!       | expr [NOT] BETWEEN expr AND expr
//!       | expr IS [NOT] NULL
//!       | NOT expr | expr AND expr | expr OR expr | -expr
//! ```
//!
//! Semantics follow SQL three-valued logic for NULL, with int/float
//! coercion on comparison and arithmetic.

pub mod ast;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod table;
pub mod value;

pub use ast::{BinaryOp, Expr, SelectItem, SelectStmt, UnaryOp};
pub use error::SqlError;
pub use exec::{execute, ResultSet};
pub use parser::parse_select;
pub use table::{ColumnType, Database, Schema, Table};
pub use value::Value;

//! SQL tokenizer.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased at lex time).
    Keyword(String),
    /// Identifier (case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// `=`.
    Eq,
    /// `!=` or `<>`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
}

const KEYWORDS: [&str; 16] = [
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "LIKE", "IN", "BETWEEN", "IS", "NULL", "TRUE",
    "FALSE", "LIMIT", "AS", "DISTINCT",
];

/// Tokenizes `input` into a vector of tokens.
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        pos: i,
                        msg: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Neq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                pos: i,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            // '' is an escaped quote.
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E') && !saw_exp && i > start {
                        saw_exp = true;
                        i += 1;
                        if matches!(bytes.get(i), Some(&b'+') | Some(&b'-')) {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if text == "." {
                    return Err(SqlError::Lex {
                        pos: start,
                        msg: "lone '.'".into(),
                    });
                }
                if saw_dot || saw_exp {
                    let v: f64 = text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        msg: format!("bad float '{text}'"),
                    })?;
                    tokens.push(Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        msg: format!("bad integer '{text}'"),
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(SqlError::Lex {
                    pos: i,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_example() {
        let toks = lex("SELECT speed FROM vehicle WHERE location='San Francisco'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("speed".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("vehicle".into()),
                Token::Keyword("WHERE".into()),
                Token::Ident("location".into()),
                Token::Eq,
                Token::Str("San Francisco".into()),
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select x from t").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[2], Token::Keyword("FROM".into()));
    }

    #[test]
    fn numbers_int_and_float() {
        let toks = lex("1 2.5 .5 3e2 1.5e-3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(0.5),
                Token::Float(300.0),
                Token::Float(0.0015),
            ]
        );
    }

    #[test]
    fn operators_and_punctuation() {
        let toks = lex("= != <> < <= > >= + - * / ( ) , ;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Semi,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn line_comments_are_skipped() {
        let toks = lex("SELECT x -- the column\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn lex_errors_carry_positions() {
        match lex("SELECT @") {
            Err(SqlError::Lex { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("'unterminated").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn qualified_identifiers_keep_dots() {
        let toks = lex("t.col").unwrap();
        assert_eq!(toks, vec![Token::Ident("t.col".into())]);
    }
}

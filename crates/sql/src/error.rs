//! SQL engine errors.

/// Everything that can go wrong while lexing, parsing or executing.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte position in the input.
        pos: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Parse error with a human-readable description.
    Parse(String),
    /// Reference to a table the catalog does not contain.
    UnknownTable(String),
    /// Reference to a column the schema does not contain.
    UnknownColumn(String),
    /// Type error during evaluation (e.g. `'a' + 1`).
    Type(String),
    /// Division by zero.
    DivisionByZero,
    /// Row arity does not match the schema on insert.
    Arity {
        /// Columns the schema expects.
        expected: usize,
        /// Values the row supplied.
        got: usize,
    },
    /// A prepared plan was executed against a database whose catalog
    /// changed since the plan was compiled (see
    /// `Database::generation`); the caller must re-prepare.
    StalePlan,
}

impl core::fmt::Display for SqlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SqlError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::DivisionByZero => write!(f, "division by zero"),
            SqlError::Arity { expected, got } => {
                write!(f, "row has {got} values, schema expects {expected}")
            }
            SqlError::StalePlan => {
                write!(f, "prepared plan is stale: the catalog changed since compilation")
            }
        }
    }
}

impl std::error::Error for SqlError {}

//! Property-based tests for the SQL engine: the executor must agree
//! with a direct Rust evaluation of the same predicate over the same
//! rows, the parser must be total (no panics) on arbitrary input, and
//! prepared plans must be indistinguishable from interpretation —
//! same rows, same columns, same errors — across the whole corpus.

use privapprox_sql::{
    execute, parse_select, ColumnType, Database, EvalScratch, PreparedSelect, Schema, Value,
};
use proptest::prelude::*;

fn table_with(values: &[(i64, f64)]) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Float)]),
    );
    for &(a, b) in values {
        db.insert("t", vec![Value::Int(a), Value::Float(b)])
            .unwrap();
    }
    db
}

proptest! {
    /// Numeric comparison filters agree with direct evaluation.
    #[test]
    fn comparison_filters_match_oracle(
        rows in proptest::collection::vec((-50i64..50, -5.0f64..5.0), 0..40),
        threshold in -50i64..50,
        op_idx in 0usize..6,
    ) {
        let db = table_with(&rows);
        let ops = ["=", "!=", "<", "<=", ">", ">="];
        let op = ops[op_idx];
        let sql = format!("SELECT a FROM t WHERE a {op} {threshold}");
        let rs = execute(&parse_select(&sql).unwrap(), &db).unwrap();
        let expect: Vec<i64> = rows
            .iter()
            .map(|(a, _)| *a)
            .filter(|a| match op {
                "=" => *a == threshold,
                "!=" => *a != threshold,
                "<" => *a < threshold,
                "<=" => *a <= threshold,
                ">" => *a > threshold,
                ">=" => *a >= threshold,
                _ => unreachable!(),
            })
            .collect();
        let got: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(v) => v,
                _ => panic!("int column"),
            })
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// AND / OR / NOT over two predicates agree with Rust booleans.
    #[test]
    fn boolean_connectives_match_oracle(
        rows in proptest::collection::vec((-20i64..20, -5.0f64..5.0), 0..30),
        t1 in -20i64..20,
        t2 in -5.0f64..5.0,
        connective in 0usize..3,
    ) {
        let db = table_with(&rows);
        let sql = match connective {
            0 => format!("SELECT a FROM t WHERE a > {t1} AND b < {t2}"),
            1 => format!("SELECT a FROM t WHERE a > {t1} OR b < {t2}"),
            _ => format!("SELECT a FROM t WHERE NOT (a > {t1})"),
        };
        let rs = execute(&parse_select(&sql).unwrap(), &db).unwrap();
        let expect = rows
            .iter()
            .filter(|(a, b)| match connective {
                0 => *a > t1 && *b < t2,
                1 => *a > t1 || *b < t2,
                _ => *a <= t1,
            })
            .count();
        prop_assert_eq!(rs.rows.len(), expect);
    }

    /// BETWEEN is the closed-interval filter.
    #[test]
    fn between_matches_oracle(
        rows in proptest::collection::vec((-30i64..30, 0.0f64..1.0), 0..30),
        lo in -30i64..0,
        hi in 0i64..30,
    ) {
        let db = table_with(&rows);
        let sql = format!("SELECT a FROM t WHERE a BETWEEN {lo} AND {hi}");
        let rs = execute(&parse_select(&sql).unwrap(), &db).unwrap();
        let expect = rows.iter().filter(|(a, _)| *a >= lo && *a <= hi).count();
        prop_assert_eq!(rs.rows.len(), expect);
    }

    /// Arithmetic projections compute what Rust computes (integer ops
    /// on in-range operands).
    #[test]
    fn arithmetic_projection_matches_oracle(
        a in -1000i64..1000,
        b in 1i64..1000,
        op_idx in 0usize..4,
    ) {
        let db = table_with(&[(a, 0.0)]);
        let ops = ["+", "-", "*", "/"];
        let op = ops[op_idx];
        let sql = format!("SELECT a {op} {b} FROM t");
        let rs = execute(&parse_select(&sql).unwrap(), &db).unwrap();
        let expect = match op {
            "+" => a + b,
            "-" => a - b,
            "*" => a * b,
            "/" => a / b,
            _ => unreachable!(),
        };
        prop_assert_eq!(&rs.rows[0][0], &Value::Int(expect));
    }

    /// LIMIT caps row counts exactly.
    #[test]
    fn limit_is_exact(
        rows in proptest::collection::vec((-5i64..5, 0.0f64..1.0), 0..30),
        limit in 0u64..40,
    ) {
        let db = table_with(&rows);
        let sql = format!("SELECT * FROM t LIMIT {limit}");
        let rs = execute(&parse_select(&sql).unwrap(), &db).unwrap();
        prop_assert_eq!(rs.rows.len() as u64, limit.min(rows.len() as u64));
    }

    /// Prepared execution is byte-identical to interpretation across
    /// the corpus of query shapes the other properties exercise —
    /// results *and* errors — and `last_single_value` matches the
    /// interpreted execute→single_column→last pipeline.
    #[test]
    fn prepared_plans_match_interpretation(
        rows in proptest::collection::vec((-50i64..50, -5.0f64..5.0), 0..40),
        t1 in -50i64..50,
        t2 in -5.0f64..5.0,
        limit in 0u64..45,
        which in 0usize..16,
    ) {
        let db = table_with(&rows);
        let sql = match which {
            0 => format!("SELECT a FROM t WHERE a = {t1}"),
            1 => format!("SELECT a FROM t WHERE a != {t1}"),
            2 => format!("SELECT b FROM t WHERE a < {t1}"),
            3 => format!("SELECT b FROM t WHERE a >= {t1}"),
            4 => format!("SELECT a FROM t WHERE a > {t1} AND b < {t2}"),
            5 => format!("SELECT a FROM t WHERE a > {t1} OR b < {t2}"),
            6 => format!("SELECT a FROM t WHERE NOT (a > {t1})"),
            7 => format!("SELECT a FROM t WHERE a BETWEEN {t1} AND {}", t1 + 7),
            8 => format!("SELECT a + {t1} FROM t"),
            9 => format!("SELECT a * b FROM t WHERE b != 0"),
            10 => format!("SELECT * FROM t LIMIT {limit}"),
            11 => format!("SELECT a FROM t WHERE a IN ({t1}, {}, NULL)", t1 + 1),
            12 => format!("SELECT a, b FROM t WHERE b <= {t2}"),
            13 => format!("SELECT a / (a - {t1}) FROM t"), // may divide by zero
            14 => format!("SELECT b FROM t WHERE {t1} <= a LIMIT {limit}"),
            _ => format!("SELECT a FROM t WHERE b IS NOT NULL AND a <= {t1}"),
        };
        let stmt = parse_select(&sql).expect("corpus SQL parses");
        let interpreted = execute(&stmt, &db);
        let prepared = PreparedSelect::prepare(&stmt, &db).and_then(|p| p.execute(&db));
        prop_assert_eq!(&prepared, &interpreted, "query: {}", &sql);

        // The client's "newest value" entry point agrees with the
        // interpreted pipeline wherever that pipeline is defined.
        let oracle = interpreted
            .and_then(|rs| rs.single_column())
            .map(|col| col.last().cloned());
        let mut scratch = EvalScratch::new();
        let last = PreparedSelect::prepare(&stmt, &db).and_then(|p| {
            Ok(p.last_single_value(&db, &mut scratch)?.map(|v| v.to_value()))
        });
        prop_assert_eq!(last, oracle, "last value of: {}", &sql);
    }

    /// The parser is total: arbitrary garbage returns Err, never
    /// panics.
    #[test]
    fn parser_never_panics(input in "\\PC{0,60}") {
        let _ = parse_select(&input);
    }

    /// Parsing is deterministic.
    #[test]
    fn parser_is_deterministic(input in "\\PC{0,60}") {
        prop_assert_eq!(parse_select(&input), parse_select(&input));
    }
}

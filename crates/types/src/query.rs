//! The analyst's query model (paper §2.2 and §3.1, Equation 1).
//!
//! A query is the tuple `⟨QID, SQL, A[n], f, w, δ⟩`: a unique id, the
//! SQL text executed at every client over its private data, the answer
//! format (an `n`-bucket specification producing an n-bit vector), the
//! answer frequency, and the sliding-window parameters.
//!
//! Buckets are either numeric ranges (the driving-speed example of
//! §2.2) or non-numeric matching rules ("each bucket is specified by a
//! matching rule or a regular expression").

use crate::ids::QueryId;
use crate::time::{Millis, WindowSpec};
use serde::{Deserialize, Serialize};

/// A rule deciding whether a client's answer value falls into a bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BucketRule {
    /// Half-open numeric range `[lo, hi)`; use `f64::INFINITY` for an
    /// unbounded top bucket such as the paper's `>100`.
    Range { lo: f64, hi: f64 },
    /// Exact numeric value (the paper's standalone `0` speed bucket).
    Value(f64),
    /// Exact string match for non-numeric queries.
    Text(String),
    /// SQL-LIKE pattern with `%` (any run) and `_` (any single char),
    /// the paper's "matching rule" bucket flavor.
    Like(String),
}

impl BucketRule {
    /// True if the numeric value `v` matches this rule.
    ///
    /// String rules never match numeric values.
    pub fn matches_num(&self, v: f64) -> bool {
        match self {
            BucketRule::Range { lo, hi } => v >= *lo && v < *hi,
            BucketRule::Value(x) => v == *x,
            BucketRule::Text(_) | BucketRule::Like(_) => false,
        }
    }

    /// True if the string value `s` matches this rule.
    ///
    /// Numeric rules never match string values.
    pub fn matches_text(&self, s: &str) -> bool {
        match self {
            BucketRule::Range { .. } | BucketRule::Value(_) => false,
            BucketRule::Text(t) => t == s,
            BucketRule::Like(pattern) => like_match(pattern, s),
        }
    }
}

/// Case-sensitive SQL-LIKE matcher supporting `%` and `_`.
///
/// Implemented with the classic two-pointer backtracking algorithm so
/// that pathological patterns stay linear-ish rather than exponential.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// The answer format `A[n]`: an ordered list of bucket rules.
///
/// A client's answer to a query is the n-bit vector whose i-th bit says
/// whether the client's value matched bucket i (paper §2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerSpec {
    buckets: Vec<BucketRule>,
}

impl AnswerSpec {
    /// Builds a spec from explicit rules.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is empty — a zero-bucket answer carries no
    /// information and would break the wire format.
    pub fn new(buckets: Vec<BucketRule>) -> AnswerSpec {
        assert!(!buckets.is_empty(), "answer spec needs at least 1 bucket");
        AnswerSpec { buckets }
    }

    /// Convenience constructor: `count` equal-width numeric ranges
    /// covering `[lo, hi)` plus one unbounded `[hi, ∞)` bucket.
    ///
    /// Matches the paper's case-study formats, e.g. 10 one-mile ranges
    /// plus `[10, +∞)` for the NYC taxi query.
    pub fn ranges_with_overflow(lo: f64, hi: f64, count: usize) -> AnswerSpec {
        assert!(count > 0 && hi > lo);
        let width = (hi - lo) / count as f64;
        let mut buckets: Vec<BucketRule> = (0..count)
            .map(|i| BucketRule::Range {
                lo: lo + i as f64 * width,
                hi: lo + (i + 1) as f64 * width,
            })
            .collect();
        buckets.push(BucketRule::Range {
            lo: hi,
            hi: f64::INFINITY,
        });
        AnswerSpec::new(buckets)
    }

    /// Number of buckets `n` (the answer bit-vector length).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if there are no buckets (never constructible).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The bucket rules in order.
    pub fn buckets(&self) -> &[BucketRule] {
        &self.buckets
    }

    /// Index of the first bucket matching numeric value `v`.
    pub fn bucketize_num(&self, v: f64) -> Option<usize> {
        self.buckets.iter().position(|b| b.matches_num(v))
    }

    /// Index of the first bucket matching string value `s`.
    pub fn bucketize_text(&self, s: &str) -> Option<usize> {
        self.buckets.iter().position(|b| b.matches_text(s))
    }

    /// Compiles a [`BucketIndexer`] for this spec: an O(1) arithmetic
    /// lookup when the spec is a uniform range ladder (the common
    /// [`AnswerSpec::ranges_with_overflow`] shape), falling back to
    /// the linear [`AnswerSpec::bucketize_num`] scan otherwise.
    ///
    /// Clients cache the indexer alongside their prepared query plan
    /// so a 10⁴-bucket answer format does not cost a 10⁴-entry scan
    /// per epoch.
    pub fn index_plan(&self) -> BucketIndexer {
        BucketIndexer::for_spec(self)
    }
}

/// A compiled numeric-bucket lookup for one [`AnswerSpec`] (see
/// [`AnswerSpec::index_plan`]).
///
/// The indexer holds only derived geometry, not the rules themselves:
/// callers pass the spec back at lookup time, and every arithmetic
/// candidate is verified against the actual rule before being
/// returned, so a stale or mismatched indexer degrades to the exact
/// linear scan instead of mis-bucketing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketIndexer {
    uniform: Option<UniformRanges>,
}

/// Geometry of a uniform range ladder `[lo, lo+width), [lo+width,
/// lo+2·width), …` of `count` rungs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct UniformRanges {
    lo: f64,
    width: f64,
    /// Number of leading uniform-width buckets.
    count: usize,
}

impl BucketIndexer {
    fn for_spec(spec: &AnswerSpec) -> BucketIndexer {
        // Detect a leading ladder of contiguous, equal-width numeric
        // ranges. A trailing unbounded/overflow bucket (or any other
        // tail) is handled by the verified-candidate probe below.
        let rules = spec.buckets();
        let mut ladder: Option<UniformRanges> = None;
        for rule in rules {
            let BucketRule::Range { lo, hi } = rule else {
                break;
            };
            if !hi.is_finite() {
                break;
            }
            match &mut ladder {
                None => {
                    ladder = Some(UniformRanges {
                        lo: *lo,
                        width: hi - lo,
                        count: 1,
                    });
                }
                Some(u) => {
                    let expected_lo = u.lo + u.count as f64 * u.width;
                    let expected_hi = u.lo + (u.count + 1) as f64 * u.width;
                    if *lo != expected_lo || (hi - expected_hi).abs() > u.width * 1e-9 {
                        break;
                    }
                    u.count += 1;
                }
            }
        }
        let uniform = match ladder {
            // A one-rung ladder buys nothing; require a real ladder
            // with positive width.
            Some(u) if u.count >= 2 && u.width > 0.0 => Some(u),
            _ => None,
        };
        BucketIndexer { uniform }
    }

    /// Index of the first bucket of `spec` matching `v` — identical
    /// to [`AnswerSpec::bucketize_num`], in O(1) when the leading
    /// uniform ladder covers `v`.
    pub fn bucketize_num(&self, spec: &AnswerSpec, v: f64) -> Option<usize> {
        if let Some(u) = self.uniform {
            if v >= u.lo && v < u.lo + u.count as f64 * u.width {
                // Arithmetic candidate, then verify against the real
                // rule (float division can land one rung off at
                // boundaries).
                let est = (((v - u.lo) / u.width) as usize).min(u.count - 1);
                // Ascending probe order preserves first-match
                // semantics even if adjacent rungs overlap slightly;
                // `get` (rather than indexing) keeps a stale indexer
                // over a shrunken spec merely slow, never wrong.
                for cand in [est.saturating_sub(1), est, (est + 1).min(u.count - 1)] {
                    if spec.buckets().get(cand).is_some_and(|b| b.matches_num(v)) {
                        return Some(cand);
                    }
                }
                // Geometry disagreed with the rules (mismatched spec);
                // fall through to the exact scan.
            } else if v >= u.lo + u.count as f64 * u.width {
                // Beyond the derived top. The last rung's true upper
                // bound may exceed the derived `lo + count·width` by
                // the ladder-acceptance tolerance, so probe it before
                // handing off to the tail rules — otherwise a value
                // in that float sliver would wrongly miss its bucket.
                if spec
                    .buckets()
                    .get(u.count - 1)
                    .is_some_and(|b| b.matches_num(v))
                {
                    return Some(u.count - 1);
                }
                if let Some(tail) = spec.buckets().get(u.count..) {
                    return tail.iter().position(|b| b.matches_num(v)).map(|i| i + u.count);
                }
            }
            // v below the ladder (or NaN): no ladder rung matches,
            // but non-range tail rules still might — exact scan.
        }
        spec.bucketize_num(v)
    }

    /// Index of the first bucket of `spec` matching text `s` (no fast
    /// path; text rules are scanned exactly).
    pub fn bucketize_text(&self, spec: &AnswerSpec, s: &str) -> Option<usize> {
        spec.bucketize_text(s)
    }
}

/// An analyst's streaming query `⟨QID, SQL, A[n], f, w, δ⟩` (Eq. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Unique query identifier.
    pub id: QueryId,
    /// SQL text executed at each client over its local private data.
    pub sql: String,
    /// Answer format `A[n]`.
    pub answer: AnswerSpec,
    /// Answer frequency `f`: how often clients re-execute the query.
    pub frequency: Millis,
    /// Sliding-window parameters `(w, δ)` used by the aggregator.
    pub window: WindowSpec,
    /// Analyst signature for non-repudiation (§3.1). The reproduction
    /// uses a keyed 64-bit tag rather than full PKI; what matters for
    /// the system behaviour is that clients verify it before answering.
    pub signature: u64,
}

impl Query {
    /// Computes the signature tag an analyst with `key` would produce.
    ///
    /// FNV-1a over the canonical fields — *not* cryptographically
    /// strong, standing in for the paper's unspecified signing scheme.
    pub fn sign_tag(&self, key: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ key;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&self.id.to_u64().to_le_bytes());
        eat(self.sql.as_bytes());
        eat(&(self.answer.len() as u64).to_le_bytes());
        eat(&self.frequency.to_le_bytes());
        eat(&self.window.size.to_le_bytes());
        eat(&self.window.slide.to_le_bytes());
        h
    }

    /// Signs the query in place with the analyst's key.
    pub fn sign(&mut self, key: u64) {
        self.signature = 0;
        self.signature = self.sign_tag(key);
    }

    /// Verifies the signature against the analyst's key.
    ///
    /// Allocation-free: [`Query::sign_tag`] hashes only the canonical
    /// fields (never the signature itself), so verification is a
    /// straight recompute-and-compare — this runs once per client
    /// answer on the hot path.
    pub fn verify(&self, key: u64) -> bool {
        self.sign_tag(key) == self.signature
    }
}

/// Fluent builder for [`Query`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    id: QueryId,
    sql: String,
    answer: Option<AnswerSpec>,
    frequency: Millis,
    window: WindowSpec,
}

impl QueryBuilder {
    /// Starts a builder with mandatory id and SQL text.
    pub fn new(id: QueryId, sql: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            id,
            sql: sql.into(),
            answer: None,
            frequency: 1_000,
            window: WindowSpec::tumbling(60_000),
        }
    }

    /// Sets the answer format.
    pub fn answer(mut self, spec: AnswerSpec) -> Self {
        self.answer = Some(spec);
        self
    }

    /// Sets the answer frequency `f` in milliseconds.
    pub fn frequency(mut self, f: Millis) -> Self {
        self.frequency = f;
        self
    }

    /// Sets the sliding-window parameters.
    pub fn window(mut self, size: Millis, slide: Millis) -> Self {
        self.window = WindowSpec::sliding(size, slide);
        self
    }

    /// Finalizes and signs the query.
    ///
    /// # Panics
    ///
    /// Panics if no answer spec was provided.
    pub fn sign_and_build(self, analyst_key: u64) -> Query {
        let mut q = Query {
            id: self.id,
            sql: self.sql,
            answer: self.answer.expect("query needs an answer spec"),
            frequency: self.frequency,
            window: self.window,
            signature: 0,
        };
        q.sign(analyst_key);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AnalystId;

    fn speed_buckets() -> AnswerSpec {
        // The §2.2 example: '0', '1~10', ..., '91~100', '>100'.
        let mut b = vec![BucketRule::Value(0.0)];
        for i in 0..10 {
            b.push(BucketRule::Range {
                lo: (i * 10 + 1) as f64,
                hi: (i * 10 + 11) as f64,
            });
        }
        b.push(BucketRule::Range {
            lo: 101.0,
            hi: f64::INFINITY,
        });
        AnswerSpec::new(b)
    }

    #[test]
    fn paper_speed_example_buckets() {
        let spec = speed_buckets();
        assert_eq!(spec.len(), 12);
        // "If a vehicle is moving at 15 mph … it answers '1' for the
        // third bucket and '0' for all others."
        assert_eq!(spec.bucketize_num(15.0), Some(2));
        assert_eq!(spec.bucketize_num(0.0), Some(0));
        assert_eq!(spec.bucketize_num(150.0), Some(11));
        // The example's buckets are integer-oriented: fractional speeds
        // between the standalone '0' bucket and the '1~10' range fall
        // into no bucket, mirroring the paper's integral answer domain.
        assert_eq!(spec.bucketize_num(0.5), None);
    }

    #[test]
    fn ranges_with_overflow_covers_all_nonnegative_values() {
        let spec = AnswerSpec::ranges_with_overflow(0.0, 10.0, 10);
        assert_eq!(spec.len(), 11);
        assert_eq!(spec.bucketize_num(0.0), Some(0));
        assert_eq!(spec.bucketize_num(9.99), Some(9));
        assert_eq!(spec.bucketize_num(10.0), Some(10));
        assert_eq!(spec.bucketize_num(1e9), Some(10));
    }

    #[test]
    fn text_buckets_match_exact_and_like() {
        let spec = AnswerSpec::new(vec![
            BucketRule::Text("chrome".into()),
            BucketRule::Like("fire%".into()),
            BucketRule::Like("%_edge".into()),
        ]);
        assert_eq!(spec.bucketize_text("chrome"), Some(0));
        assert_eq!(spec.bucketize_text("firefox"), Some(1));
        assert_eq!(spec.bucketize_text("ms_edge"), Some(2));
        assert_eq!(spec.bucketize_text("safari"), None);
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("a%c", "abc"));
        assert!(like_match("a%c", "ac"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "ac"));
        assert!(like_match("%ell%", "hello"));
        assert!(!like_match("hell", "hello"));
        assert!(like_match("h%l%o", "hello"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
        // Backtracking case: first % must not greedily eat everything.
        assert!(like_match("%b%b", "abab"));
    }

    #[test]
    fn numeric_rules_reject_text_and_vice_versa() {
        assert!(!BucketRule::Value(1.0).matches_text("1"));
        assert!(!BucketRule::Text("1".into()).matches_num(1.0));
    }

    #[test]
    fn query_signature_verifies_and_detects_tampering() {
        let key = 0x5EED_CAFE;
        let q = QueryBuilder::new(
            QueryId::new(AnalystId(1), 1),
            "SELECT speed FROM vehicle WHERE location='San Francisco'",
        )
        .answer(speed_buckets())
        .frequency(500)
        .window(600_000, 60_000)
        .sign_and_build(key);

        assert!(q.verify(key));
        assert!(!q.verify(key + 1), "wrong key must fail");

        let mut tampered = q.clone();
        tampered.sql = "SELECT ssn FROM users".into();
        assert!(!tampered.verify(key), "tampered SQL must fail");
    }

    #[test]
    #[should_panic(expected = "at least 1 bucket")]
    fn empty_answer_spec_is_rejected() {
        let _ = AnswerSpec::new(vec![]);
    }

    #[test]
    fn bucket_indexer_agrees_with_linear_scan_on_uniform_ladders() {
        for spec in [
            AnswerSpec::ranges_with_overflow(0.0, 110.0, 11),
            AnswerSpec::ranges_with_overflow(-3.5, 12.25, 7),
            AnswerSpec::ranges_with_overflow(0.0, 10.0, 10_000),
        ] {
            let idx = spec.index_plan();
            let lo = match spec.buckets()[0] {
                BucketRule::Range { lo, .. } => lo,
                _ => unreachable!(),
            };
            let mut v = lo - 2.0;
            while v < lo + 130.0 {
                assert_eq!(
                    idx.bucketize_num(&spec, v),
                    spec.bucketize_num(v),
                    "value {v}"
                );
                v += 0.093;
            }
            for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1e300, 1e300] {
                assert_eq!(idx.bucketize_num(&spec, v), spec.bucketize_num(v));
            }
        }
    }

    #[test]
    fn bucket_indexer_falls_back_on_irregular_specs() {
        let spec = AnswerSpec::new(vec![
            BucketRule::Value(0.0),
            BucketRule::Range { lo: 0.0, hi: 10.0 },
            BucketRule::Range { lo: 30.0, hi: 50.0 },
            BucketRule::Text("other".into()),
        ]);
        let idx = spec.index_plan();
        for v in [-1.0, 0.0, 5.0, 20.0, 35.0, 50.0] {
            assert_eq!(idx.bucketize_num(&spec, v), spec.bucketize_num(v), "{v}");
        }
        assert_eq!(idx.bucketize_text(&spec, "other"), Some(3));
    }

    #[test]
    fn bucket_indexer_covers_the_last_rung_tolerance_sliver() {
        // The last rung's hi exceeds the derived uniform top by an
        // amount inside the ladder-acceptance tolerance; values in
        // that sliver must still bucketize identically to the scan.
        let spec = AnswerSpec::new(vec![
            BucketRule::Range { lo: 0.0, hi: 10.0 },
            BucketRule::Range { lo: 10.0, hi: 20.0 },
            BucketRule::Range {
                lo: 20.0,
                hi: 30.0 + 1e-10,
            },
            BucketRule::Range {
                lo: 30.0 + 1e-10,
                hi: f64::INFINITY,
            },
        ]);
        let idx = spec.index_plan();
        for v in [29.999_999_999, 30.0, 30.000_000_000_05, 30.0 + 1e-10, 31.0] {
            assert_eq!(idx.bucketize_num(&spec, v), spec.bucketize_num(v), "{v}");
        }
    }

    #[test]
    fn bucket_indexer_respects_first_match_on_exact_boundaries() {
        // Boundary values must land in the upper rung (half-open
        // ranges), exactly like the linear scan.
        let spec = AnswerSpec::ranges_with_overflow(0.0, 100.0, 10);
        let idx = spec.index_plan();
        for k in 0..=10 {
            let v = k as f64 * 10.0;
            assert_eq!(idx.bucketize_num(&spec, v), spec.bucketize_num(v), "{v}");
        }
    }
}

//! Cross-process wire-format constants.
//!
//! The multi-process deployment (see `privapprox-cluster`'s transport
//! layer and `docs/wire-format.md`) exchanges length-prefixed frames
//! over loopback TCP. Every frame carries a one-byte format version so
//! a parent and a spawned node from different builds fail loudly at
//! the first frame instead of silently mis-decoding shares.

/// Current frame-format version.
///
/// Bumped whenever the frame header, a payload layout, or the control
/// JSON schema changes incompatibly. A peer receiving a frame with a
/// different version must drop the connection with a decode error —
/// there is no cross-version negotiation (both ends of a deployment
/// come from one build).
pub const WIRE_VERSION: u8 = 1;

/// Maximum accepted frame payload length in bytes (16 MiB).
///
/// A length prefix beyond this is treated as stream corruption rather
/// than an allocation request: the largest legitimate frame is a
/// `Closed` control reply carrying per-bucket counts for a 10⁴-bucket
/// window set, well under a mebibyte.
pub const MAX_FRAME: usize = 16 << 20;

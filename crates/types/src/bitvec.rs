//! A compact bit vector used for the `A[n]` answer representation.
//!
//! Each query answer is "an n-bit vector where each bit associates with
//! a possible answer value" (paper §3.1). Answers are XOR-combined for
//! the split-message encryption (§3.2.3), so the representation exposes
//! an efficient word-wise XOR. The paper evaluates bit-vector sizes up
//! to 10⁴ bits (Figure 5b), so the layout matters: bits are packed into
//! `u64` limbs, least-significant bit first.

use serde::{Deserialize, Serialize};

/// A fixed-length, heap-allocated bit vector packed into `u64` limbs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    /// Number of addressable bits.
    len: usize,
    /// Packed limbs; bit `i` lives at `limbs[i / 64]` bit `i % 64`.
    /// Bits at positions `>= len` in the last limb are always zero.
    limbs: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            limbs: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a bit vector from an iterator of booleans.
    ///
    /// Limbs are packed directly as the iterator is consumed — no
    /// intermediate buffer and no per-bit read-modify-write.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let iter = bits.into_iter();
        let mut limbs = Vec::with_capacity(iter.size_hint().0.div_ceil(64));
        let mut current = 0u64;
        let mut len = 0usize;
        for b in iter {
            current |= (b as u64) << (len % 64);
            len += 1;
            if len % 64 == 0 {
                limbs.push(current);
                current = 0;
            }
        }
        if len % 64 != 0 {
            limbs.push(current);
        }
        BitVec { len, limbs }
    }

    /// Creates a one-hot vector: `len` bits with only `index` set.
    ///
    /// This is the canonical answer encoding: a numeric answer falls in
    /// exactly one histogram bucket (paper §2.2).
    pub fn one_hot(len: usize, index: usize) -> Self {
        assert!(index < len, "one_hot index {index} out of range {len}");
        let mut v = BitVec::zeros(len);
        v.set(index, true);
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`, returning its new value.
    pub fn toggle(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch in xor");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a ^= *b;
        }
    }

    /// Returns the XOR of two equal-length vectors.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_with(other);
        out
    }

    /// Iterates over all bits, LSB-first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterates over the indices of set bits in increasing order.
    ///
    /// Word-wise: zero limbs are skipped in one comparison and set
    /// bits are located with `trailing_zeros`, so sparse vectors cost
    /// `O(limbs + ones)` rather than `O(len)`.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.limbs.iter().enumerate().flat_map(|(li, &limb)| {
            core::iter::successors(
                if limb == 0 { None } else { Some(limb) },
                |&rest| {
                    let next = rest & (rest - 1); // clear lowest set bit
                    if next == 0 {
                        None
                    } else {
                        Some(next)
                    }
                },
            )
            .map(move |rest| li * 64 + rest.trailing_zeros() as usize)
        })
    }

    /// Serializes to little-endian bytes, `ceil(len/8)` of them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        self.extend_bytes_into(&mut out);
        out
    }

    /// Appends the [`BitVec::to_bytes`] form to `out` without
    /// allocating (beyond any growth of `out` itself): whole limbs are
    /// appended as 8-byte little-endian chunks, the tail byte-by-byte.
    pub fn extend_bytes_into(&self, out: &mut Vec<u8>) {
        let total = self.len.div_ceil(8);
        let whole_limbs = total / 8;
        for &limb in &self.limbs[..whole_limbs] {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        for byte_idx in whole_limbs * 8..total {
            out.push((self.limbs[byte_idx / 8] >> ((byte_idx % 8) * 8)) as u8);
        }
    }

    /// Deserializes from the [`BitVec::to_bytes`] form.
    ///
    /// Returns `None` if `bytes` is shorter than `len` requires, or if
    /// trailing padding bits beyond `len` are set (which would indicate
    /// a corrupt or forged message).
    pub fn from_bytes(len: usize, bytes: &[u8]) -> Option<Self> {
        let mut v = BitVec::zeros(len);
        if v.assign_from_bytes(len, bytes) {
            Some(v)
        } else {
            None
        }
    }

    /// Reuses `self`'s limb storage to hold the vector encoded by
    /// `bytes` (the [`BitVec::to_bytes`] form, `len` bits). Returns
    /// `false` — leaving `self` in an unspecified but valid state — if
    /// `bytes` has the wrong length or set padding bits.
    ///
    /// Allocation-free once `self`'s capacity covers `len`; this is
    /// the decode path the aggregator drains windows through.
    pub fn assign_from_bytes(&mut self, len: usize, bytes: &[u8]) -> bool {
        if bytes.len() != len.div_ceil(8) {
            return false;
        }
        self.len = len;
        let limb_count = len.div_ceil(64);
        self.limbs.clear();
        self.limbs.reserve(limb_count);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.limbs
                .push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.limbs.push(u64::from_le_bytes(tail));
        }
        debug_assert_eq!(self.limbs.len(), limb_count);
        // Reject set bits in the padding region beyond `len` — but
        // first clear them, so even the rejection path leaves `self`
        // honoring the representation invariant (derived
        // `PartialEq`/`Hash` compare raw limbs).
        if len % 64 != 0 {
            let valid_mask = (1u64 << (len % 64)) - 1;
            if let Some(last) = self.limbs.last_mut() {
                if *last & !valid_mask != 0 {
                    *last &= valid_mask;
                    return false;
                }
            }
        }
        true
    }

    /// Access to the raw limb slice (used by the XOR codec fast path).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Mutable access to the raw limb slice (the word-level write path
    /// of the bit-sliced randomizer).
    ///
    /// Callers must keep the invariant that bits at positions
    /// `>= len()` in the last limb stay zero; [`BitVec::mask_padding`]
    /// restores it after bulk limb writes.
    pub fn limbs_mut(&mut self) -> &mut [u64] {
        &mut self.limbs
    }

    /// Zeroes any bits at positions `>= len()` in the last limb,
    /// restoring the representation invariant after raw limb writes.
    pub fn mask_padding(&mut self) {
        if self.len % 64 != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
    }

    /// Resets to an all-zero vector of `len` bits, reusing the limb
    /// allocation when capacity allows.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.limbs.clear();
        self.limbs.resize(len.div_ceil(64), 0);
    }
}

impl Default for BitVec {
    /// The empty (zero-bit) vector.
    fn default() -> Self {
        BitVec::zeros(0)
    }
}

impl core::fmt::Display for BitVec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_set_bits() {
        let v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(v.iter().all(|b| !b));
    }

    #[test]
    fn set_get_round_trip_across_limb_boundaries() {
        let mut v = BitVec::zeros(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            v.set(i, true);
            assert!(v.get(i), "bit {i} should be set");
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    fn one_hot_encodes_a_single_bucket() {
        let v = BitVec::one_hot(11, 3);
        assert_eq!(v.count_ones(), 1);
        assert!(v.get(3));
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "one_hot index")]
    fn one_hot_rejects_out_of_range() {
        let _ = BitVec::one_hot(4, 4);
    }

    #[test]
    fn xor_is_an_involution() {
        let a = BitVec::from_bools((0..100).map(|i| i % 3 == 0));
        let k = BitVec::from_bools((0..100).map(|i| i % 7 < 3));
        let enc = a.xor(&k);
        assert_ne!(enc, a);
        assert_eq!(enc.xor(&k), a);
    }

    #[test]
    fn xor_with_self_is_zero() {
        let a = BitVec::from_bools((0..77).map(|i| i % 2 == 0));
        let z = a.xor(&a);
        assert_eq!(z.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_rejects_length_mismatch() {
        let mut a = BitVec::zeros(8);
        a.xor_with(&BitVec::zeros(9));
    }

    #[test]
    fn byte_round_trip_preserves_contents() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 100, 1000] {
            let v = BitVec::from_bools((0..len).map(|i| (i * 31 + len) % 5 < 2));
            let bytes = v.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            let back = BitVec::from_bytes(len, &bytes).expect("valid bytes");
            assert_eq!(back, v, "round-trip failed for len {len}");
        }
    }

    #[test]
    fn from_bytes_rejects_wrong_length() {
        assert!(BitVec::from_bytes(16, &[0u8; 3]).is_none());
        assert!(BitVec::from_bytes(16, &[0u8; 1]).is_none());
    }

    #[test]
    fn from_bytes_rejects_padding_garbage() {
        // len = 4 needs 1 byte; bits 4..8 are padding and must be 0.
        assert!(BitVec::from_bytes(4, &[0b0001_0000]).is_none());
        assert!(BitVec::from_bytes(4, &[0b0000_1111]).is_some());
    }

    #[test]
    fn rejected_assign_still_upholds_the_representation_invariant() {
        let mut v = BitVec::zeros(4);
        assert!(!v.assign_from_bytes(4, &[0b1000_0011]));
        // Rejected — but `v` must stay a *valid* BitVec: padding bits
        // cleared, so derived equality over raw limbs agrees with
        // logical bit equality.
        let logical = BitVec::from_bools(v.iter());
        assert_eq!(v, logical, "padding bits leaked into limbs");
        assert_eq!(v.to_bytes(), logical.to_bytes());
    }

    #[test]
    fn display_renders_lsb_first() {
        let mut v = BitVec::zeros(5);
        v.set(0, true);
        v.set(3, true);
        assert_eq!(v.to_string(), "10010");
    }
}

//! Shared vocabulary for the PrivApprox reproduction.
//!
//! This crate defines the types that cross subsystem boundaries: the
//! analyst's query model `⟨QID, SQL, A[n], f, w, δ⟩` (paper §3.1,
//! Equation 1), bucketed answer specifications, the bit-vector answer
//! representation, identifiers, event-time primitives, and query
//! execution budgets.
//!
//! Everything here is plain data: no I/O, no randomness, no threads.

pub mod bitvec;
pub mod budget;
pub mod fasthash;
pub mod ids;
pub mod query;
pub mod time;
pub mod wire;
pub mod words;

pub use bitvec::BitVec;
pub use budget::{Budget, BudgetExhausted, BudgetLedger, ExecutionParams, PrivacyBudget};
pub use fasthash::{FastHasher, FastState};
pub use ids::{AnalystId, ClientId, MessageId, ProxyId, QueryId};
pub use query::{AnswerSpec, BucketIndexer, BucketRule, Query, QueryBuilder};
pub use time::{Millis, Timestamp, Window, WindowSpec};
pub use wire::{MAX_FRAME, WIRE_VERSION};

//! Event-time primitives and sliding-window specifications.
//!
//! The analyst's query carries a window length `w` and a sliding
//! interval `δ` (paper §3.1); the aggregator computes results "as a
//! sliding window … for every window" (§3.2.4). Window assignment
//! follows the standard event-time semantics: an event at time `t`
//! belongs to every window `[start, start + w)` with
//! `start ≡ 0 (mod δ)` and `start ∈ (t − w, t]`.

use serde::{Deserialize, Serialize};

/// A span of milliseconds (durations, periods, window sizes).
pub type Millis = u64;

/// An event-time instant in milliseconds since the stream epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub Millis);

impl Timestamp {
    /// Advances the timestamp by `delta` milliseconds.
    pub const fn plus(self, delta: Millis) -> Timestamp {
        Timestamp(self.0 + delta)
    }

    /// Saturating subtraction of `delta` milliseconds.
    pub const fn minus(self, delta: Millis) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta))
    }
}

impl core::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

/// A half-open event-time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Window {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl Window {
    /// Builds a window from start and length.
    pub const fn of(start: Timestamp, size: Millis) -> Window {
        Window {
            start,
            end: Timestamp(start.0 + size),
        }
    }

    /// True if `t` falls inside `[start, end)`.
    pub const fn contains(&self, t: Timestamp) -> bool {
        t.0 >= self.start.0 && t.0 < self.end.0
    }

    /// Window length in milliseconds.
    pub const fn size(&self) -> Millis {
        self.end.0 - self.start.0
    }
}

impl core::fmt::Display for Window {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}, {})", self.start.0, self.end.0)
    }
}

/// A sliding-window specification `(w, δ)`.
///
/// `slide == size` degenerates to tumbling windows; `slide > size` is
/// rejected because events would fall into no window at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Window length `w` in milliseconds.
    pub size: Millis,
    /// Sliding interval `δ` in milliseconds.
    pub slide: Millis,
}

impl WindowSpec {
    /// Creates a sliding-window spec.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or if `slide > size`.
    pub fn sliding(size: Millis, slide: Millis) -> WindowSpec {
        assert!(size > 0, "window size must be positive");
        assert!(slide > 0, "window slide must be positive");
        assert!(
            slide <= size,
            "slide ({slide}) must not exceed size ({size}): events would be dropped"
        );
        WindowSpec { size, slide }
    }

    /// Creates a tumbling-window spec (`slide == size`).
    pub fn tumbling(size: Millis) -> WindowSpec {
        WindowSpec::sliding(size, size)
    }

    /// Number of windows each event belongs to: `⌈w / δ⌉`.
    pub fn windows_per_event(&self) -> usize {
        (self.size.div_ceil(self.slide)) as usize
    }

    /// All windows containing the event time `t`, in increasing start
    /// order.
    ///
    /// Allocating wrapper over [`WindowSpec::assigned`].
    pub fn assign(&self, t: Timestamp) -> Vec<Window> {
        self.assigned(t).collect()
    }

    /// Iterator over the windows containing the event time `t`, in
    /// increasing start order — the allocation-free form of
    /// [`WindowSpec::assign`] that the streaming hot path
    /// (`WindowedFold::push`) walks per event.
    pub fn assigned(&self, t: Timestamp) -> AssignedWindows {
        // Earliest window start that still contains t: the smallest
        // multiple of `slide` strictly greater than t - size.
        let lower = t.0.saturating_sub(self.size - 1); // inclusive bound on start
        let first = lower.div_ceil(self.slide) * self.slide;
        AssignedWindows {
            next_start: first,
            last_start: t.0,
            size: self.size,
            slide: self.slide,
        }
    }

    /// The single window with the latest start containing `t` (the
    /// "current" window for result emission).
    pub fn current_window(&self, t: Timestamp) -> Window {
        let start = (t.0 / self.slide) * self.slide;
        Window::of(Timestamp(start), self.size)
    }
}

/// Iterator over the windows containing one event time (see
/// [`WindowSpec::assigned`]).
#[derive(Debug, Clone)]
pub struct AssignedWindows {
    next_start: Millis,
    /// Inclusive bound: the event time itself (starts beyond it no
    /// longer contain the event).
    last_start: Millis,
    size: Millis,
    slide: Millis,
}

impl Iterator for AssignedWindows {
    type Item = Window;

    fn next(&mut self) -> Option<Window> {
        if self.next_start > self.last_start {
            return None;
        }
        let w = Window::of(Timestamp(self.next_start), self.size);
        self.next_start += self.slide;
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment_is_unique() {
        let spec = WindowSpec::tumbling(100);
        for t in [0, 1, 99, 100, 250] {
            let ws = spec.assign(Timestamp(t));
            assert_eq!(ws.len(), 1, "tumbling event at {t} in one window");
            assert!(ws[0].contains(Timestamp(t)));
            assert_eq!(ws[0].start.0 % 100, 0);
        }
    }

    #[test]
    fn sliding_assignment_covers_w_over_delta_windows() {
        // w = 10 min, δ = 1 min — the paper's §3.1 example.
        let spec = WindowSpec::sliding(600_000, 60_000);
        let t = Timestamp(3_600_000);
        let ws = spec.assign(t);
        assert_eq!(ws.len(), 10);
        for w in &ws {
            assert!(w.contains(t), "window {w} must contain {t}");
            assert_eq!(w.size(), 600_000);
            assert_eq!(w.start.0 % 60_000, 0);
        }
        // Starts are consecutive multiples of the slide.
        for pair in ws.windows(2) {
            assert_eq!(pair[1].start.0 - pair[0].start.0, 60_000);
        }
    }

    #[test]
    fn assignment_near_origin_truncates() {
        let spec = WindowSpec::sliding(100, 25);
        let ws = spec.assign(Timestamp(10));
        // Only windows with non-negative aligned starts exist.
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].start, Timestamp(0));
    }

    #[test]
    fn every_assigned_window_contains_the_event() {
        let spec = WindowSpec::sliding(90, 20);
        for t in 0..400u64 {
            for w in spec.assign(Timestamp(t)) {
                assert!(w.contains(Timestamp(t)), "t={t} window={w}");
            }
        }
    }

    #[test]
    fn no_containing_window_is_missed() {
        let spec = WindowSpec::sliding(90, 20);
        for t in 0..400u64 {
            let assigned = spec.assign(Timestamp(t));
            // Exhaustively check all aligned starts.
            let mut expect = Vec::new();
            let mut start = 0u64;
            while start <= t {
                let w = Window::of(Timestamp(start), 90);
                if w.contains(Timestamp(t)) {
                    expect.push(w);
                }
                start += 20;
            }
            assert_eq!(assigned, expect, "t={t}");
        }
    }

    #[test]
    fn current_window_has_latest_start() {
        let spec = WindowSpec::sliding(100, 25);
        let w = spec.current_window(Timestamp(130));
        assert_eq!(w.start, Timestamp(125));
        assert!(w.contains(Timestamp(130)));
    }

    #[test]
    #[should_panic(expected = "slide")]
    fn slide_larger_than_size_is_rejected() {
        let _ = WindowSpec::sliding(10, 20);
    }

    #[test]
    fn timestamp_arithmetic_saturates() {
        assert_eq!(Timestamp(5).minus(10), Timestamp(0));
        assert_eq!(Timestamp(5).plus(10), Timestamp(15));
    }
}

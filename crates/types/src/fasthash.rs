//! A deterministic multiply-mix hasher for small fixed-width keys.
//!
//! The hot paths key their maps by ids that are one or two machine
//! words (`QueryId`, `MessageId`): the client's plan and indexer
//! caches take a lookup per answered message, and the aggregator's
//! MID joiner takes one per share. `std`'s default SipHash spends
//! more time absorbing a 16-byte key than those lookups spend on the
//! rest of the probe, and its per-process random seed makes map
//! behaviour vary run to run. This hasher folds each written word
//! into a single 64-bit state with a rotate + xor + odd-constant
//! multiply (the Fx / fxhash construction) — a handful of cycles per
//! key, deterministic across runs.
//!
//! Not DoS-resistant, and deliberately so: every keyed map using it
//! holds *internally generated* ids (random 128-bit MIDs, analyst
//! query ids), never attacker-chosen strings, so flooding a bucket
//! would require controlling the client RNG itself.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FastHasher`], usable as the `S` parameter of
/// `HashMap`/`HashSet`. Deterministic: no per-process seed.
pub type FastState = BuildHasherDefault<FastHasher>;

/// Multiplicative word-folding hasher (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

/// 2⁶⁴ / φ, the usual odd multiplicative constant: consecutive ids
/// land maximally spread in the upper bits the map indexes by.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            // Length tag so "ab" and "ab\0" fold differently.
            word[7] = rem.len() as u8;
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    fn hash_of(f: impl FnOnce(&mut FastHasher)) -> u64 {
        let mut h = FastHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        let a = hash_of(|h| h.write_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233));
        let b = hash_of(|h| h.write_u128(0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233));
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash_of(|h| h.write_u64(i))), "collision at {i}");
        }
    }

    #[test]
    fn byte_writes_are_length_tagged() {
        let a = hash_of(|h| h.write(b"ab"));
        let b = hash_of(|h| h.write(b"ab\0"));
        assert_ne!(a, b);
    }

    #[test]
    fn works_as_map_state() {
        let mut map: HashMap<u128, u32, FastState> = HashMap::default();
        for i in 0..1_000u128 {
            map.insert(i * 0x1_0000_0001, i as u32);
        }
        for i in 0..1_000u128 {
            assert_eq!(map.get(&(i * 0x1_0000_0001)), Some(&(i as u32)));
        }
        let state = FastState::default();
        assert_eq!(state.hash_one(7u64), state.hash_one(7u64));
    }

    /// Sequential ids (the common QueryId shape) must spread: a
    /// multiply-only hash with a bad constant can pile consecutive
    /// keys into the same buckets and degrade the map to a list.
    #[test]
    fn sequential_ids_spread_over_buckets() {
        let mut buckets = [0u32; 64];
        for i in 0..64_000u64 {
            let h = hash_of(|h| h.write_u64(i));
            buckets[(h >> 58) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(min > 500 && max < 1_500, "skewed spread: {min}..{max}");
    }
}

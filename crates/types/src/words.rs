//! Word-level byte-slice operations shared by the hot paths.
//!
//! The XOR split/join pipeline moves share payloads as `&[u8]`, but
//! the arithmetic is pure XOR — so every layer (splitter, joiner,
//! combiner) funnels through [`xor_into`], which works in `u64` chunks
//! and lets LLVM vectorize the loop, instead of each call site keeping
//! its own byte-at-a-time loop.

/// XORs `src` into `dst` element-wise: `dst[i] ^= src[i]`.
///
/// Operates on `u64` words with a byte tail; both slices must have the
/// same length.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into length mismatch");
    let mut dst_chunks = dst.chunks_exact_mut(8);
    let mut src_chunks = src.chunks_exact(8);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        let word = u64::from_le_bytes(d[..8].try_into().expect("8-byte chunk"))
            ^ u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&word.to_le_bytes());
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_matches_scalar_for_all_tail_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100, 1261] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 13 + 11) as u8).collect();
            let expect: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            let mut got = a.clone();
            xor_into(&mut got, &b);
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[test]
    fn xor_is_an_involution() {
        let mut data: Vec<u8> = (0..333).map(|i| i as u8).collect();
        let key: Vec<u8> = (0..333).map(|i| (i * 31) as u8).collect();
        let orig = data.clone();
        xor_into(&mut data, &key);
        assert_ne!(data, orig);
        xor_into(&mut data, &key);
        assert_eq!(data, orig);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        xor_into(&mut [0u8; 3], &[0u8; 4]);
    }
}

//! Query execution budgets and the derived system parameters.
//!
//! "Analysts publish streaming queries to the system, and also specify
//! a query execution budget … either in the form of latency
//! guarantees/SLAs, output quality/accuracy, or the computing resources
//! for query processing" (paper §2.1). The aggregator's initializer
//! converts a budget into the sampling parameter `s` and the
//! randomization parameters `(p, q)` (§3.1, §5); the conversion logic
//! itself lives in `privapprox-core::initializer` — this module only
//! defines the vocabulary.

use serde::{Deserialize, Serialize};

use crate::time::Millis;

/// An analyst-specified query execution budget (paper §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Budget {
    /// Latency SLA: each windowed result must be produced within the
    /// given number of milliseconds.
    LatencySla(Millis),
    /// Output-quality target: the half-width of the confidence
    /// interval, relative to the estimate, must stay below
    /// `target_error` at the given `confidence` level (e.g. 0.05 at
    /// 0.95).
    Accuracy {
        /// Maximum tolerated relative error.
        target_error: f64,
        /// Confidence level in (0, 1), typically 0.95.
        confidence: f64,
    },
    /// Resource cap: at most this many client answers may be processed
    /// per window (drives the sampling parameter directly).
    Resources {
        /// Maximum answers per window the aggregator may ingest.
        max_answers_per_window: u64,
    },
}

impl Budget {
    /// A conventional default: 5 % relative error at 95 % confidence.
    pub fn default_accuracy() -> Budget {
        Budget::Accuracy {
            target_error: 0.05,
            confidence: 0.95,
        }
    }
}

/// The system parameters the initializer derives from a budget:
/// sampling fraction `s` and randomization coin biases `(p, q)`
/// (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionParams {
    /// Sampling parameter: probability that a client participates in a
    /// given epoch (§3.2.1).
    pub s: f64,
    /// First-coin bias: probability of answering truthfully (§3.2.2).
    pub p: f64,
    /// Second-coin bias: probability of answering "Yes" when lying.
    pub q: f64,
}

impl ExecutionParams {
    /// Creates parameters, validating each lies in its legal range.
    ///
    /// `s ∈ (0, 1]`, `p ∈ (0, 1]`, `q ∈ (0, 1)`. `p = 1` disables
    /// randomization (used by the error-decomposition experiments);
    /// `q` must avoid 0 and 1 or Equation 8's ε diverges trivially.
    pub fn new(s: f64, p: f64, q: f64) -> Result<ExecutionParams, ParamError> {
        if !(s > 0.0 && s <= 1.0) {
            return Err(ParamError::Sampling(s));
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(ParamError::FirstCoin(p));
        }
        if !(q > 0.0 && q < 1.0) {
            return Err(ParamError::SecondCoin(q));
        }
        Ok(ExecutionParams { s, p, q })
    }

    /// Unvalidated constructor for compile-time-known constants.
    ///
    /// # Panics
    ///
    /// Panics on invalid values (same domain as [`ExecutionParams::new`]).
    pub fn checked(s: f64, p: f64, q: f64) -> ExecutionParams {
        ExecutionParams::new(s, p, q).expect("invalid execution parameters")
    }
}

impl Default for ExecutionParams {
    /// The paper's most common microbenchmark setting:
    /// `s = 0.6, p = 0.6, q = 0.6`.
    fn default() -> Self {
        ExecutionParams {
            s: 0.6,
            p: 0.6,
            q: 0.6,
        }
    }
}

/// A per-query differential-privacy allowance (journal version §4.3):
/// the total zero-knowledge ε a query may consume across its lifetime.
/// Each answered epoch spends `epsilon_zk(s, p, q)`; once the
/// remaining allowance cannot cover the next epoch the query must be
/// retired. Stored as a plain `f64` so the leaf `types` crate needs no
/// knowledge of the ε formulas (those live in `privapprox-rr`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyBudget {
    allocated: f64,
}

impl PrivacyBudget {
    /// A finite lifetime allowance of `epsilon > 0`.
    pub fn new(epsilon: f64) -> Result<PrivacyBudget, ParamError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(ParamError::Epsilon(epsilon));
        }
        Ok(PrivacyBudget { allocated: epsilon })
    }

    /// No cap: every epoch charge is admitted. Required for exact-mode
    /// runs (`p ≥ 1` disables randomization, so per-epoch ε is
    /// infinite) and for open-ended monitoring queries.
    pub fn unbounded() -> PrivacyBudget {
        PrivacyBudget {
            allocated: f64::INFINITY,
        }
    }

    /// The lifetime allowance (infinite for [`PrivacyBudget::unbounded`]).
    pub fn allocated(&self) -> f64 {
        self.allocated
    }

    /// Whether this budget admits every charge.
    pub fn is_unbounded(&self) -> bool {
        self.allocated.is_infinite()
    }
}

/// Append-only spend ledger for one query's [`PrivacyBudget`].
///
/// The single mutating operation, [`BudgetLedger::try_charge`], either
/// debits a whole epoch or rejects it — there is no partial spend and
/// no refund, so `spent() <= allocated()` holds by construction over
/// any interleaving of charges (the `multi_query` property suite
/// replays arbitrary interleavings against this invariant).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetLedger {
    allocated: f64,
    spent: f64,
    epochs: u64,
}

impl BudgetLedger {
    /// A fresh ledger with nothing spent.
    pub fn new(budget: PrivacyBudget) -> BudgetLedger {
        BudgetLedger {
            allocated: budget.allocated(),
            spent: 0.0,
            epochs: 0,
        }
    }

    /// Reconstructs a ledger from journaled state (crash recovery).
    /// The restored spend is clamped to the allowance: a journal can
    /// only under-report spend (charges are journaled before any
    /// send), so recovery must never manufacture an over-spent — or
    /// worse, free-budget — ledger from a corrupt pair.
    pub fn restore(allocated: f64, spent: f64, epochs: u64) -> BudgetLedger {
        BudgetLedger {
            allocated,
            spent: if spent.is_finite() && spent >= 0.0 {
                spent.min(allocated)
            } else {
                0.0
            },
            epochs,
        }
    }

    /// Debits one epoch worth of `epsilon`, or rejects the charge —
    /// leaving the ledger untouched — when it would overdraw the
    /// allowance. Non-finite charges (exact mode: ε = ∞) are admitted
    /// only by an unbounded budget, and do not advance `spent`.
    ///
    /// The debit arithmetic is deliberately conservative (never
    /// under-counting): a positive ε that naive `f64` addition would
    /// round away entirely is bumped to the next representable value
    /// instead, and a sum that would overflow past the largest finite
    /// double is treated as exceeding any finite allowance. Without
    /// this, a crafted ε near the budget cap parks `spent` at a value
    /// whose rounding absorbs every later charge — unlimited epochs
    /// against a finite ε allowance, i.e. free privacy budget.
    pub fn try_charge(&mut self, epsilon: f64) -> Result<(), BudgetExhausted> {
        if epsilon.is_nan() || epsilon < 0.0 {
            return Err(self.exhausted(epsilon));
        }
        if self.allocated.is_infinite() {
            if epsilon.is_finite() {
                // The unbounded meter saturates at the largest finite
                // double rather than degrading to ∞ (which would make
                // `spent` indistinguishable from the allowance).
                self.spent = charge_up(self.spent, epsilon).min(f64::MAX);
            }
            self.epochs = self.epochs.saturating_add(1);
            return Ok(());
        }
        if !epsilon.is_finite() {
            return Err(self.exhausted(epsilon));
        }
        let debited = charge_up(self.spent, epsilon);
        if debited > self.allocated {
            return Err(self.exhausted(epsilon));
        }
        self.spent = debited;
        self.epochs = self.epochs.saturating_add(1);
        Ok(())
    }

    fn exhausted(&self, requested: f64) -> BudgetExhausted {
        BudgetExhausted {
            requested,
            spent: self.spent,
            allocated: self.allocated,
            epochs: self.epochs,
        }
    }

    /// Total ε debited so far. Never exceeds [`BudgetLedger::allocated`].
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// The lifetime allowance this ledger enforces.
    pub fn allocated(&self) -> f64 {
        self.allocated
    }

    /// Allowance still available (infinite for unbounded budgets).
    pub fn remaining(&self) -> f64 {
        if self.allocated.is_infinite() {
            f64::INFINITY
        } else {
            (self.allocated - self.spent).max(0.0)
        }
    }

    /// Number of epochs successfully charged.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }
}

/// Total ε after debiting `epsilon` from `spent`, rounded *up*: a
/// positive charge always strictly advances the sum (absorption by
/// rounding becomes the next representable double instead), and a sum
/// past the largest finite double lands on ∞, which every finite
/// allowance then rejects. Both inputs are finite and non-negative at
/// the call sites.
fn charge_up(spent: f64, epsilon: f64) -> f64 {
    let sum = spent + epsilon;
    if epsilon > 0.0 && sum <= spent {
        next_up(spent)
    } else {
        sum
    }
}

/// Smallest double strictly greater than finite non-negative `x`
/// (`f64::MAX` maps to ∞). Hand-rolled while `f64::next_up` is
/// unstable on the pinned toolchain.
fn next_up(x: f64) -> f64 {
    f64::from_bits(x.to_bits() + 1)
}

/// A rejected [`BudgetLedger::try_charge`]: the query must be retired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExhausted {
    /// The per-epoch ε that could not be covered.
    pub requested: f64,
    /// Total ε spent before the rejected charge.
    pub spent: f64,
    /// The lifetime allowance.
    pub allocated: f64,
    /// Epochs successfully charged before exhaustion.
    pub epochs: u64,
}

impl core::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "privacy budget exhausted: charge {} after spending {} of {} over {} epochs",
            self.requested, self.spent, self.allocated, self.epochs
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// Rejection reasons for out-of-range execution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// `s` outside (0, 1].
    Sampling(f64),
    /// `p` outside (0, 1].
    FirstCoin(f64),
    /// `q` outside (0, 1).
    SecondCoin(f64),
    /// Privacy budget ε not a positive finite number.
    Epsilon(f64),
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParamError::Sampling(s) => write!(f, "sampling parameter s={s} outside (0, 1]"),
            ParamError::FirstCoin(p) => write!(f, "randomization parameter p={p} outside (0, 1]"),
            ParamError::SecondCoin(q) => write!(f, "randomization parameter q={q} outside (0, 1)"),
            ParamError::Epsilon(e) => write!(f, "privacy budget epsilon={e} not positive finite"),
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_accepted() {
        let p = ExecutionParams::new(0.6, 0.9, 0.3).unwrap();
        assert_eq!(p.s, 0.6);
        assert_eq!(p.p, 0.9);
        assert_eq!(p.q, 0.3);
    }

    #[test]
    fn boundary_params() {
        assert!(ExecutionParams::new(1.0, 1.0, 0.5).is_ok());
        assert!(ExecutionParams::new(0.0, 0.5, 0.5).is_err());
        assert!(ExecutionParams::new(0.5, 0.0, 0.5).is_err());
        assert!(ExecutionParams::new(0.5, 0.5, 0.0).is_err());
        assert!(ExecutionParams::new(0.5, 0.5, 1.0).is_err());
        assert!(ExecutionParams::new(1.1, 0.5, 0.5).is_err());
        assert!(ExecutionParams::new(f64::NAN, 0.5, 0.5).is_err());
    }

    #[test]
    fn error_messages_name_the_offender() {
        let e = ExecutionParams::new(2.0, 0.5, 0.5).unwrap_err();
        assert!(e.to_string().contains("s=2"));
        let e = ExecutionParams::new(0.5, 2.0, 0.5).unwrap_err();
        assert!(e.to_string().contains("p=2"));
        let e = ExecutionParams::new(0.5, 0.5, 2.0).unwrap_err();
        assert!(e.to_string().contains("q=2"));
    }

    #[test]
    fn ledger_rejects_overdraft_without_mutation() {
        let mut l = BudgetLedger::new(PrivacyBudget::new(1.0).unwrap());
        l.try_charge(0.4).unwrap();
        l.try_charge(0.4).unwrap();
        let err = l.try_charge(0.4).unwrap_err();
        assert_eq!(err.spent, 0.8);
        assert_eq!(err.allocated, 1.0);
        assert_eq!(err.epochs, 2);
        // Rejected charge leaves the ledger untouched and chargeable.
        assert_eq!(l.spent(), 0.8);
        assert_eq!(l.epochs(), 2);
        l.try_charge(0.2).unwrap();
        assert!(l.spent() <= l.allocated());
        assert_eq!(l.remaining(), 0.0);
    }

    #[test]
    fn unbounded_ledger_admits_infinite_charges() {
        let mut l = BudgetLedger::new(PrivacyBudget::unbounded());
        l.try_charge(f64::INFINITY).unwrap();
        l.try_charge(3.0).unwrap();
        assert_eq!(l.epochs(), 2);
        assert_eq!(l.spent(), 3.0);
        assert!(l.remaining().is_infinite());
    }

    #[test]
    fn bounded_ledger_rejects_infinite_and_invalid_charges() {
        let mut l = BudgetLedger::new(PrivacyBudget::new(10.0).unwrap());
        assert!(l.try_charge(f64::INFINITY).is_err());
        assert!(l.try_charge(f64::NAN).is_err());
        assert!(l.try_charge(-1.0).is_err());
        assert_eq!(l.epochs(), 0);
        assert_eq!(l.spent(), 0.0);
    }

    #[test]
    fn charge_near_cap_cannot_wrap_into_free_budget() {
        // The regression this pins: a crafted ε at the largest finite
        // double. The allowance covers it exactly; after that the
        // ledger sits at saturation, and *no* further positive charge
        // — huge (sum overflows) or tiny (sum rounds back to spent) —
        // may be admitted. Pre-fix, both were: `MAX + MAX` overflowed
        // to ∞ on an unbounded meter, and `MAX + tiny == MAX` passed
        // the `> allocated` test forever, i.e. unlimited epochs.
        let mut l = BudgetLedger::new(PrivacyBudget::new(f64::MAX).unwrap());
        l.try_charge(f64::MAX).unwrap();
        assert_eq!(l.spent(), f64::MAX);
        assert!(l.try_charge(f64::MAX).is_err(), "overflowing re-charge admitted");
        assert!(l.try_charge(1.0).is_err(), "absorbed re-charge admitted");
        assert!(l.try_charge(1e-300).is_err());
        assert_eq!(l.epochs(), 1);
        assert_eq!(l.spent(), f64::MAX);
        assert!(l.spent() <= l.allocated());
    }

    #[test]
    fn tiny_charges_always_register_or_reject() {
        // ε small enough that naive addition absorbs it: the debit
        // must still strictly advance `spent` (never a free epoch).
        let mut l = BudgetLedger::new(PrivacyBudget::new(1.0).unwrap());
        l.try_charge(0.5).unwrap();
        let before = l.spent();
        l.try_charge(1e-20).unwrap();
        assert!(
            l.spent() > before,
            "positive charge admitted without advancing spent"
        );
        // And the strictly-monotone debit composes: hammering the
        // ledger with absorbed charges can only march spent upward,
        // never park it below the allowance forever at zero cost.
        let mut last = l.spent();
        for _ in 0..1000 {
            match l.try_charge(1e-20) {
                Ok(()) => {
                    assert!(l.spent() > last);
                    last = l.spent();
                }
                Err(_) => break,
            }
        }
        assert!(l.spent() <= l.allocated());
    }

    #[test]
    fn unbounded_meter_saturates_instead_of_degrading() {
        let mut l = BudgetLedger::new(PrivacyBudget::unbounded());
        l.try_charge(f64::MAX).unwrap();
        l.try_charge(f64::MAX).unwrap();
        assert_eq!(l.spent(), f64::MAX, "meter saturates, never reads ∞");
        assert_eq!(l.epochs(), 2);
        assert!(l.remaining().is_infinite());
        l.try_charge(f64::INFINITY).unwrap();
        assert_eq!(l.spent(), f64::MAX);
    }

    #[test]
    fn budget_validation() {
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(-1.0).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY).is_err());
        assert!(PrivacyBudget::new(f64::NAN).is_err());
        assert!(PrivacyBudget::new(2.5).is_ok());
        assert!(PrivacyBudget::unbounded().is_unbounded());
        assert!(!PrivacyBudget::new(2.5).unwrap().is_unbounded());
    }

    #[test]
    fn default_budget_is_95_confidence() {
        match Budget::default_accuracy() {
            Budget::Accuracy {
                target_error,
                confidence,
            } => {
                assert_eq!(target_error, 0.05);
                assert_eq!(confidence, 0.95);
            }
            other => panic!("unexpected default budget {other:?}"),
        }
    }
}

//! Query execution budgets and the derived system parameters.
//!
//! "Analysts publish streaming queries to the system, and also specify
//! a query execution budget … either in the form of latency
//! guarantees/SLAs, output quality/accuracy, or the computing resources
//! for query processing" (paper §2.1). The aggregator's initializer
//! converts a budget into the sampling parameter `s` and the
//! randomization parameters `(p, q)` (§3.1, §5); the conversion logic
//! itself lives in `privapprox-core::initializer` — this module only
//! defines the vocabulary.

use serde::{Deserialize, Serialize};

use crate::time::Millis;

/// An analyst-specified query execution budget (paper §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Budget {
    /// Latency SLA: each windowed result must be produced within the
    /// given number of milliseconds.
    LatencySla(Millis),
    /// Output-quality target: the half-width of the confidence
    /// interval, relative to the estimate, must stay below
    /// `target_error` at the given `confidence` level (e.g. 0.05 at
    /// 0.95).
    Accuracy {
        /// Maximum tolerated relative error.
        target_error: f64,
        /// Confidence level in (0, 1), typically 0.95.
        confidence: f64,
    },
    /// Resource cap: at most this many client answers may be processed
    /// per window (drives the sampling parameter directly).
    Resources {
        /// Maximum answers per window the aggregator may ingest.
        max_answers_per_window: u64,
    },
}

impl Budget {
    /// A conventional default: 5 % relative error at 95 % confidence.
    pub fn default_accuracy() -> Budget {
        Budget::Accuracy {
            target_error: 0.05,
            confidence: 0.95,
        }
    }
}

/// The system parameters the initializer derives from a budget:
/// sampling fraction `s` and randomization coin biases `(p, q)`
/// (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionParams {
    /// Sampling parameter: probability that a client participates in a
    /// given epoch (§3.2.1).
    pub s: f64,
    /// First-coin bias: probability of answering truthfully (§3.2.2).
    pub p: f64,
    /// Second-coin bias: probability of answering "Yes" when lying.
    pub q: f64,
}

impl ExecutionParams {
    /// Creates parameters, validating each lies in its legal range.
    ///
    /// `s ∈ (0, 1]`, `p ∈ (0, 1]`, `q ∈ (0, 1)`. `p = 1` disables
    /// randomization (used by the error-decomposition experiments);
    /// `q` must avoid 0 and 1 or Equation 8's ε diverges trivially.
    pub fn new(s: f64, p: f64, q: f64) -> Result<ExecutionParams, ParamError> {
        if !(s > 0.0 && s <= 1.0) {
            return Err(ParamError::Sampling(s));
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(ParamError::FirstCoin(p));
        }
        if !(q > 0.0 && q < 1.0) {
            return Err(ParamError::SecondCoin(q));
        }
        Ok(ExecutionParams { s, p, q })
    }

    /// Unvalidated constructor for compile-time-known constants.
    ///
    /// # Panics
    ///
    /// Panics on invalid values (same domain as [`ExecutionParams::new`]).
    pub fn checked(s: f64, p: f64, q: f64) -> ExecutionParams {
        ExecutionParams::new(s, p, q).expect("invalid execution parameters")
    }
}

impl Default for ExecutionParams {
    /// The paper's most common microbenchmark setting:
    /// `s = 0.6, p = 0.6, q = 0.6`.
    fn default() -> Self {
        ExecutionParams {
            s: 0.6,
            p: 0.6,
            q: 0.6,
        }
    }
}

/// Rejection reasons for out-of-range execution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// `s` outside (0, 1].
    Sampling(f64),
    /// `p` outside (0, 1].
    FirstCoin(f64),
    /// `q` outside (0, 1).
    SecondCoin(f64),
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParamError::Sampling(s) => write!(f, "sampling parameter s={s} outside (0, 1]"),
            ParamError::FirstCoin(p) => write!(f, "randomization parameter p={p} outside (0, 1]"),
            ParamError::SecondCoin(q) => write!(f, "randomization parameter q={q} outside (0, 1)"),
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_accepted() {
        let p = ExecutionParams::new(0.6, 0.9, 0.3).unwrap();
        assert_eq!(p.s, 0.6);
        assert_eq!(p.p, 0.9);
        assert_eq!(p.q, 0.3);
    }

    #[test]
    fn boundary_params() {
        assert!(ExecutionParams::new(1.0, 1.0, 0.5).is_ok());
        assert!(ExecutionParams::new(0.0, 0.5, 0.5).is_err());
        assert!(ExecutionParams::new(0.5, 0.0, 0.5).is_err());
        assert!(ExecutionParams::new(0.5, 0.5, 0.0).is_err());
        assert!(ExecutionParams::new(0.5, 0.5, 1.0).is_err());
        assert!(ExecutionParams::new(1.1, 0.5, 0.5).is_err());
        assert!(ExecutionParams::new(f64::NAN, 0.5, 0.5).is_err());
    }

    #[test]
    fn error_messages_name_the_offender() {
        let e = ExecutionParams::new(2.0, 0.5, 0.5).unwrap_err();
        assert!(e.to_string().contains("s=2"));
        let e = ExecutionParams::new(0.5, 2.0, 0.5).unwrap_err();
        assert!(e.to_string().contains("p=2"));
        let e = ExecutionParams::new(0.5, 0.5, 2.0).unwrap_err();
        assert!(e.to_string().contains("q=2"));
    }

    #[test]
    fn default_budget_is_95_confidence() {
        match Budget::default_accuracy() {
            Budget::Accuracy {
                target_error,
                confidence,
            } => {
                assert_eq!(target_error, 0.05);
                assert_eq!(confidence, 0.95);
            }
            other => panic!("unexpected default budget {other:?}"),
        }
    }
}

//! Property-based tests for the shared types.

use privapprox_types::query::like_match;
use privapprox_types::{BitVec, Timestamp, WindowSpec};
use proptest::prelude::*;

proptest! {
    /// Byte serialization round-trips for arbitrary bit patterns and
    /// lengths.
    #[test]
    fn bitvec_bytes_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..512)) {
        let v = BitVec::from_bools(bits.iter().copied());
        let bytes = v.to_bytes();
        let back = BitVec::from_bytes(bits.len(), &bytes).expect("round trip");
        prop_assert_eq!(back, v);
    }

    /// XOR is an involution: (a ⊕ k) ⊕ k = a, for any equal lengths.
    #[test]
    fn bitvec_xor_involution(
        a in proptest::collection::vec(any::<bool>(), 1..256),
        seed in any::<u64>(),
    ) {
        let v = BitVec::from_bools(a.iter().copied());
        // Derive a key of the same length from the seed.
        let key = BitVec::from_bools((0..a.len()).map(|i| {
            (seed.rotate_left((i % 64) as u32) ^ i as u64) & 1 == 1
        }));
        let enc = v.xor(&key);
        prop_assert_eq!(enc.xor(&key), v);
    }

    /// count_ones equals the number of true inputs.
    #[test]
    fn bitvec_count_ones_matches(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        if bits.is_empty() {
            return Ok(()); // zero-length vectors are not constructible from_bools? they are; check anyway
        }
        let v = BitVec::from_bools(bits.iter().copied());
        prop_assert_eq!(v.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    /// Every window assigned to an event contains it, the count is
    /// ⌈w/δ⌉ (away from the origin), and no containing window is
    /// missed.
    #[test]
    fn window_assignment_invariants(
        size in 1u64..1000,
        slide_frac in 1u64..1000,
        t in 0u64..100_000,
    ) {
        let slide = (slide_frac % size).max(1);
        let spec = WindowSpec::sliding(size, slide);
        let ts = Timestamp(t);
        let windows = spec.assign(ts);
        for w in &windows {
            prop_assert!(w.contains(ts), "window {w} must contain t={t}");
            prop_assert_eq!(w.size(), size);
            prop_assert_eq!(w.start.0 % slide, 0);
        }
        // Count, away from the origin: ⌈w/δ⌉ when δ divides w;
        // otherwise alignment decides between ⌊w/δ⌋ and ⌈w/δ⌉.
        if t >= size {
            let hi = spec.windows_per_event();
            let lo = (size / slide).max(1) as usize;
            prop_assert!(
                (lo..=hi).contains(&windows.len()),
                "len {} outside [{lo}, {hi}]",
                windows.len()
            );
            if size % slide == 0 {
                prop_assert_eq!(windows.len(), hi);
            }
        }
        // Starts strictly increase by slide.
        for pair in windows.windows(2) {
            prop_assert_eq!(pair[1].start.0 - pair[0].start.0, slide);
        }
    }

    /// LIKE with no wildcards is exact string equality.
    #[test]
    fn like_without_wildcards_is_equality(s in "[a-z]{0,12}", t in "[a-z]{0,12}") {
        prop_assert_eq!(like_match(&s, &t), s == t);
    }

    /// `%s%` matches exactly the strings containing `s`.
    #[test]
    fn like_contains_semantics(needle in "[a-z]{1,5}", hay in "[a-z]{0,20}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&pattern, &hay), hay.contains(&needle));
    }

    /// `s%` is prefix matching; `%s` is suffix matching.
    #[test]
    fn like_prefix_suffix_semantics(affix in "[a-z]{1,5}", hay in "[a-z]{0,20}") {
        prop_assert_eq!(like_match(&format!("{affix}%"), &hay), hay.starts_with(&affix));
        prop_assert_eq!(like_match(&format!("%{affix}"), &hay), hay.ends_with(&affix));
    }

    /// `_` consumes exactly one character.
    #[test]
    fn like_underscore_counts_length(hay in "[a-z]{0,10}") {
        let pattern = "_".repeat(hay.chars().count());
        prop_assert!(like_match(&pattern, &hay));
        let longer = "_".repeat(hay.chars().count() + 1);
        prop_assert!(!like_match(&longer, &hay));
    }
}

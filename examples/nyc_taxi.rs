//! The NYC-taxi case study (paper §7): the distance distribution of
//! taxi rides, computed privately over several streaming epochs.
//!
//! Each of 20,000 simulated vehicles holds its latest ride distance;
//! the analyst watches the 11-bucket distance histogram epoch after
//! epoch and compares it against the exact (non-private) histogram.
//!
//! Run with: `cargo run --release --example nyc_taxi`

use privapprox::core::system::System;
use privapprox::datasets::taxi::{taxi_answer_spec, TaxiGenerator};
use privapprox::types::ExecutionParams;

const CLIENTS: u64 = 20_000;
const EPOCHS: usize = 3;

fn main() {
    let mut generator = TaxiGenerator::new(2015, 100.0);
    let distances: Vec<f64> = (0..CLIENTS)
        .map(|_| generator.next_ride().distance_miles)
        .collect();

    // Exact histogram for comparison (what a non-private system with
    // full data access would report).
    let spec = taxi_answer_spec();
    let mut exact = vec![0u64; spec.len()];
    for &d in &distances {
        exact[spec.bucketize_num(d).expect("bucketizes")] += 1;
    }

    let mut system = System::builder()
        .clients(CLIENTS)
        .proxies(2)
        .seed(42)
        .build();
    let dist_ref = &distances;
    system.load_numeric_column("rides", "distance", |i| dist_ref[i]);

    // The paper's §7.2 parameters: s = 0.9, p = 0.9, q = 0.6.
    let query = system
        .analyst()
        .query("SELECT distance FROM rides")
        .buckets(spec.clone())
        .params(ExecutionParams::checked(0.9, 0.9, 0.6))
        .submit()
        .expect("query accepted");

    for epoch in 0..EPOCHS {
        let result = system.run_epoch(&query).expect("epoch ran");
        println!(
            "epoch {epoch}: {} answers, ε_zk = {:.3}",
            result.sample_size, result.privacy.eps_zk
        );
        if epoch + 1 < EPOCHS {
            continue; // print the full table only once, at the end
        }
        println!(
            "\n{:>10}  {:>9}  {:>9}  {:>8}  {}",
            "miles", "exact", "estimate", "loss", "95% CI half-width"
        );
        let mut total_err = 0.0;
        for (i, bucket) in result.buckets.iter().enumerate() {
            let label = if i < 10 {
                format!("[{},{})", i, i + 1)
            } else {
                "[10,∞)".to_string()
            };
            let loss = if exact[i] > 0 {
                (bucket.estimate - exact[i] as f64).abs() / exact[i] as f64
            } else {
                0.0
            };
            total_err += (bucket.estimate - exact[i] as f64).abs();
            println!(
                "{:>10}  {:>9}  {:>9.0}  {:>7.2}%  ±{:.0}",
                label,
                exact[i],
                bucket.estimate,
                100.0 * loss,
                bucket.ci.bound
            );
        }
        println!(
            "\nhistogram L1 loss: {:.2}% of all rides",
            100.0 * total_err / CLIENTS as f64
        );
        let stats = system.broker_stats();
        println!(
            "traffic through proxies this run: {:.2} MB in, {:.2} MB out",
            stats.bytes_in as f64 / 1e6,
            stats.bytes_out as f64 / 1e6
        );
    }
}

//! Quickstart: a complete PrivApprox run in ~40 lines.
//!
//! Builds an in-process deployment (1,000 clients, 2 proxies), loads
//! each client with a private speed reading, submits the paper's
//! driving-speed query, and prints the privacy-preserving histogram
//! with confidence intervals.
//!
//! Run with: `cargo run --release --example quickstart`

use privapprox::core::system::System;
use privapprox::types::{AnswerSpec, Budget};

fn main() {
    // 1. An in-process deployment: clients hold their own data;
    //    two non-colluding proxies relay XOR shares.
    let mut system = System::builder().clients(1_000).proxies(2).seed(7).build();

    // 2. Each client's private datum: its current driving speed.
    system.load_numeric_column("vehicle", "speed", |i| {
        // A bimodal city: 70 % around 25 mph, 30 % around 65 mph.
        if i % 10 < 7 {
            20.0 + (i % 11) as f64
        } else {
            60.0 + (i % 11) as f64
        }
    });

    // 3. The analyst publishes the paper's query with an accuracy
    //    budget; the initializer derives (s, p, q) automatically.
    let query = system
        .analyst()
        .query("SELECT speed FROM vehicle")
        .buckets(AnswerSpec::ranges_with_overflow(0.0, 110.0, 11))
        .budget(Budget::Accuracy {
            target_error: 0.05,
            confidence: 0.95,
        })
        .submit()
        .expect("query accepted");

    let params = system.params(query.id).expect("params derived");
    println!(
        "derived parameters: s = {:.3}, p = {:.2}, q = {:.2}\n",
        params.s, params.p, params.q
    );

    // 4. One epoch: sample → answer → randomize → split → forward →
    //    join → decode → window → estimate.
    let result = system.run_epoch(&query).expect("epoch ran");

    println!(
        "window {} | {} of {} clients answered | ε_zk = {:.3}\n",
        result.window, result.sample_size, result.population, result.privacy.eps_zk
    );
    println!(
        "{:>12}  {:>10}  {:>22}",
        "speed (mph)", "estimate", "95% confidence"
    );
    for (i, bucket) in result.buckets.iter().enumerate() {
        let label = if i < 11 {
            format!("[{},{})", i * 10, (i + 1) * 10)
        } else {
            "[110,∞)".to_string()
        };
        println!(
            "{:>12}  {:>10.1}  {:>10.1} ± {:<8.1}",
            label, bucket.estimate, bucket.ci.estimate, bucket.ci.bound
        );
    }
}

//! Historical (batch) analytics over stored randomized responses
//! (paper §3.3.1).
//!
//! The aggregator warehouses every decoded (still randomized!) answer
//! as the stream flows; later, an analyst asks a batch question over
//! a past time range under a resource budget, which triggers a second
//! round of sampling at the warehouse.
//!
//! Run with: `cargo run --release --example historical_batch`

use privapprox::core::system::System;
use privapprox::datasets::taxi::{taxi_answer_spec, TaxiGenerator};
use privapprox::types::{ExecutionParams, Timestamp, Window};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLIENTS: u64 = 5_000;
const EPOCHS: u64 = 6;

fn main() {
    let mut generator = TaxiGenerator::new(77, 100.0);
    let distances: Vec<f64> = (0..CLIENTS)
        .map(|_| generator.next_ride().distance_miles)
        .collect();

    // Warehouse enabled: decoded answers are retained for batch
    // queries.
    let mut system = System::builder()
        .clients(CLIENTS)
        .proxies(2)
        .seed(5)
        .warehouse(true)
        .build();
    let dist_ref = &distances;
    system.load_numeric_column("rides", "distance", |i| dist_ref[i]);

    let query = system
        .analyst()
        .query("SELECT distance FROM rides")
        .buckets(taxi_answer_spec())
        .params(ExecutionParams::checked(0.8, 0.9, 0.6))
        .submit()
        .expect("query accepted");

    println!("streaming {EPOCHS} epochs into the warehouse…");
    for _ in 0..EPOCHS {
        system.run_epoch(&query).expect("epoch ran");
    }
    let warehouse = system.warehouse(query.id).expect("warehouse enabled");
    println!(
        "warehouse now holds {} randomized answers\n",
        warehouse.len()
    );

    // Batch query #1: the full history, generous budget.
    let mut rng = StdRng::seed_from_u64(1);
    let full_range = Window::of(Timestamp(0), EPOCHS * 60_000);
    let full = warehouse.batch_query(full_range, 1_000_000, 0.95, &mut rng);

    // Batch query #2: same range, but a tight budget forcing the
    // second sampling round down to 2,000 stored answers.
    let budgeted = warehouse.batch_query(full_range, 2_000, 0.95, &mut rng);

    println!(
        "{:>8}  {:>14}  {:>20}",
        "miles", "full batch", "budgeted (2k sample)"
    );
    for i in 0..full.buckets.len() {
        let label = if i < 10 {
            format!("[{},{})", i, i + 1)
        } else {
            "[10,∞)".to_string()
        };
        println!(
            "{:>8}  {:>8.0} ±{:<5.0}  {:>12.0} ±{:<7.0}",
            label,
            full.buckets[i].estimate,
            full.buckets[i].ci.bound,
            budgeted.buckets[i].estimate,
            budgeted.buckets[i].ci.bound,
        );
    }
    println!(
        "\nfull batch used {} answers; budgeted batch used {} — wider \
         intervals are the price of the §3.3.1 second sampling round",
        full.sample_size, budgeted.sample_size
    );
}

//! The household-electricity case study (paper §7) with the adaptive
//! feedback loop of §5.
//!
//! 10,000 smart meters report half-hourly kWh readings. The analyst
//! asks for the consumption distribution with a 10 % relative-error
//! target; the system starts from a deliberately low sampling
//! fraction and lets the feedback controller re-tune `s` epoch by
//! epoch until the reported confidence bounds meet the target.
//!
//! Run with: `cargo run --release --example household_power`

use privapprox::core::feedback::FeedbackController;
use privapprox::core::system::System;
use privapprox::datasets::electricity::{electricity_answer_spec, ElectricityGenerator};
use privapprox::types::ExecutionParams;

const HOUSEHOLDS: u64 = 10_000;
const TARGET_REL_ERROR: f64 = 0.10;

fn main() {
    let mut generator = ElectricityGenerator::new(9, HOUSEHOLDS);
    let readings: Vec<f64> = generator
        .next_interval()
        .into_iter()
        .map(|r| r.kwh.min(10.0))
        .collect();

    let mut system = System::builder()
        .clients(HOUSEHOLDS)
        .proxies(2)
        .seed(3)
        .build();
    let readings_ref = &readings;
    system.load_numeric_column("meter", "kwh", |i| readings_ref[i]);

    // Start deliberately under-sampled.
    let mut params = ExecutionParams::checked(0.05, 0.9, 0.6);
    let query = system
        .analyst()
        .query("SELECT kwh FROM meter")
        .buckets(electricity_answer_spec())
        .params(params)
        .submit()
        .expect("query accepted");

    let controller = FeedbackController::new(TARGET_REL_ERROR, 0.8, 0.95);
    println!(
        "adaptive execution: target relative error {:.0}%\n",
        TARGET_REL_ERROR * 100.0
    );
    println!(
        "{:>5}  {:>7}  {:>8}  {:>12}  {:>8}",
        "epoch", "s", "answers", "worst error", "ε_zk"
    );

    for epoch in 0..8 {
        let result = system.run_epoch(&query).expect("epoch ran");
        // Error on the meaningful buckets: the relative CI half-width
        // of the largest bucket (tiny buckets have huge relative CIs
        // that the paper's per-query budget does not chase).
        let top = result
            .buckets
            .iter()
            .max_by(|a, b| a.estimate.partial_cmp(&b.estimate).unwrap())
            .expect("buckets");
        let observed = top.ci.relative_bound();
        println!(
            "{:>5}  {:>7.3}  {:>8}  {:>11.2}%  {:>8.3}",
            epoch,
            params.s,
            result.sample_size,
            100.0 * observed,
            result.privacy.eps_zk
        );
        let (next, changed) = controller.retune(params, observed);
        if !changed && observed <= TARGET_REL_ERROR {
            println!(
                "\nconverged: error within target, s settled at {:.3}",
                params.s
            );
            break;
        }
        params = next;
        system
            .set_params(query.id, params)
            .expect("retune accepted");
    }

    // Final distribution.
    let result = system.run_epoch(&query).expect("final epoch");
    println!("\nfinal distribution (kWh per 30 min):");
    let labels = [
        "[0,0.5)", "[0.5,1)", "[1,1.5)", "[1.5,2)", "[2,2.5)", "[2.5,3)", "[3,∞)",
    ];
    for (label, bucket) in labels.iter().zip(&result.buckets) {
        let pct = 100.0 * bucket.estimate / HOUSEHOLDS as f64;
        println!(
            "{label:>9}: {:>5.1}%  (±{:.1} households)",
            pct, bucket.ci.bound
        );
    }
}

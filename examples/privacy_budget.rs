//! Exploring the privacy/utility/latency trade-off space (paper §2.1,
//! §3.1): how the initializer turns analyst budgets into `(s, p, q)`,
//! and what each choice costs.
//!
//! Run with: `cargo run --release --example privacy_budget`

use privapprox::core::initializer::Initializer;
use privapprox::core::system::System;
use privapprox::rr::privacy::epsilon_zk;
use privapprox::types::{AnswerSpec, Budget};

const CLIENTS: u64 = 50_000;

fn main() {
    println!("population: {CLIENTS} clients\n");

    // 1. How different budgets translate into system parameters.
    println!("budget → derived parameters");
    println!(
        "{:>44}  {:>7}  {:>5}  {:>5}  {:>7}",
        "budget", "s", "p", "q", "ε_zk"
    );
    let budgets: Vec<(String, Budget)> = vec![
        (
            "accuracy ±5% @95%".into(),
            Budget::Accuracy {
                target_error: 0.05,
                confidence: 0.95,
            },
        ),
        (
            "accuracy ±1% @99%".into(),
            Budget::Accuracy {
                target_error: 0.01,
                confidence: 0.99,
            },
        ),
        ("latency SLA 100ms".into(), Budget::LatencySla(100)),
        ("latency SLA 1s".into(), Budget::LatencySla(1_000)),
        (
            "resources ≤10k answers".into(),
            Budget::Resources {
                max_answers_per_window: 10_000,
            },
        ),
    ];
    let init = Initializer::new();
    for (label, budget) in &budgets {
        match init.derive(budget, CLIENTS) {
            Ok(p) => println!(
                "{label:>44}  {:>7.4}  {:>5.2}  {:>5.2}  {:>7.3}",
                p.s,
                p.p,
                p.q,
                epsilon_zk(p.s, p.p, p.q)
            ),
            Err(e) => println!("{label:>44}  infeasible: {e}"),
        }
    }

    // 2. A privacy ceiling re-shapes the parameters: ask for ε_zk ≤ 1
    //    while demanding the full population.
    println!("\nwith a privacy ceiling of ε_zk ≤ 1.0 at full sampling:");
    let strict = Initializer::new().with_max_epsilon_zk(1.0);
    let p = strict
        .derive(
            &Budget::Resources {
                max_answers_per_window: CLIENTS,
            },
            CLIENTS,
        )
        .expect("feasible");
    println!(
        "  s = {:.2}, p = {:.3}, q = {:.2} → ε_zk = {:.3}",
        p.s,
        p.p,
        p.q,
        epsilon_zk(p.s, p.p, p.q)
    );

    // 3. Measure what that privacy actually costs in utility.
    println!("\nutility at each operating point (60%-yes synthetic data):");
    let mut points = vec![("default (0.9, 0.6), s=0.6", 0.6, 0.9, 0.6)];
    points.push(("privacy-capped", 1.0, p.p, p.q));
    for (label, s, pp, q) in points {
        let mut system = System::builder()
            .clients(CLIENTS)
            .proxies(2)
            .seed(1)
            .build();
        system.load_numeric_column("data", "v", |i| if i % 10 < 6 { 1.0 } else { 3.0 });
        let query = system
            .analyst()
            .query("SELECT v FROM data")
            .buckets(AnswerSpec::ranges_with_overflow(0.0, 4.0, 2))
            .params(privapprox::types::ExecutionParams::checked(s, pp, q))
            .submit()
            .expect("accepted");
        let result = system.run_epoch(&query).expect("ran");
        let truth = 0.6 * CLIENTS as f64;
        let est = result.buckets[0].estimate;
        println!(
            "  {label}: estimate {est:.0} vs truth {truth:.0} (loss {:.2}%), ε_zk = {:.3}",
            100.0 * (est - truth).abs() / truth,
            result.privacy.eps_zk
        );
    }
}
